#!/usr/bin/env python3
"""LSM scenario: SHARE-assisted merge compaction.

Section 2.2 of the paper points at BigTable / Cassandra / MongoDB: their
LSM merge compactions rewrite every surviving entry, even though most of
the bottom level did not change.  This demo builds a two-level LSM store,
skews the updates onto 10 % of the keys, and compares the classic copy
merge against the SHARE merge, which proves blocks unchanged from index
fences alone and remaps them with the SHARE command.

Run:  python examples/lsm_compaction_demo.py
"""

import random

from repro.flash.geometry import FlashGeometry
from repro.ftl.config import FtlConfig
from repro.host.filesystem import FsConfig, HostFs
from repro.lsm import CompactionMode, LsmConfig, LsmStore
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

KEYS = 10_000
UPDATES = 4_000
HOT_KEYS = 1_000


def run(mode: CompactionMode):
    clock = SimClock()
    geometry = FlashGeometry(page_size=4096, pages_per_block=128,
                             block_count=192, overprovision_ratio=0.08)
    ssd = Ssd(clock, SsdConfig(geometry=geometry,
                               ftl=FtlConfig(map_block_count=12)))
    fs = HostFs(ssd, FsConfig())
    store = LsmStore(fs, "db", mode, clock,
                     LsmConfig(memtable_limit=2048, l0_limit=8,
                               block_capacity=16))
    for key in range(KEYS):
        store.put(key, ("cold", key))
    store.flush_memtable()
    rng = random.Random(3)
    for i in range(UPDATES):
        store.put(rng.randrange(HOT_KEYS), ("hot", i))
    store.flush_memtable()
    ssd.reset_measurement()
    clock.reset()
    result = store.compact()
    assert store.get(KEYS - 1) == ("cold", KEYS - 1)
    return result, ssd


def main() -> None:
    print(f"LSM store: {KEYS} keys, {UPDATES} updates on the hottest "
          f"{HOT_KEYS}, then a full merge into L1\n")
    header = (f"{'mode':>6}  {'elapsed s':>9}  {'blocks written':>14}  "
              f"{'blocks shared':>13}  {'MiB written':>11}")
    print(header)
    print("-" * len(header))
    results = {}
    for mode in (CompactionMode.COPY, CompactionMode.SHARE):
        result, ssd = run(mode)
        results[mode] = (result, ssd)
        print(f"{mode.value:>6}  {result.elapsed_seconds:9.3f}  "
              f"{result.blocks_written:14d}  {result.blocks_shared:13d}  "
              f"{ssd.stats.host_written_bytes / 2**20:11.2f}")
    copy_result, __ = results[CompactionMode.COPY]
    share_result, __ = results[CompactionMode.SHARE]
    reuse = share_result.blocks_shared / max(
        1, share_result.blocks_shared + share_result.blocks_written)
    print(f"\nthe SHARE merge moved {reuse:.0%} of the data by remapping "
          f"alone and finished "
          f"{copy_result.elapsed_seconds / share_result.elapsed_seconds:.1f}x "
          "faster — the LSM analogue of the paper's zero-copy Couchbase "
          "compaction (Figure 3).")


if __name__ == "__main__":
    main()
