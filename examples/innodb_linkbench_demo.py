#!/usr/bin/env python3
"""MySQL/InnoDB scenario: the doublewrite buffer vs SHARE.

Loads a small LinkBench social graph and runs the same transaction
stream under the paper's three configurations (Section 5.3.1):

* DWB-On  — default InnoDB doublewrite (every flushed page written twice),
* DWB-Off — fast but torn-page unsafe,
* SHARE   — doublewrite journal + SHARE remap (atomic AND single-write).

Prints throughput, device write counts, GC activity, and a latency
summary — the same quantities as Figures 5/6 and Table 1.

Run:  python examples/innodb_linkbench_demo.py
"""

from repro.bench.harness import build_innodb_stack, buffer_pages_for
from repro.innodb.engine import FlushMode
from repro.workloads.linkbench import LinkBenchConfig, LinkBenchDriver

NODES = 3_000
TRANSACTIONS = 6_000
DB_PAGES_ESTIMATE = int(NODES * 8 / 32 * 2.1)


def run_mode(mode: FlushMode) -> dict:
    stack = build_innodb_stack(
        mode, page_size=4096,
        buffer_pool_pages=buffer_pages_for(50, DB_PAGES_ESTIMATE, 4096),
        db_pages_estimate=DB_PAGES_ESTIMATE)
    driver = LinkBenchDriver(stack.engine, stack.clock,
                             LinkBenchConfig(node_count=NODES))
    driver.load()
    driver.run(TRANSACTIONS // 4)          # warm-up
    stack.data_ssd.reset_measurement()
    stack.clock.reset()
    result = driver.run(TRANSACTIONS)
    stats = stack.data_ssd.stats
    add_link = result.latencies.histogram("Add_Link")
    return {
        "tps": result.throughput_tps,
        "writes": stats.host_write_pages,
        "gc": stats.gc_events,
        "copybacks": stats.copyback_pages,
        "waf": stats.write_amplification,
        "add_link_mean_ms": add_link.mean,
        "add_link_p99_ms": add_link.pct(99),
    }


def main() -> None:
    print(f"LinkBench: {NODES} nodes, {TRANSACTIONS} measured transactions\n")
    results = {mode: run_mode(mode) for mode in FlushMode}
    header = (f"{'mode':>8}  {'tx/s':>8}  {'writes':>7}  {'GC':>5}  "
              f"{'copyback':>8}  {'WAF':>5}  {'AddLink mean':>12}  "
              f"{'p99 (ms)':>9}")
    print(header)
    print("-" * len(header))
    for mode, r in results.items():
        print(f"{mode.value:>8}  {r['tps']:8.1f}  {r['writes']:7d}  "
              f"{r['gc']:5d}  {r['copybacks']:8d}  {r['waf']:5.2f}  "
              f"{r['add_link_mean_ms']:12.2f}  {r['add_link_p99_ms']:9.2f}")

    on, share = results[FlushMode.DWB_ON], results[FlushMode.SHARE]
    off = results[FlushMode.DWB_OFF]
    print(f"\nSHARE vs DWB-On : {share['tps'] / on['tps']:.2f}x throughput, "
          f"{1 - share['writes'] / on['writes']:.0%} fewer writes, "
          f"{1 - share['copybacks'] / max(1, on['copybacks']):.0%} fewer "
          "copybacks")
    print(f"SHARE vs DWB-Off: {share['tps'] / off['tps']:.2f}x throughput "
          "(paper: within 1% — SHARE adds atomicity for free)")


if __name__ == "__main__":
    main()
