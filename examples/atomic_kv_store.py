#!/usr/bin/env python3
"""Building a new engine on SHARE: a journal-free transactional KV store.

Section 3.3 argues any engine with atomic-write needs (SQLite, file
systems, ...) can adopt SHARE.  This example builds a miniature
update-in-place hash-table store whose multi-page commits are atomic
*without a journal, WAL, or copy-on-write tree*: dirty pages are staged
into a scratch ring and one SHARE batch publishes them.

The demo commits transactions, crashes the device mid-commit at both
possible points, and shows all-or-nothing behaviour each time.

Run:  python examples/atomic_kv_store.py
"""

from typing import Dict, Optional

from repro.core import AtomicWriter, ScratchArea
from repro.errors import PowerFailure, UnmappedPageError
from repro.flash.geometry import FlashGeometry
from repro.sim.clock import SimClock
from repro.sim.faults import FaultPlan, PowerFailAfter
from repro.ssd.device import Ssd, SsdConfig

BUCKETS = 128          # one page per hash bucket
SCRATCH_PAGES = 64


class ShareKv:
    """A page-per-bucket hash store with SHARE-atomic transactions."""

    def __init__(self, ssd: Ssd) -> None:
        self.ssd = ssd
        self.writer = AtomicWriter(
            ssd, ScratchArea(ssd, base_lpn=BUCKETS, size_pages=SCRATCH_PAGES))
        self._txn: Optional[Dict[int, dict]] = None

    def _bucket_of(self, key: str) -> int:
        return hash(key) % BUCKETS

    def _load_bucket(self, lpn: int) -> dict:
        try:
            return dict(self.ssd.read(lpn))
        except UnmappedPageError:
            return {}

    def get(self, key: str):
        lpn = self._bucket_of(key)
        if self._txn is not None and lpn in self._txn:
            return self._txn[lpn].get(key)
        return self._load_bucket(lpn).get(key)

    def begin(self) -> None:
        self._txn = {}

    def put(self, key: str, value) -> None:
        assert self._txn is not None, "call begin() first"
        lpn = self._bucket_of(key)
        bucket = self._txn.get(lpn)
        if bucket is None:
            bucket = self._load_bucket(lpn)
            self._txn[lpn] = bucket
        bucket[key] = value

    def commit(self) -> None:
        assert self._txn is not None
        for lpn, bucket in self._txn.items():
            self.writer.stage(lpn, tuple(sorted(bucket.items())))
        self.writer.commit()
        self._txn = None

    def abort(self) -> None:
        self.writer.abort()
        self._txn = None


def main() -> None:
    clock = SimClock()
    faults = FaultPlan()
    ssd = Ssd(clock, SsdConfig(geometry=FlashGeometry.small()), faults=faults)
    kv = ShareKv(ssd)

    kv.begin()
    kv.put("alice", 100)
    kv.put("bob", 100)
    kv.commit()
    print("initial balances:", kv.get("alice"), kv.get("bob"))

    # A multi-key transfer that must be all-or-nothing.
    def transfer(amount: int) -> None:
        kv.begin()
        kv.put("alice", kv.get("alice") - amount)
        kv.put("bob", kv.get("bob") + amount)
        kv.commit()

    # Crash BEFORE the SHARE commit point: nothing moves.
    faults.arm(PowerFailAfter("maplog.before_commit"))
    try:
        transfer(40)
    except PowerFailure:
        print("\ncrash before the remap commit...")
    ssd.power_cycle()
    kv = ShareKv(ssd)
    print("  balances after reboot:", kv.get("alice"), kv.get("bob"),
          "(unchanged — atomic)")

    # Crash AFTER the commit point: everything moves.
    faults.disarm()
    faults.arm(PowerFailAfter("maplog.after_commit"))
    try:
        transfer(40)
    except PowerFailure:
        print("\ncrash after the remap commit...")
    ssd.power_cycle()
    kv = ShareKv(ssd)
    print("  balances after reboot:", kv.get("alice"), kv.get("bob"),
          "(both applied — atomic)")

    faults.disarm()
    transfer(10)
    print("\nfinal balances:", kv.get("alice"), kv.get("bob"))
    print(f"device wrote {ssd.stats.host_write_pages} pages total; "
          "no page was ever written twice for durability.")


if __name__ == "__main__":
    main()
