#!/usr/bin/env python3
"""Couchbase scenario: zero-copy compaction with SHARE (Figure 3).

Builds two identical append-only stores, churns them until compaction
pressure builds, then compacts one with the original copy algorithm and
one with the SHARE algorithm, printing the Table-2 comparison.

Run:  python examples/couch_compaction_demo.py
"""

from repro.bench.harness import build_couch_stack
from repro.couchstore.compaction import compact
from repro.couchstore.engine import CommitMode
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, YcsbWorkload

RECORDS = 8_000
UPDATES = 8_000


def run_mode(mode: CommitMode) -> dict:
    stack = build_couch_stack(mode, RECORDS, UPDATES * 2)
    driver = YcsbDriver(stack.store, stack.clock,
                        YcsbConfig(record_count=RECORDS))
    driver.load()
    driver.run(YcsbWorkload.F, UPDATES, batch_size=16)
    store = stack.store
    stale = store.stale_ratio
    stack.ssd.reset_measurement()
    stack.clock.reset()
    new_store, result = compact(store, stack.clock)
    # Verify nothing was lost.
    sample_ok = all(new_store.get(key) is not None
                    for key in range(0, RECORDS, 97))
    assert sample_ok
    return {"stale_before": stale, "result": result,
            "stale_after": new_store.stale_ratio}


def main() -> None:
    print(f"couchstore: {RECORDS} documents, {UPDATES} zipfian updates, "
          "then compaction\n")
    rows = {mode: run_mode(mode) for mode in
            (CommitMode.ORIGINAL, CommitMode.SHARE)}
    header = (f"{'mode':>9}  {'stale before':>12}  {'elapsed (s)':>11}  "
              f"{'written MiB':>11}  {'read MiB':>8}  {'docs':>6}  "
              f"{'share cmds':>10}")
    print(header)
    print("-" * len(header))
    for mode, row in rows.items():
        r = row["result"]
        print(f"{mode.value:>9}  {row['stale_before']:12.2f}  "
              f"{r.elapsed_seconds:11.2f}  {r.written_mib:11.2f}  "
              f"{r.read_bytes / 2**20:8.2f}  {r.docs_moved:6d}  "
              f"{r.share_commands:10d}")
    copy_r = rows[CommitMode.ORIGINAL]["result"]
    share_r = rows[CommitMode.SHARE]["result"]
    print(f"\nSHARE compaction: "
          f"{copy_r.elapsed_seconds / share_r.elapsed_seconds:.1f}x faster, "
          f"{copy_r.written_bytes / share_r.written_bytes:.1f}x fewer bytes "
          "written (paper: 3.1x / 7.5x)")
    print("The residual cost is one header-page read per document, to "
          "learn each document's length for the share command.")


if __name__ == "__main__":
    main()
