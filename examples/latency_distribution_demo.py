#!/usr/bin/env python3
"""Latency distributions under 16 clients: the full shape behind Table 1.

Runs the LinkBench stream under DWB-On and SHARE with the paper's 16
concurrent clients (closed-loop queue over the device) and renders the
response-time distributions as text histograms and a percentile
comparison — the whole curve, not just Table 1's summary points.

Run:  python examples/latency_distribution_demo.py
"""

from repro.analysis import ascii_histogram, compare_cdfs
from repro.bench.harness import buffer_pages_for, build_innodb_stack
from repro.innodb.engine import FlushMode
from repro.workloads.linkbench import LinkBenchConfig, LinkBenchDriver

NODES = 3_000
TRANSACTIONS = 6_000
CLIENTS = 16
DB_PAGES = int(NODES * 8 / 32 * 2.1)


def run_mode(mode: FlushMode):
    stack = build_innodb_stack(
        mode, 4096, buffer_pages_for(50, DB_PAGES, 4096), DB_PAGES)
    driver = LinkBenchDriver(stack.engine, stack.clock,
                             LinkBenchConfig(node_count=NODES))
    driver.load()
    driver.run(TRANSACTIONS // 4)
    stack.clock.reset()
    result = driver.run(TRANSACTIONS, concurrency=CLIENTS)
    merged = result.latencies.merged()
    return [merged.pct(p / 10) for p in range(1, 1000)], merged._samples


def main() -> None:
    print(f"LinkBench, {CLIENTS} clients, {TRANSACTIONS} transactions "
          "per mode\n")
    samples = {}
    for mode in (FlushMode.DWB_ON, FlushMode.SHARE):
        __, raw = run_mode(mode)
        samples[mode.value] = raw
    for name, values in samples.items():
        print(ascii_histogram(values, bins=10, width=44,
                              title=f"\nresponse time (ms), {name}:"))
    print()
    print(compare_cdfs(samples, points=(50, 75, 90, 99, 99.9),
                       title="percentile comparison (ms):"))
    print("\nSHARE compresses the whole upper half of the distribution — "
          "the tail-tolerance effect of Table 1.")


if __name__ == "__main__":
    main()
