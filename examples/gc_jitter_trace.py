#!/usr/bin/env python3
"""I/O jitter analysis: SHARE's effect on latency consistency.

Section 5.3.1 claims "less garbage collection events provide more
consistent IO performance with less performance jitter".  This example
captures a per-command device trace under DWB-On and SHARE and compares
the latency distribution of host writes: the long tail comes from
commands that absorbed GC work.

Run:  python examples/gc_jitter_trace.py
"""

from repro.bench.harness import SCALES, Scale, build_innodb_stack, buffer_pages_for
from repro.innodb.engine import FlushMode
from repro.sim.stats import Histogram
from repro.ssd.device import SsdConfig
from repro.workloads.linkbench import LinkBenchConfig, LinkBenchDriver


def run_mode(mode: FlushMode):
    params = SCALES[Scale.TINY]
    db_pages = int(params.linkbench_nodes * 8 / 32 * 2.1)
    stack = build_innodb_stack(
        mode, 4096, buffer_pages_for(50, db_pages, 4096), db_pages,
        trace_capacity=1_000_000)
    driver = LinkBenchDriver(stack.engine, stack.clock,
                             LinkBenchConfig(node_count=params.linkbench_nodes))
    driver.load()
    driver.run(2000)
    stack.data_ssd.trace.clear()
    driver.run(6000)
    return stack.data_ssd.trace


def summarize(trace) -> dict:
    # Normalise to per-page latency: a batched write command covers many
    # pages, a home-location write covers one.
    hist = Histogram()
    gc_hits = 0
    commands = 0
    for event in trace.events("write"):
        hist.record(event.latency_us / event.count / 1000.0)
        commands += 1
        if event.gc_events:
            gc_hits += 1
    return {
        "commands": commands,
        "median_ms": hist.pct(50),
        "p99_ms": hist.pct(99),
        "max_ms": hist.max,
        "gc_stalls": gc_hits,
    }


def main() -> None:
    print("device-level write latency, traced per command\n")
    rows = {}
    for mode in (FlushMode.DWB_ON, FlushMode.SHARE):
        rows[mode] = summarize(run_mode(mode))
    header = (f"{'mode':>8}  {'commands':>8}  {'median ms':>9}  "
              f"{'p99 ms':>7}  {'max ms':>8}  {'GC stalls':>9}")
    print(header)
    print("-" * len(header))
    for mode, r in rows.items():
        print(f"{mode.value:>8}  {r['commands']:8d}  {r['median_ms']:9.2f}  "
              f"{r['p99_ms']:7.2f}  {r['max_ms']:8.2f}  {r['gc_stalls']:9d}")
    on, share = rows[FlushMode.DWB_ON], rows[FlushMode.SHARE]
    print(f"\nSHARE cut GC-stalled write commands from {on['gc_stalls']} to "
          f"{share['gc_stalls']} and the worst per-page write from "
          f"{on['max_ms']:.1f} ms to {share['max_ms']:.1f} ms — "
          "the jitter reduction the paper describes.")


if __name__ == "__main__":
    main()
