#!/usr/bin/env python3
"""Quickstart: the SHARE command in five minutes.

Builds a simulated SHARE-capable SSD, demonstrates the core remapping
semantics (two logical pages sharing one physical page), shows that a
SHARE batch is atomic across power failure, and finishes with the
journaling-free atomic multi-page write built on top of it.

Run:  python examples/quickstart.py
"""

from repro.core import AtomicWriter, ScratchArea
from repro.errors import PowerFailure
from repro.flash.geometry import FlashGeometry
from repro.sim.clock import SimClock
from repro.sim.faults import FaultPlan, PowerFailAfter
from repro.ssd.device import Ssd, SsdConfig


def main() -> None:
    clock = SimClock()
    faults = FaultPlan()
    ssd = Ssd(clock, SsdConfig(geometry=FlashGeometry.small()), faults=faults)
    print(f"device: {ssd.logical_pages} logical pages x {ssd.page_size} B, "
          f"atomic SHARE batch limit {ssd.max_share_batch} pairs")

    # --- 1. the basic remap -------------------------------------------------
    ssd.write(100, "original content of LPN 100")
    ssd.write(200, "new version, staged at LPN 200")
    ssd.share(dst_lpn=100, src_lpn=200)
    print("\nafter share(100, 200):")
    print("  read(100) ->", ssd.read(100))
    print("  read(200) ->", ssd.read(200))
    print("  (one physical page, two logical addresses)")

    # Overwriting the source does NOT disturb the destination: the share
    # captured a snapshot of the mapping.
    ssd.write(200, "source moved on")
    print("\nafter overwriting LPN 200:")
    print("  read(100) ->", ssd.read(100))
    print("  read(200) ->", ssd.read(200))

    # --- 2. atomicity across power failure ---------------------------------
    ssd.write(300, "old A")
    ssd.write(301, "old B")
    ssd.write(400, "new A")
    ssd.write(401, "new B")
    faults.arm(PowerFailAfter("maplog.before_commit"))
    try:
        ssd.share(300, 400, length=2)
    except PowerFailure:
        print("\npower failed BEFORE the mapping-log commit...")
    ssd.power_cycle()
    print("  after reboot: read(300) ->", ssd.read(300), "(old mapping kept)")

    faults.disarm()
    ssd.share(300, 400, length=2)
    ssd.power_cycle()
    print("  after a completed share + reboot: read(300) ->", ssd.read(300))

    # --- 3. journaling-free atomic multi-page writes ------------------------
    scratch = ScratchArea(ssd, base_lpn=1000, size_pages=64)
    writer = AtomicWriter(ssd, scratch)
    for lpn, payload in [(500, "page-1/3"), (501, "page-2/3"),
                         (502, "page-3/3")]:
        writer.stage(lpn, payload)
    committed = writer.commit()
    print(f"\nAtomicWriter committed {committed} pages with zero redundant "
          "writes:")
    for lpn in (500, 501, 502):
        print(f"  read({lpn}) ->", ssd.read(lpn))

    stats = ssd.stats
    print(f"\ndevice counters: {stats.host_write_pages} host page writes, "
          f"{stats.share_pairs} share pairs, "
          f"WAF {stats.write_amplification:.2f}, "
          f"virtual time {clock.now_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
