"""Counters, histograms, and latency recorders used across the stack.

The paper reports three kinds of numbers and this module supports all of
them:

* plain event counters (host page writes, GC events, copyback pages),
* throughput (operations over virtual time, computed by the harness),
* latency distributions per operation type (Table 1: mean / P25 / P50 /
  P75 / P99 / max).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile of an already-sorted sequence.

    ``pct`` is in [0, 100].  Matches ``numpy.percentile``'s default
    (linear) method so results line up with any numpy post-processing.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (pct / 100.0) * (len(sorted_values) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(sorted_values[int(rank)])
    frac = rank - lo
    return float(sorted_values[lo]) * (1.0 - frac) + float(sorted_values[hi]) * frac


def distribution_summary(sorted_values: Sequence[float],
                         percentiles: Sequence[float] = (25, 50, 75, 99)
                         ) -> Dict[str, float]:
    """``{"p<N>": value}`` rows for each requested percentile.

    The single shared quantile path: both :class:`Histogram` (exact
    samples) and :class:`repro.obs.registry.BoundedHistogram` (reservoir)
    build their summaries through this function, so profiler and report
    numbers cannot diverge on the percentile math itself.
    """
    return {f"p{int(p)}": percentile(sorted_values, p) for p in percentiles}


class Counter:
    """A named bag of integer counters with dict-like convenience."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative: {amount}")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def names(self) -> List[str]:
        return sorted(self._counts)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({inner})"


class Histogram:
    """Records raw samples and summarises them on demand.

    Samples are kept exactly (the experiment scales here are small enough)
    so arbitrary percentiles are available without binning error.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be non-negative: {value}")
        self._samples.append(float(value))
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of empty histogram")
        return self.total / len(self._samples)

    @property
    def max(self) -> float:
        if not self._samples:
            raise ValueError("max of empty histogram")
        return max(self._samples)

    @property
    def min(self) -> float:
        if not self._samples:
            raise ValueError("min of empty histogram")
        return min(self._samples)

    def pct(self, p: float) -> float:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return percentile(self._sorted, p)

    def summary(self, percentiles: Sequence[float] = (25, 50, 75, 99)) -> Dict[str, float]:
        """Return the Table-1 shaped summary: mean, requested percentiles,
        and max."""
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        out: Dict[str, float] = {"mean": self.mean}
        out.update(distribution_summary(self._sorted, percentiles))
        out["max"] = self.max
        return out

    def __len__(self) -> int:
        return len(self._samples)


class LatencyRecorder:
    """Per-operation-type latency histograms (Table 1 machinery).

    The LinkBench driver calls :meth:`record` with the operation name and
    the measured virtual latency; :meth:`table` produces rows in the same
    order/format as the paper's Table 1.
    """

    def __init__(self) -> None:
        self._by_op: Dict[str, Histogram] = {}

    def record(self, op_name: str, latency_ms: float) -> None:
        hist = self._by_op.get(op_name)
        if hist is None:
            hist = Histogram()
            self._by_op[op_name] = hist
        hist.record(latency_ms)

    def histogram(self, op_name: str) -> Histogram:
        if op_name not in self._by_op:
            raise KeyError(f"no latencies recorded for operation {op_name!r}")
        return self._by_op[op_name]

    def op_names(self) -> List[str]:
        return sorted(self._by_op)

    def table(self) -> Mapping[str, Dict[str, float]]:
        """Mapping of op name -> Table-1 summary row."""
        return {name: hist.summary() for name, hist in self._by_op.items()}

    def merged(self) -> Histogram:
        """All samples across every operation type, for aggregate stats."""
        merged = Histogram()
        for hist in self._by_op.values():
            merged.extend(hist._samples)
        return merged
