"""Deterministic event scheduler that owns :class:`SimClock` advancement.

Before the event-driven refactor every component advanced the shared
clock directly (``clock.advance(latency)``), which forces strictly
serial execution: nothing can overlap because the caller *is* the
timeline.  The scheduler inverts that: components register future
events (command completions, background work) and the clock only moves
when an event fires.  Two properties are load-bearing:

* **Determinism** — events are ordered by ``(time_us, seq)`` where
  ``seq`` is the registration order.  Two events at the same timestamp
  always fire in the order they were scheduled, never in heap-internal
  or hash order, so identical runs produce identical firing sequences.
* **Monotonicity** — firing an event advances the clock to the event's
  timestamp via :meth:`SimClock.advance_to`, which clamps rather than
  rewinds: an event registered in the past (a completion computed for a
  lagging closed-loop client) fires immediately without moving time
  backwards.

Cancellation is lazy (tombstone flag, skipped on pop), so
``power_cycle`` can drop a device's in-flight completions in O(1) per
event.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, List, Optional

from repro.sim.clock import SimClock


class Event:
    """One scheduled callback.  Compare/sort by ``(time_us, seq)``."""

    __slots__ = ("time_us", "seq", "fn", "label", "cancelled")

    def __init__(self, time_us: int, seq: int, fn: Callable[[], None],
                 label: str) -> None:
        self.time_us = time_us
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time_us, self.seq) < (other.time_us, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return (f"Event(t={self.time_us}, seq={self.seq}, "
                f"label={self.label!r}, {state})")


class EventScheduler:
    """Deterministic discrete-event loop over a shared :class:`SimClock`.

    A single scheduler is shared by every device on a clock (the
    benchmark stacks register the data and log SSD on one scheduler), so
    completions across devices fire in global completion order — the
    property the fault journal's ack boundary relies on.

    ``profiler`` is duck-typed (anything with ``enabled`` and
    ``timer(name)``, i.e. a :class:`repro.obs.profiling.PhaseProfiler`)
    rather than imported, keeping :mod:`repro.sim` free of an obs
    dependency.  When enabled, every fired callback is charged to the
    ``sim.dispatch`` wall-clock phase.
    """

    def __init__(self, clock: SimClock, profiler: Optional[Any] = None) -> None:
        self.clock = clock
        self._heap: List[Event] = []
        self._seq = 0
        self._cancelled = 0
        self.fired = 0
        self._pt_dispatch = (profiler.timer("sim.dispatch")
                             if profiler is not None
                             and getattr(profiler, "enabled", False) else None)

    # ------------------------------------------------------------ schedule

    def at(self, time_us: int, fn: Callable[[], None],
           label: str = "") -> Event:
        """Schedule ``fn`` to fire at absolute virtual time ``time_us``.

        A timestamp at or before the current time is allowed: the event
        fires on the next run without advancing the clock."""
        time_us = int(time_us)
        if time_us < 0:
            raise ValueError(f"cannot schedule before time zero: {time_us}")
        self._seq += 1
        event = Event(time_us, self._seq, fn, label)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay_us: float, fn: Callable[[], None],
              label: str = "") -> Event:
        """Schedule ``fn`` to fire ``delay_us`` from now (rounded like
        :meth:`SimClock.advance`)."""
        if delay_us < 0:
            raise ValueError(f"negative delay: {delay_us}")
        return self.at(self.clock.now_us + int(round(delay_us)), fn, label)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event.  Returns False when it already fired
        or was already cancelled."""
        if event.cancelled or event.fn is None:
            return False
        event.cancelled = True
        event.fn = None   # break reference cycles through closures
        self._cancelled += 1
        return True

    # ----------------------------------------------------------- introspect

    @property
    def pending(self) -> int:
        """Events scheduled and neither fired nor cancelled."""
        return len(self._heap) - self._cancelled

    def next_time_us(self) -> Optional[int]:
        """Timestamp of the next live event, or None when idle."""
        self._drop_cancelled()
        return self._heap[0].time_us if self._heap else None

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1

    # ---------------------------------------------------------------- run

    def step(self) -> Optional[Event]:
        """Fire the next event (advancing the clock to it).  Returns the
        event, or None when nothing is pending."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time_us)
        self.fired += 1
        fn, event.fn = event.fn, None
        pt = self._pt_dispatch
        if pt is not None:
            t0 = perf_counter_ns()
            fn()
            pt.add(perf_counter_ns() - t0)
        else:
            fn()
        return event

    def run_until(self, time_us: int) -> int:
        """Fire every event with timestamp <= ``time_us`` in
        deterministic order.  Returns the number fired.  The clock ends
        at the last fired event (not at ``time_us``): the scheduler only
        materialises time where something happened."""
        fired = 0
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0].time_us > time_us:
                return fired
            self.step()
            fired += 1

    def run_until_idle(self, limit: int = 1_000_000) -> int:
        """Fire everything pending (events may schedule further events).
        ``limit`` guards against runaway self-rescheduling loops."""
        fired = 0
        while self.step() is not None:
            fired += 1
            if fired >= limit:
                raise RuntimeError(
                    f"event loop did not go idle within {limit} events")
        return fired
