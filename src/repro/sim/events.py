"""Deterministic event scheduler that owns :class:`SimClock` advancement.

Before the event-driven refactor every component advanced the shared
clock directly (``clock.advance(latency)``), which forces strictly
serial execution: nothing can overlap because the caller *is* the
timeline.  The scheduler inverts that: components register future
events (command completions, background work) and the clock only moves
when an event fires.  Two properties are load-bearing:

* **Determinism** — events are ordered by ``(time_us, seq)`` where
  ``seq`` is the registration order.  Two events at the same timestamp
  always fire in the order they were scheduled, never in heap-internal
  or hash order, so identical runs produce identical firing sequences.
* **Monotonicity** — firing an event advances the clock to the event's
  timestamp via :meth:`SimClock.advance_to`, which clamps rather than
  rewinds: an event registered in the past (a completion computed for a
  lagging closed-loop client) fires immediately without moving time
  backwards.

Cancellation is lazy (tombstone flag, skipped on pop), so
``power_cycle`` can drop a device's in-flight completions in O(1) per
event.

Hot-path design (the ``sim.dispatch`` phase of the profiler): fired and
cancelled-popped :class:`Event` objects are recycled through a bounded
freelist, and :meth:`run_until` — the device's per-command drain loop —
pops, fires and recycles inline instead of paying a :meth:`step` call
per event.  The recycling contract: an ``Event`` reference returned by
:meth:`at`/:meth:`after` is valid until the event fires or is
cancelled; after that the object may be reused for a future event, so
holders must drop (or overwrite) their reference at fire/cancel time.
Every in-repo holder (the device's single drain event) does.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, List, Optional

from repro.sim.clock import SimClock

#: Bound on recycled Event objects retained between firings.  Steady
#: state needs one per concurrently-pending completion frame; 64 covers
#: every stack the harness builds with room to spare.
_FREELIST_MAX = 64

#: run_until_idle: how many events may fire at one frozen timestamp
#: before the loop is declared stuck.  A legitimate burst (a deep queue
#: draining at one completion time) is tens of events; a runaway
#: self-rescheduling loop crosses this within milliseconds of wall time.
DEFAULT_STALL_LIMIT = 100_000


class Event:
    """One scheduled callback.  Compare/sort by ``(time_us, seq)``."""

    __slots__ = ("time_us", "seq", "fn", "label", "cancelled")

    def __init__(self, time_us: int, seq: int, fn: Callable[[], None],
                 label: str) -> None:
        self.time_us = time_us
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time_us, self.seq) < (other.time_us, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return (f"Event(t={self.time_us}, seq={self.seq}, "
                f"label={self.label!r}, {state})")


class EventScheduler:
    """Deterministic discrete-event loop over a shared :class:`SimClock`.

    A single scheduler is shared by every device on a clock (the
    benchmark stacks register the data and log SSD on one scheduler), so
    completions across devices fire in global completion order — the
    property the fault journal's ack boundary relies on.

    ``profiler`` is duck-typed (anything with ``enabled`` and
    ``timer(name)``, i.e. a :class:`repro.obs.profiling.PhaseProfiler`)
    rather than imported, keeping :mod:`repro.sim` free of an obs
    dependency.  When enabled, every fired callback is charged to the
    ``sim.dispatch`` wall-clock phase.
    """

    def __init__(self, clock: SimClock, profiler: Optional[Any] = None) -> None:
        self.clock = clock
        self._heap: List[Event] = []
        self._free: List[Event] = []
        self._seq = 0
        self._cancelled = 0
        self.fired = 0
        self._pt_dispatch = (profiler.timer("sim.dispatch")
                             if profiler is not None
                             and getattr(profiler, "enabled", False) else None)

    # ------------------------------------------------------------ schedule

    def at(self, time_us: int, fn: Callable[[], None],
           label: str = "") -> Event:
        """Schedule ``fn`` to fire at absolute virtual time ``time_us``.

        A timestamp at or before the current time is allowed: the event
        fires on the next run without advancing the clock."""
        time_us = int(time_us)
        if time_us < 0:
            raise ValueError(f"cannot schedule before time zero: {time_us}")
        self._seq += 1
        free = self._free
        if free:
            event = free.pop()
            event.time_us = time_us
            event.seq = self._seq
            event.fn = fn
            event.label = label
            event.cancelled = False
        else:
            event = Event(time_us, self._seq, fn, label)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay_us: float, fn: Callable[[], None],
              label: str = "") -> Event:
        """Schedule ``fn`` to fire ``delay_us`` from now.

        The delay is rounded with ``int(round())`` — Python's
        round-half-to-even ("banker's") rounding — which is the *same*
        convention :meth:`SimClock.advance` and the device's
        ``_price_media`` apply.  Serial-vs-event bit-identity depends on
        the three sites agreeing; ``tests/test_sim_events.py`` pins it.
        """
        if delay_us < 0:
            raise ValueError(f"negative delay: {delay_us}")
        return self.at(self.clock.now_us + int(round(delay_us)), fn, label)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event.  Returns False when it already fired
        or was already cancelled.

        Cancellation is lazy: the tombstoned object stays in the heap
        until popped, and only then joins the freelist — a recycled
        event always starts with a fresh ``cancelled`` flag, so reuse
        can never resurrect (or re-suppress) an earlier cancellation."""
        if event.cancelled or event.fn is None:
            return False
        event.cancelled = True
        event.fn = None   # break reference cycles through closures
        self._cancelled += 1
        return True

    # ----------------------------------------------------------- introspect

    @property
    def pending(self) -> int:
        """Events scheduled and neither fired nor cancelled."""
        return len(self._heap) - self._cancelled

    def next_time_us(self) -> Optional[int]:
        """Timestamp of the next live event, or None when idle."""
        self._drop_cancelled()
        return self._heap[0].time_us if self._heap else None

    def _drop_cancelled(self) -> None:
        heap = self._heap
        free = self._free
        while heap and heap[0].cancelled:
            event = heapq.heappop(heap)
            self._cancelled -= 1
            if len(free) < _FREELIST_MAX:
                event.cancelled = False
                free.append(event)

    # ---------------------------------------------------------------- run

    def step(self) -> Optional[Event]:
        """Fire the next event (advancing the clock to it).  Returns the
        event, or None when nothing is pending.

        The returned event is *not* recycled (the caller may inspect its
        label/timestamp), so a step-driven loop allocates; the hot path
        is :meth:`run_until`, which recycles inline."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time_us)
        self.fired += 1
        fn, event.fn = event.fn, None
        pt = self._pt_dispatch
        if pt is not None:
            t0 = perf_counter_ns()
            fn()
            pt.add(perf_counter_ns() - t0)
        else:
            fn()
        return event

    def run_until(self, time_us: int) -> int:
        """Fire every event with timestamp <= ``time_us`` in
        deterministic order.  Returns the number fired.  The clock ends
        at the last fired event (not at ``time_us``): the scheduler only
        materialises time where something happened.

        This is the device drain hot path: the pop/advance/fire loop is
        inlined (no per-event :meth:`step` call) and fired events are
        recycled through the freelist before their callback runs, so a
        callback that schedules a follow-up event reuses the object it
        was fired from."""
        heap = self._heap
        if not heap:
            return 0
        head = heap[0]
        if head.time_us > time_us and not head.cancelled:
            # Nothing due (the per-operation poll's common case): skip
            # the loop-local setup entirely.
            return 0
        fired = 0
        heappop = heapq.heappop
        advance_to = self.clock.advance_to
        free = self._free
        pt = self._pt_dispatch
        while heap:
            event = heap[0]
            if event.cancelled:
                heappop(heap)
                self._cancelled -= 1
                if len(free) < _FREELIST_MAX:
                    event.cancelled = False
                    free.append(event)
                continue
            if event.time_us > time_us:
                break
            heappop(heap)
            advance_to(event.time_us)
            self.fired += 1
            fired += 1
            fn = event.fn
            event.fn = None
            if len(free) < _FREELIST_MAX:
                free.append(event)
            if pt is not None:
                t0 = perf_counter_ns()
                fn()
                pt.add(perf_counter_ns() - t0)
            else:
                fn()
        return fired

    def run_until_idle(self, stall_limit: int = DEFAULT_STALL_LIMIT) -> int:
        """Fire everything pending (events may schedule further events).

        Guards against runaway self-rescheduling by detecting actual
        non-progress: ``stall_limit`` bounds how many events may fire
        *without the clock advancing*, not the total fired.  A
        legitimately long run (millions of events, each moving time
        forward) never trips it; a loop rescheduling itself at the
        current timestamp does, and the raised error names the labels
        of the events spinning at the stuck timestamp."""
        if stall_limit < 1:
            raise ValueError(f"stall_limit must be >= 1: {stall_limit}")
        fired = 0
        stalled = 0
        recent: List[str] = []
        last_now = self.clock.now_us
        while True:
            event = self.step()
            if event is None:
                return fired
            fired += 1
            now = self.clock.now_us
            if now > last_now:
                last_now = now
                if stalled:
                    stalled = 0
                    recent.clear()
            else:
                stalled += 1
                if len(recent) < 8:
                    recent.append(event.label or "<unlabelled>")
                if stalled >= stall_limit:
                    labels = ", ".join(sorted(set(recent)))
                    raise RuntimeError(
                        f"event loop is not making progress: {stalled} "
                        f"events fired at t={now}us without the clock "
                        f"advancing (recent labels: {labels})")
