"""Deterministic random-number helpers shared by workload generators.

Everything in the reproduction is seeded; given the same seed, a workload
produces the identical operation stream, so every figure regenerates
bit-identically.
"""

from __future__ import annotations

import math
import random
from typing import Optional


def make_rng(seed: int) -> random.Random:
    """A private ``random.Random`` stream for one component.

    Each component owning its own stream keeps workloads independent of the
    order in which components draw numbers.
    """
    return random.Random(seed)


class ZipfianGenerator:
    """Zipfian item chooser over ``[0, item_count)``.

    This is the standard YCSB ``ZipfianGenerator`` (Gray et al.'s rejection
    inversion constants) so the key-popularity skew of YCSB workloads A and
    F matches the original benchmark.  ``theta`` defaults to YCSB's 0.99.
    """

    def __init__(self, item_count: int, theta: float = 0.99,
                 rng: Optional[random.Random] = None, seed: int = 0) -> None:
        if item_count <= 0:
            raise ValueError(f"item_count must be positive: {item_count}")
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1): {theta}")
        self._items = item_count
        self._theta = theta
        self._rng = rng if rng is not None else random.Random(seed)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1.0 - math.pow(2.0 / item_count, 1.0 - theta))
                     / (1.0 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))

    def next(self) -> int:
        """Draw the next zipfian-distributed item index."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + math.pow(0.5, self._theta):
            return 1
        return int(self._items * math.pow(self._eta * u - self._eta + 1.0,
                                          self._alpha))

    @property
    def item_count(self) -> int:
        return self._items


class ScrambledZipfian:
    """Zipfian draw scattered over the key space via a multiplicative hash.

    YCSB uses this so the hottest keys are not physically adjacent, which
    matters for page-locality effects in the storage engines.
    """

    _GOLDEN = 0x9E3779B97F4A7C15
    _MASK = (1 << 64) - 1

    def __init__(self, item_count: int, theta: float = 0.99, seed: int = 0) -> None:
        self._items = item_count
        self._zipf = ZipfianGenerator(item_count, theta=theta, seed=seed)

    def next(self) -> int:
        raw = self._zipf.next()
        hashed = ((raw + 1) * self._GOLDEN) & self._MASK
        return hashed % self._items

    @property
    def item_count(self) -> int:
        return self._items
