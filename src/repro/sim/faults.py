"""Power-failure injection.

The paper's atomicity argument (Section 4.2.2, Figure 4) is about what
survives a power cut at each step of a SHARE operation or a page write.  To
test it, the FTL and the engines call :meth:`FaultPlan.checkpoint` with a
named fault point at every step that could be interrupted; a test arms the
plan to blow up at a chosen point, catches :class:`PowerFailure`, throws
away all volatile state, and restarts from the persisted media image.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import PowerFailure


class PowerFailAfter:
    """Fire a :class:`PowerFailure` the ``nth`` time ``point`` is reached.

    ``nth`` is 1-based: ``PowerFailAfter("nand.program", 3)`` survives two
    page programs and dies during the third.
    """

    def __init__(self, point: str, nth: int = 1) -> None:
        if nth < 1:
            raise ValueError(f"nth must be >= 1: {nth}")
        self.point = point
        self.nth = nth

    def __repr__(self) -> str:
        return f"PowerFailAfter({self.point!r}, nth={self.nth})"


class FaultPlan:
    """Collects armed faults and fires them at matching checkpoints.

    A disarmed plan (the default everywhere) is nearly free: one dict lookup
    per checkpoint.  The plan also records every point it passes so tests
    can assert code paths were actually exercised.
    """

    def __init__(self) -> None:
        self._armed: Dict[str, int] = {}
        self._hits: Dict[str, int] = {}
        self._trace_enabled = False
        self._trace: List[str] = []

    def arm(self, fault: PowerFailAfter) -> None:
        """Arm a single power failure at ``fault.point``.

        ``nth`` counts from the moment of arming: hits that happened
        before arm() do not consume the fuse."""
        self._armed[fault.point] = self._hits.get(fault.point, 0) + fault.nth

    def disarm(self, point: Optional[str] = None) -> None:
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def enable_trace(self) -> None:
        self._trace_enabled = True

    @property
    def trace(self) -> List[str]:
        return list(self._trace)

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached so far."""
        return self._hits.get(point, 0)

    def checkpoint(self, point: str) -> None:
        """Called by instrumented code at each interruptible step.

        Raises :class:`PowerFailure` when an armed fault's count is reached.
        """
        count = self._hits.get(point, 0) + 1
        self._hits[point] = count
        if self._trace_enabled:
            self._trace.append(point)
        nth = self._armed.get(point)
        if nth is not None and count == nth:
            raise PowerFailure(f"injected power failure at {point!r} (hit {count})")


#: Shared no-op plan used by components when the caller does not inject one.
NO_FAULTS = FaultPlan()
