"""Power-failure injection.

The paper's atomicity argument (Section 4.2.2, Figure 4) is about what
survives a power cut at each step of a SHARE operation or a page write.  To
test it, the FTL and the engines call :meth:`FaultPlan.checkpoint` with a
named fault point at every step that could be interrupted; a test arms the
plan to blow up at a chosen point, catches :class:`PowerFailure`, throws
away all volatile state, and restarts from the persisted media image.

The plan also journals the **ack boundary** of durable operations: code
wraps each host-visible command in :meth:`FaultPlan.operation`, and the
plan remembers the single operation that was in flight when a power
failure fired (:meth:`unacked_op`).  That record is what lets crash tests
assert the strict contract — *acknowledged* operations must survive, and
only the one unacknowledged operation may be ambiguous — instead of
guessing which LPNs were in flight.  Leaving the ``with`` block cleanly
first fires a ``<kind>.ack`` checkpoint (modelling power failing after
the media work but before completion reaches the caller), then marks the
operation acknowledged.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PowerFailure


class PowerFailAfter:
    """Fire a :class:`PowerFailure` the ``nth`` time ``point`` is reached.

    ``nth`` is 1-based: ``PowerFailAfter("nand.program", 3)`` survives two
    page programs and dies during the third.
    """

    def __init__(self, point: str, nth: int = 1) -> None:
        if nth < 1:
            raise ValueError(f"nth must be >= 1: {nth}")
        self.point = point
        self.nth = nth

    def __repr__(self) -> str:
        return f"PowerFailAfter({self.point!r}, nth={self.nth})"


class OpRecord:
    """One journalled operation: what was asked, and whether it acked.

    ``status`` is ``"inflight"`` while the operation runs, ``"acked"``
    once it returned to the caller, ``"unacked"`` when a power failure
    interrupted it, and ``"failed"`` when it raised an ordinary error
    (a failed operation promises nothing, so it is not ambiguous)."""

    __slots__ = ("op_id", "kind", "lpns", "status")

    def __init__(self, op_id: int, kind: str, lpns: Tuple[int, ...]) -> None:
        self.op_id = op_id
        self.kind = kind
        self.lpns = lpns
        self.status = "inflight"

    def __repr__(self) -> str:
        return (f"OpRecord(id={self.op_id}, kind={self.kind!r}, "
                f"lpns={self.lpns!r}, status={self.status!r})")


class _OpScope:
    """Context manager for one :meth:`FaultPlan.operation` scope."""

    __slots__ = ("plan", "kind", "record")

    def __init__(self, plan: "FaultPlan", kind: str,
                 record: Optional[OpRecord]) -> None:
        self.plan = plan
        self.kind = kind
        self.record = record

    def __enter__(self) -> Optional[OpRecord]:
        return self.record

    def __exit__(self, exc_type, exc, tb) -> bool:
        plan = self.plan
        plan._op_depth -= 1
        record = self.record
        if record is not None:
            plan._current_op = None
        if exc_type is None:
            # Power may fail after the media work but before completion
            # reaches the caller: the op's effect can be durable even
            # though it never acknowledged.
            try:
                plan.checkpoint(self.kind + ".ack")
            except PowerFailure:
                if record is not None and plan._unacked_op is None:
                    record.status = "unacked"
                    plan._unacked_op = record
                raise
            if record is not None:
                record.status = "acked"
                plan._last_acked = record
            return False
        if issubclass(exc_type, PowerFailure):
            if record is not None and plan._unacked_op is None:
                record.status = "unacked"
                plan._unacked_op = record
        elif record is not None:
            record.status = "failed"
        return False


class FaultPlan:
    """Collects armed faults and fires them at matching checkpoints.

    A disarmed plan (the default everywhere) is nearly free: one dict lookup
    per checkpoint.  The plan records every point it passes so tests can
    assert code paths were actually exercised, and each point may hold a
    *list* of fuses so two faults at different ``nth`` can coexist; arming
    the same (point, nth-from-now) twice raises instead of silently
    replacing the earlier fuse.
    """

    def __init__(self) -> None:
        # point -> sorted absolute hit counts at which to fire.
        self._armed: Dict[str, List[int]] = {}
        self._hits: Dict[str, int] = {}
        self._trace_enabled = False
        self._trace: List[str] = []
        # Operation (ack-boundary) journal: only the current record and
        # the terminal ones are kept, never a growing log — NO_FAULTS is
        # a process-wide singleton and must stay O(1) in memory.
        self._op_depth = 0
        self._op_seq = 0
        self._current_op: Optional[OpRecord] = None
        self._unacked_op: Optional[OpRecord] = None
        self._last_acked: Optional[OpRecord] = None

    def arm(self, fault: PowerFailAfter) -> None:
        """Arm a power failure at ``fault.point``.

        ``nth`` counts from the moment of arming: hits that happened
        before arm() do not consume the fuse.  Several fuses may be armed
        at one point (different ``nth``); re-arming an identical fuse
        raises ``ValueError`` — a silent overwrite would hide test bugs."""
        target = self._hits.get(fault.point, 0) + fault.nth
        fuses = self._armed.setdefault(fault.point, [])
        if target in fuses:
            raise ValueError(
                f"fault already armed at {fault.point!r} for nth={fault.nth} "
                f"(disarm first to replace it)")
        insort(fuses, target)

    def disarm(self, point: Optional[str] = None) -> None:
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def armed_count(self, point: str) -> int:
        """How many fuses are currently armed at ``point``."""
        return len(self._armed.get(point, ()))

    def enable_trace(self) -> None:
        self._trace_enabled = True

    @property
    def trace(self) -> List[str]:
        return list(self._trace)

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached so far."""
        return self._hits.get(point, 0)

    def checkpoint(self, point: str) -> None:
        """Called by instrumented code at each interruptible step.

        Raises :class:`PowerFailure` when an armed fault's count is
        reached; the fired fuse is consumed (fires only once), any other
        fuses at the point stay armed.
        """
        count = self._hits.get(point, 0) + 1
        self._hits[point] = count
        if self._trace_enabled:
            self._trace.append(point)
        fuses = self._armed.get(point)
        if fuses and count == fuses[0]:
            fuses.pop(0)
            if not fuses:
                del self._armed[point]
            raise PowerFailure(f"injected power failure at {point!r} (hit {count})")

    # ------------------------------------------------- ack-boundary journal

    def operation(self, kind: str, lpns: Sequence[int] = ()) -> _OpScope:
        """Bracket one host-visible durable operation.

        Usage: ``with faults.operation("ftl.write", (lpn,)): ...``.  On a
        clean exit the scope fires the ``<kind>.ack`` checkpoint, then
        marks the operation acknowledged.  If a :class:`PowerFailure`
        escapes the scope, the record becomes :meth:`unacked_op` — the
        one operation whose durability is legitimately ambiguous.  Nested
        scopes (a device command calling into the FTL) are transparent:
        only the outermost scope journals, though a nested clean exit
        still fires its own ``.ack`` checkpoint for point coverage."""
        if self._op_depth:
            self._op_depth += 1
            return _OpScope(self, kind, None)
        self._op_depth = 1
        self._op_seq += 1
        record = OpRecord(self._op_seq, kind, tuple(lpns))
        self._current_op = record
        return _OpScope(self, kind, record)

    def unacked_op(self) -> Optional[OpRecord]:
        """The operation interrupted by the (first) injected power
        failure, or None when every operation either acked or failed."""
        return self._unacked_op

    def last_acked_op(self) -> Optional[OpRecord]:
        return self._last_acked

    def clear_unacked(self) -> None:
        """Forget the recorded unacked operation (e.g. between two
        independently injected crashes on one plan)."""
        self._unacked_op = None


#: Shared no-op plan used by components when the caller does not inject one.
NO_FAULTS = FaultPlan()
