"""Power-failure and media-fault injection.

The paper's atomicity argument (Section 4.2.2, Figure 4) is about what
survives a power cut at each step of a SHARE operation or a page write.  To
test it, the FTL and the engines call :meth:`FaultPlan.checkpoint` with a
named fault point at every step that could be interrupted; a test arms the
plan to blow up at a chosen point, catches :class:`PowerFailure`, throws
away all volatile state, and restarts from the persisted media image.

The plan also journals the **ack boundary** of durable operations: code
wraps each host-visible command in :meth:`FaultPlan.operation`, and the
plan remembers the single operation that was in flight when a power
failure fired (:meth:`unacked_op`).  That record is what lets crash tests
assert the strict contract — *acknowledged* operations must survive, and
only the one unacknowledged operation may be ambiguous — instead of
guessing which LPNs were in flight.  Leaving the ``with`` block cleanly
first fires a ``<kind>.ack`` checkpoint (modelling power failing after
the media work but before completion reaches the caller), then marks the
operation acknowledged.

Alongside the power fuses, the plan carries a :class:`MediaFaultSet`
(:attr:`FaultPlan.media`) of armable **media faults**: uncorrectable or
correctable-after-retry read errors (:class:`ReadFault`), program
failures (:class:`ProgramFault`), erase failures (:class:`EraseFault`),
retention/read-disturb decay keyed to erase counts (:class:`ReadDecay`),
and silent bit corruption (:class:`CorruptRead`).  The NAND array
consults the set on every read/program/erase; a disarmed set costs one
attribute check per operation.  Unlike power fuses, media faults do not
end the run — they are raised as typed :class:`MediaError` subclasses
the FTL is expected to survive.

One layer up from the media, the plan also carries a
:class:`CommandFaultSet` (:attr:`FaultPlan.commands`) of armable
**command faults** at the host→device boundary: latency spikes
(:class:`LatencySpike`), deadline-exceeded timeouts
(:class:`CommandTimeout`), transient device-busy backpressure
(:class:`DeviceBusy`), and a sticky SHARE-unsupported/hung outage
(:class:`ShareOutage`).  The SSD facade consults the set at command
submission and completion; faults are targetable by nth occurrence of
a command kind or by LPN range, like media faults.  These model the
failures a production host sees without the medium being at fault —
the host resilience layer (:mod:`repro.host.resilience`) is what is
expected to survive them.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CommandTimeoutError,
    CommandUnsupportedError,
    DeviceBusyError,
    EraseFailError,
    PowerFailure,
    ProgramFailError,
    UncorrectableReadError,
)


class PowerFailAfter:
    """Fire a :class:`PowerFailure` the ``nth`` time ``point`` is reached.

    ``nth`` is 1-based: ``PowerFailAfter("nand.program", 3)`` survives two
    page programs and dies during the third.
    """

    def __init__(self, point: str, nth: int = 1) -> None:
        if nth < 1:
            raise ValueError(f"nth must be >= 1: {nth}")
        self.point = point
        self.nth = nth

    def __repr__(self) -> str:
        return f"PowerFailAfter({self.point!r}, nth={self.nth})"


class OpRecord:
    """One journalled operation: what was asked, and whether it acked.

    ``status`` is ``"inflight"`` while the operation runs, ``"acked"``
    once it returned to the caller, ``"unacked"`` when a power failure
    interrupted it, and ``"failed"`` when it raised an ordinary error
    (a failed operation promises nothing, so it is not ambiguous)."""

    __slots__ = ("op_id", "kind", "lpns", "status")

    def __init__(self, op_id: int, kind: str, lpns: Tuple[int, ...]) -> None:
        self.op_id = op_id
        self.kind = kind
        self.lpns = lpns
        self.status = "inflight"

    def __repr__(self) -> str:
        return (f"OpRecord(id={self.op_id}, kind={self.kind!r}, "
                f"lpns={self.lpns!r}, status={self.status!r})")


class _OpScope:
    """Context manager for one :meth:`FaultPlan.operation` scope."""

    __slots__ = ("plan", "kind", "record", "deferred")

    def __init__(self, plan: "FaultPlan", kind: str,
                 record: Optional[OpRecord], deferred: bool = False) -> None:
        self.plan = plan
        self.kind = kind
        self.record = record
        self.deferred = deferred

    def __enter__(self) -> Optional[OpRecord]:
        return self.record

    def __exit__(self, exc_type, exc, tb) -> bool:
        plan = self.plan
        plan._op_depth -= 1
        record = self.record
        if record is not None:
            plan._current_op = None
        if exc_type is None:
            if self.deferred:
                # Queued device: the media work is submitted but the ack
                # only reaches the caller at the *completion* event.  The
                # op stays pending until complete_operation() fires the
                # ack checkpoint in completion order.
                plan._pending_acks.append((self.kind, record))
                return False
            # Power may fail after the media work but before completion
            # reaches the caller: the op's effect can be durable even
            # though it never acknowledged.
            try:
                plan.checkpoint(self.kind + ".ack")
            except PowerFailure:
                plan._mark_unacked(record)
                raise
            if record is not None:
                record.status = "acked"
                plan._last_acked = record
            return False
        if issubclass(exc_type, PowerFailure):
            plan._mark_unacked(record)
        elif record is not None:
            record.status = "failed"
        return False


#: Sentinel wrapped around a page payload by :class:`CorruptRead`: the read
#: "succeeds" at the chip level but returns garbage.  Checksummed layers
#: (the mapping log, engine page checksums) are expected to detect it.
CORRUPT_PAYLOAD = "media-corrupt"


class MediaFault:
    """Base class for armable media faults.

    Each fault targets either a *specific location* (``ppn``/``block``) or
    the *nth operation* of its kind counted from arming (``nth``, 1-based,
    global across every device sharing the plan).  Occurrence targeting is
    what lets the media-fault explorer sweep "every read/program/erase
    site" of a deterministic workload without knowing physical addresses
    up front: once the nth operation arrives, the fault binds to whatever
    location it landed on.
    """

    op = "?"

    def __init__(self, nth: Optional[int] = None,
                 location: Optional[int] = None) -> None:
        if (nth is None) == (location is None):
            raise ValueError("arm a media fault with exactly one of nth= "
                             "or a target location")
        if nth is not None and nth < 1:
            raise ValueError(f"nth must be >= 1: {nth}")
        self.nth = nth
        self.location = location   # bound ppn (read/program) or block (erase)
        self.fired = False         # has the fault triggered at least once?

    def matches(self, count: int, location: int) -> bool:
        """Does this fault trigger for op number ``count`` at ``location``?"""
        if self.location is not None:
            return location == self.location
        if self.fired:
            return False
        return count == self.nth

    def __repr__(self) -> str:
        target = (f"nth={self.nth}" if self.location is None
                  else f"at={self.location}")
        return f"{type(self).__name__}({target}, fired={self.fired})"


class ReadFault(MediaFault):
    """Read failure at a page.

    ``retries_to_clear=None`` models a dead page: every read raises
    :class:`UncorrectableReadError` for as long as the fault stays armed
    (sticky — once an ``nth``-targeted fault fires, it binds to the PPN it
    hit).  ``retries_to_clear=k`` models a correctable error: the first
    ``k`` read attempts fail, attempt ``k+1`` succeeds and the fault
    clears — exactly the shape firmware read-retry is built for.
    """

    op = "read"

    def __init__(self, nth: Optional[int] = None, ppn: Optional[int] = None,
                 retries_to_clear: Optional[int] = None) -> None:
        super().__init__(nth, ppn)
        if retries_to_clear is not None and retries_to_clear < 1:
            raise ValueError(
                f"retries_to_clear must be >= 1 or None: {retries_to_clear}")
        self.retries_to_clear = retries_to_clear
        self._failed_attempts = 0


class CorruptRead(MediaFault):
    """Silent bit corruption: the read *succeeds* but returns garbage.

    The NAND returns ``(CORRUPT_PAYLOAD, ppn)`` instead of the stored
    payload.  Sticky once fired — a damaged page stays damaged.  This is
    the fault the mapping log's record checksums exist to catch.
    """

    op = "read"

    def __init__(self, nth: Optional[int] = None,
                 ppn: Optional[int] = None) -> None:
        super().__init__(nth, ppn)


class ProgramFault(MediaFault):
    """One program operation fails; the target page is left unusable.

    One-shot: real program failures condemn the page (and, for the FTL,
    the block), but a re-program to a fresh page succeeds.
    """

    op = "program"

    def __init__(self, nth: Optional[int] = None,
                 ppn: Optional[int] = None) -> None:
        super().__init__(nth, ppn)


class EraseFault(MediaFault):
    """An erase fails and the block grows bad: sticky — every further
    erase of the block fails too, so tests can prove the FTL really
    retired it instead of retrying forever."""

    op = "erase"

    def __init__(self, nth: Optional[int] = None,
                 block: Optional[int] = None) -> None:
        super().__init__(nth, block)


class ReadDecay:
    """Retention / read-disturb decay keyed to wear.

    While armed, reading any page whose block has an erase count of at
    least ``erase_threshold`` fails ``retries_to_clear`` consecutive
    attempts before succeeding (per page, deterministic).  This models
    worn blocks needing read-retry long before they die outright.
    """

    op = "read"

    def __init__(self, erase_threshold: int,
                 retries_to_clear: int = 1) -> None:
        if erase_threshold < 1:
            raise ValueError(f"erase_threshold must be >= 1: {erase_threshold}")
        if retries_to_clear < 1:
            raise ValueError(f"retries_to_clear must be >= 1: {retries_to_clear}")
        self.erase_threshold = erase_threshold
        self.retries_to_clear = retries_to_clear
        self._attempts: Dict[int, int] = {}
        self.fired = False

    def __repr__(self) -> str:
        return (f"ReadDecay(erase_threshold={self.erase_threshold}, "
                f"retries_to_clear={self.retries_to_clear})")


class MediaFaultSet:
    """The armed media faults of one :class:`FaultPlan`.

    The NAND array calls :meth:`on_read` / :meth:`on_program` /
    :meth:`on_erase` only while :attr:`active` is true, so the disarmed
    common case costs a single attribute check per chip operation.  The
    set counts operations per kind (from the moment counting is enabled
    by arming or :meth:`enable_counting`) so sweeps can enumerate every
    operation of a deterministic run and target each one in turn.
    """

    def __init__(self) -> None:
        self._faults: List[MediaFault] = []
        self._decay: Optional[ReadDecay] = None
        self._counting = False
        self.op_counts: Dict[str, int] = {"read": 0, "program": 0,
                                          "erase": 0}

    @property
    def active(self) -> bool:
        return bool(self._faults) or self._decay is not None or self._counting

    def arm(self, fault) -> None:
        """Arm a media fault (or a :class:`ReadDecay` model)."""
        if isinstance(fault, ReadDecay):
            if self._decay is not None:
                raise ValueError("a ReadDecay model is already armed "
                                 "(disarm first to replace it)")
            self._decay = fault
            return
        if not isinstance(fault, MediaFault):
            raise TypeError(f"not a media fault: {fault!r}")
        self._faults.append(fault)

    def disarm(self) -> None:
        """Drop every armed media fault and decay model."""
        self._faults = []
        self._decay = None

    def enable_counting(self) -> None:
        """Count chip operations even with no fault armed (enumeration)."""
        self._counting = True

    def armed(self) -> List:
        out: List = list(self._faults)
        if self._decay is not None:
            out.append(self._decay)
        return out

    def fired_faults(self) -> List:
        return [fault for fault in self.armed() if fault.fired]

    # ----------------------------------------------------------- chip hooks

    def on_read(self, ppn: int, erase_count: int) -> bool:
        """Called once per read attempt.  Raises
        :class:`UncorrectableReadError` when the attempt fails; returns
        True when the read must return a corrupted payload instead."""
        count = self.op_counts["read"] + 1
        self.op_counts["read"] = count
        corrupt = False
        for fault in self._faults:
            if fault.op != "read" or not fault.matches(count, ppn):
                continue
            fault.fired = True
            if fault.location is None:
                fault.location = ppn   # nth-fault binds to the page it hit
            if isinstance(fault, CorruptRead):
                corrupt = True
                continue
            assert isinstance(fault, ReadFault)
            if fault.retries_to_clear is not None:
                if fault._failed_attempts >= fault.retries_to_clear:
                    self._faults.remove(fault)   # cleared by retry
                    continue
                fault._failed_attempts += 1
            raise UncorrectableReadError(
                f"injected uncorrectable read at PPN {ppn} "
                f"(attempt {getattr(fault, '_failed_attempts', 0) or 'n'})")
        decay = self._decay
        if decay is not None and erase_count >= decay.erase_threshold:
            attempts = decay._attempts.get(ppn, 0)
            if attempts < decay.retries_to_clear:
                decay._attempts[ppn] = attempts + 1
                decay.fired = True
                raise UncorrectableReadError(
                    f"retention decay at PPN {ppn} "
                    f"(block erase count {erase_count} >= "
                    f"{decay.erase_threshold}, attempt {attempts + 1})")
            decay._attempts[ppn] = 0
        return corrupt

    def on_program(self, ppn: int) -> None:
        """Called once per program.  Raises :class:`ProgramFailError` when
        an armed fault matches (one-shot)."""
        count = self.op_counts["program"] + 1
        self.op_counts["program"] = count
        for fault in self._faults:
            if fault.op != "program" or not fault.matches(count, ppn):
                continue
            fault.fired = True
            self._faults.remove(fault)   # one-shot
            raise ProgramFailError(
                f"injected program failure at PPN {ppn}")

    def on_erase(self, block: int) -> None:
        """Called once per erase.  Raises :class:`EraseFailError` when an
        armed fault matches (sticky on the block once fired)."""
        count = self.op_counts["erase"] + 1
        self.op_counts["erase"] = count
        for fault in self._faults:
            if fault.op != "erase" or not fault.matches(count, block):
                continue
            fault.fired = True
            if fault.location is None:
                fault.location = block   # sticky: the block stays bad
            raise EraseFailError(
                f"injected erase failure at block {block}")


#: Command kinds the device facade reports to the command-fault set.
COMMAND_KINDS = ("read", "write", "awrite", "trim", "flush", "share")


class CommandFault:
    """Base class for armable host-command faults.

    Each fault targets either the *nth command* of its kind counted from
    arming (1-based, global across every device sharing the plan) or any
    command of its kind touching an LPN in ``lpn_range`` (a half-open
    ``(start, end)`` interval).  ``sticky`` faults keep firing from their
    first match onward — the shape of a hung firmware unit — while
    non-sticky faults are one-shot.
    """

    def __init__(self, kind: str, nth: Optional[int] = None,
                 lpn_range: Optional[Tuple[int, int]] = None,
                 sticky: bool = False) -> None:
        if kind not in COMMAND_KINDS:
            raise ValueError(f"unknown command kind {kind!r} "
                             f"(choose from {', '.join(COMMAND_KINDS)})")
        if (nth is None) == (lpn_range is None):
            raise ValueError("arm a command fault with exactly one of "
                             "nth= or lpn_range=")
        if nth is not None and nth < 1:
            raise ValueError(f"nth must be >= 1: {nth}")
        if lpn_range is not None and lpn_range[0] >= lpn_range[1]:
            raise ValueError(f"empty lpn_range: {lpn_range!r}")
        self.kind = kind
        self.nth = nth
        self.lpn_range = lpn_range
        self.sticky = sticky
        self.fired = False

    #: Which command phase the fault acts on: "submit" faults reject the
    #: command before the device does any work; "complete" faults let the
    #: work happen and lose the completion on the way back to the host.
    phase = "submit"

    def matches(self, count: int, lpns: Sequence[int]) -> bool:
        if self.lpn_range is not None:
            start, end = self.lpn_range
            hit = any(start <= lpn < end for lpn in lpns)
            return hit and (self.sticky or not self.fired)
        if self.sticky:
            return count >= self.nth
        return not self.fired and count == self.nth

    def __repr__(self) -> str:
        target = (f"nth={self.nth}" if self.lpn_range is None
                  else f"lpns={self.lpn_range!r}")
        return (f"{type(self).__name__}({self.kind!r}, {target}, "
                f"sticky={self.sticky}, fired={self.fired})")


class LatencySpike(CommandFault):
    """The command succeeds but takes ``delay_us`` longer than normal —
    backpressure, internal GC, thermal throttling.  The device facade
    charges the delay to its virtual clock."""

    def __init__(self, kind: str, nth: Optional[int] = None,
                 lpn_range: Optional[Tuple[int, int]] = None,
                 delay_us: int = 10_000, sticky: bool = False) -> None:
        super().__init__(kind, nth, lpn_range, sticky)
        if delay_us < 1:
            raise ValueError(f"delay_us must be >= 1: {delay_us}")
        self.delay_us = delay_us


class CommandTimeout(CommandFault):
    """The command exceeds its deadline and the host sees
    :class:`CommandTimeoutError`.

    With ``after_apply=False`` (default) the command is rejected at
    submission — the device never executed it.  With ``after_apply=True``
    the device *does* execute the command and only the completion is
    lost: the ambiguous case real timeouts create, safe to retry only
    because SHARE is idempotent."""

    def __init__(self, kind: str, nth: Optional[int] = None,
                 lpn_range: Optional[Tuple[int, int]] = None,
                 sticky: bool = False, after_apply: bool = False) -> None:
        super().__init__(kind, nth, lpn_range, sticky)
        self.after_apply = after_apply

    @property
    def phase(self) -> str:
        return "complete" if self.after_apply else "submit"


class DeviceBusy(CommandFault):
    """Transient backpressure: the next ``clears_after`` matching
    commands are rejected with :class:`DeviceBusyError`, then the fault
    clears — the shape retry-with-backoff is built for.  Once the nth
    command of the kind arrives, every following command of that kind is
    rejected until the budget is spent (a busy device stays busy for the
    retry, too)."""

    def __init__(self, kind: str, nth: Optional[int] = None,
                 lpn_range: Optional[Tuple[int, int]] = None,
                 clears_after: int = 1) -> None:
        super().__init__(kind, nth, lpn_range, sticky=True)
        if clears_after < 1:
            raise ValueError(f"clears_after must be >= 1: {clears_after}")
        self.clears_after = clears_after
        self._rejected = 0


class ShareOutage(CommandFault):
    """Sticky SHARE outage: from the nth SHARE command onward, every
    SHARE is rejected with :class:`CommandUnsupportedError` (or
    :class:`CommandTimeoutError` with ``error="timeout"`` — a hung
    firmware unit).  Retrying never helps; engines must degrade to
    their classic two-phase paths."""

    def __init__(self, nth: int = 1, error: str = "unsupported") -> None:
        super().__init__("share", nth=nth, sticky=True)
        if error not in ("unsupported", "timeout"):
            raise ValueError(f"error must be 'unsupported' or 'timeout': "
                             f"{error!r}")
        self.error = error


class CommandFaultSet:
    """The armed command faults of one :class:`FaultPlan`.

    The SSD facade calls :meth:`on_command` at the submission and
    completion of every host-visible command, but only while
    :attr:`active` is true — the disarmed common case costs one
    attribute check per command.  Commands are counted per kind (from
    arming or :meth:`enable_counting`) so sweeps can enumerate every
    SHARE site of a deterministic run and target each one in turn.
    """

    def __init__(self) -> None:
        self._faults: List[CommandFault] = []
        self._counting = False
        self.op_counts: Dict[str, int] = {kind: 0 for kind in COMMAND_KINDS}

    @property
    def active(self) -> bool:
        return bool(self._faults) or self._counting

    def arm(self, fault: CommandFault) -> None:
        if not isinstance(fault, CommandFault):
            raise TypeError(f"not a command fault: {fault!r}")
        self._faults.append(fault)

    def disarm(self) -> None:
        self._faults = []

    def enable_counting(self) -> None:
        """Count commands even with no fault armed (enumeration runs)."""
        self._counting = True

    def armed(self) -> List[CommandFault]:
        return list(self._faults)

    def fired_faults(self) -> List[CommandFault]:
        return [fault for fault in self._faults if fault.fired]

    # --------------------------------------------------------- device hook

    def on_command(self, kind: str, lpns: Sequence[int],
                   phase: str = "submit") -> int:
        """Called by the device facade at each command phase.

        Counts the command (submission phase only), raises the typed
        error of the first matching error fault, and returns the total
        extra latency (µs) of matching latency spikes."""
        if phase == "submit":
            count = self.op_counts[kind] + 1
            self.op_counts[kind] = count
        else:
            count = self.op_counts[kind]
        delay_us = 0
        for fault in list(self._faults):
            if fault.kind != kind or fault.phase != phase:
                continue
            if not fault.matches(count, lpns):
                continue
            fault.fired = True
            if isinstance(fault, LatencySpike):
                delay_us += fault.delay_us
                if not fault.sticky:
                    self._faults.remove(fault)
                continue
            if isinstance(fault, DeviceBusy):
                if fault._rejected >= fault.clears_after:
                    self._faults.remove(fault)   # backpressure drained
                    continue
                fault._rejected += 1
                raise DeviceBusyError(
                    f"injected device-busy on {kind} command #{count} "
                    f"(rejection {fault._rejected}/{fault.clears_after})")
            if isinstance(fault, ShareOutage):
                if fault.error == "timeout":
                    raise CommandTimeoutError(
                        f"injected SHARE hang on command #{count} "
                        f"(sticky from #{fault.nth})")
                raise CommandUnsupportedError(
                    f"injected SHARE outage on command #{count} "
                    f"(sticky from #{fault.nth})")
            assert isinstance(fault, CommandTimeout)
            if not fault.sticky:
                self._faults.remove(fault)
            raise CommandTimeoutError(
                f"injected {kind} timeout on command #{count} at "
                f"{phase} ({'applied' if phase == 'complete' else 'not applied'})")
        return delay_us


class ShardKill:
    """Kill one shard's primary device after the nth acknowledged
    cluster write.

    ``nth`` is 1-based and counts acknowledged writes across the whole
    cluster — the shard router consults the fault set once per ack, so
    arming ``ShardKill(nth=i)`` for every ``i`` sweeps a single-device
    kill across every ack boundary of a run.  ``shard`` pins a victim by
    name; by default the shard that acknowledged the nth write is killed
    (the interesting case — it holds the just-acked data).  One-shot:
    the fault fires at most once and records its victim.
    """

    def __init__(self, nth: int = 1, shard: Optional[str] = None) -> None:
        if nth < 1:
            raise ValueError(f"nth must be >= 1: {nth}")
        self.nth = nth
        self.shard = shard
        self.fired = False
        self.victim: Optional[str] = None

    def __repr__(self) -> str:
        return f"ShardKill(nth={self.nth}, shard={self.shard!r})"


class ShardMediaStorm:
    """Escalating NAND degradation on one shard's primary after the nth
    acknowledged cluster write.

    Where :class:`ShardKill` models sudden death, the storm models the
    slow kind: it arms ``program_fails`` consecutive :class:`ProgramFault`
    (and ``erase_fails`` :class:`EraseFault`) occurrences on the victim
    *device's own* fault plan, targeting the next chip operations of each
    kind.  The device keeps serving — the FTL absorbs each failure by
    retiring the block onto a spare — so no client sees an error; only
    the ``media.*`` counters move.  The cluster health monitor is what
    must notice and trip a *proactive* failover.  One-shot; records its
    victim like a kill.
    """

    def __init__(self, nth: int = 1, shard: Optional[str] = None,
                 program_fails: int = 3, erase_fails: int = 1) -> None:
        if nth < 1:
            raise ValueError(f"nth must be >= 1: {nth}")
        if program_fails < 0 or erase_fails < 0:
            raise ValueError("fault counts must be >= 0")
        if program_fails + erase_fails < 1:
            raise ValueError("a storm needs at least one fault")
        self.nth = nth
        self.shard = shard
        self.program_fails = program_fails
        self.erase_fails = erase_fails
        self.fired = False
        self.victim: Optional[str] = None

    def inject(self, ssd) -> None:
        """Arm the storm's media faults on ``ssd``'s plan, targeting the
        chip operations immediately after the current counts."""
        plan = ssd.faults
        base = plan.media.op_counts["program"]
        for offset in range(self.program_fails):
            plan.arm_media(ProgramFault(nth=base + 1 + offset))
        base = plan.media.op_counts["erase"]
        for offset in range(self.erase_fails):
            plan.arm_media(EraseFault(nth=base + 1 + offset))

    def __repr__(self) -> str:
        return (f"ShardMediaStorm(nth={self.nth}, shard={self.shard!r}, "
                f"program_fails={self.program_fails}, "
                f"erase_fails={self.erase_fails})")


#: Faults the cluster set accepts: sudden shard death or media storms.
CLUSTER_FAULT_TYPES = (ShardKill, ShardMediaStorm)


class ClusterFaultSet:
    """The armed cluster-tier faults of one :class:`FaultPlan`.

    The shard router calls :meth:`on_ack` after every acknowledged
    write, but only while :attr:`active` is true — the disarmed common
    case costs one attribute check per ack.  Acks are counted (from
    arming or :meth:`enable_counting`) so crashcheck sweeps can
    enumerate every ack boundary of a deterministic run and target each
    one in turn.
    """

    def __init__(self) -> None:
        self._faults: List = []
        self._counting = False
        self.acked_writes = 0

    @property
    def active(self) -> bool:
        return bool(self._faults) or self._counting

    def arm(self, fault) -> None:
        if not isinstance(fault, CLUSTER_FAULT_TYPES):
            raise TypeError(f"not a cluster fault: {fault!r}")
        self._faults.append(fault)

    def disarm(self) -> None:
        self._faults = []

    def enable_counting(self) -> None:
        """Count acks even with no fault armed (enumeration runs)."""
        self._counting = True

    def armed(self) -> List:
        return list(self._faults)

    def fired_faults(self) -> List:
        return [fault for fault in self._faults if fault.fired]

    # --------------------------------------------------------- router hook

    def on_ack(self, shard: str):
        """Count one acknowledged write on ``shard``.

        Returns the fired fault — a :class:`ShardKill` to execute or a
        :class:`ShardMediaStorm` to inject — when an armed fault's fuse
        burns down, else ``None``.  The router performs the kill (power
        cycle + breaker latch) or storm (NAND fault arming) so the run
        continues through failover rather than aborting."""
        count = self.acked_writes + 1
        self.acked_writes = count
        for fault in self._faults:
            if fault.fired or count != fault.nth:
                continue
            fault.fired = True
            fault.victim = fault.shard or shard
            return fault
        return None


class FaultPlan:
    """Collects armed faults and fires them at matching checkpoints.

    A disarmed plan (the default everywhere) is nearly free: one dict lookup
    per checkpoint.  The plan records every point it passes so tests can
    assert code paths were actually exercised, and each point may hold a
    *list* of fuses so two faults at different ``nth`` can coexist; arming
    the same (point, nth-from-now) twice raises instead of silently
    replacing the earlier fuse.
    """

    def __init__(self) -> None:
        # point -> sorted absolute hit counts at which to fire.
        self._armed: Dict[str, List[int]] = {}
        self._hits: Dict[str, int] = {}
        self._trace_enabled = False
        self._trace: List[str] = []
        # Operation (ack-boundary) journal: only the current record and
        # the terminal ones are kept, never a growing log — NO_FAULTS is
        # a process-wide singleton and must stay O(1) in memory.
        self._op_depth = 0
        self._op_seq = 0
        self._current_op: Optional[OpRecord] = None
        self._unacked_ops: List[OpRecord] = []
        self._last_acked: Optional[OpRecord] = None
        # Deferred-ack queue: (kind, record) pairs whose media work was
        # submitted but whose completion has not fired yet.  The queued
        # device pops each entry via complete_operation(), so the list
        # is bounded by the device queue depth.
        self._pending_acks: List[Tuple[str, Optional[OpRecord]]] = []
        # Nested operation scopes carry no record and never mutate
        # themselves, so one frozen instance per (kind, deferred) serves
        # every nested entry — the FTL-inside-device nesting happens on
        # every command, and the per-call allocation is measurable.
        self._nested_scopes: Dict[Tuple[str, bool], _OpScope] = {}
        # Armed media faults; the NAND array consults this on every chip
        # operation (one attribute check when nothing is armed).
        self.media = MediaFaultSet()
        # Armed command faults; the SSD facade consults this on every
        # host-visible command (same one-attribute-check fast path).
        self.commands = CommandFaultSet()
        # Armed cluster faults; the shard router consults this once per
        # acknowledged write (same one-attribute-check fast path).
        self.cluster = ClusterFaultSet()

    def arm(self, fault: PowerFailAfter) -> None:
        """Arm a power failure at ``fault.point``.

        ``nth`` counts from the moment of arming: hits that happened
        before arm() do not consume the fuse.  Several fuses may be armed
        at one point (different ``nth``); re-arming an identical fuse
        raises ``ValueError`` — a silent overwrite would hide test bugs."""
        target = self._hits.get(fault.point, 0) + fault.nth
        fuses = self._armed.setdefault(fault.point, [])
        if target in fuses:
            raise ValueError(
                f"fault already armed at {fault.point!r} for nth={fault.nth} "
                f"(disarm first to replace it)")
        insort(fuses, target)

    def disarm(self, point: Optional[str] = None) -> None:
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def armed_count(self, point: str) -> int:
        """How many fuses are currently armed at ``point``."""
        return len(self._armed.get(point, ()))

    def arm_media(self, fault) -> None:
        """Arm a media fault (see :class:`MediaFaultSet`)."""
        self.media.arm(fault)

    def disarm_media(self) -> None:
        """Drop every armed media fault."""
        self.media.disarm()

    def arm_command(self, fault: CommandFault) -> None:
        """Arm a command fault (see :class:`CommandFaultSet`)."""
        self.commands.arm(fault)

    def disarm_commands(self) -> None:
        """Drop every armed command fault."""
        self.commands.disarm()

    def arm_cluster(self, fault) -> None:
        """Arm a cluster-tier fault (see :class:`ClusterFaultSet`)."""
        self.cluster.arm(fault)

    def disarm_cluster(self) -> None:
        """Drop every armed cluster fault."""
        self.cluster.disarm()

    def enable_trace(self) -> None:
        self._trace_enabled = True

    @property
    def trace(self) -> List[str]:
        return list(self._trace)

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached so far."""
        return self._hits.get(point, 0)

    def checkpoint(self, point: str) -> None:
        """Called by instrumented code at each interruptible step.

        Raises :class:`PowerFailure` when an armed fault's count is
        reached; the fired fuse is consumed (fires only once), any other
        fuses at the point stay armed.
        """
        hits = self._hits
        count = hits.get(point, 0) + 1
        hits[point] = count
        if self._trace_enabled:
            self._trace.append(point)
        armed = self._armed
        if not armed:
            return
        fuses = armed.get(point)
        if fuses and count == fuses[0]:
            fuses.pop(0)
            if not fuses:
                del self._armed[point]
            raise PowerFailure(f"injected power failure at {point!r} (hit {count})")

    # ------------------------------------------------- ack-boundary journal

    def operation(self, kind: str, lpns: Sequence[int] = (),
                  deferred: bool = False) -> _OpScope:
        """Bracket one host-visible durable operation.

        Usage: ``with faults.operation("ftl.write", (lpn,)): ...``.  On a
        clean exit the scope fires the ``<kind>.ack`` checkpoint, then
        marks the operation acknowledged.  If a :class:`PowerFailure`
        escapes the scope, the record joins :meth:`unacked_ops` — the
        operations whose durability is legitimately ambiguous.  Nested
        scopes (a device command calling into the FTL) are transparent:
        only the outermost scope journals, though a nested clean exit
        still fires its own ``.ack`` checkpoint for point coverage.

        With ``deferred=True`` (the queued device) a clean exit does
        *not* fire the ack checkpoint; the operation stays pending until
        :meth:`complete_operation` is called at its completion event, so
        the ack boundary is journalled in completion order rather than
        submission order."""
        if self._op_depth:
            self._op_depth += 1
            key = (kind, deferred)
            scope = self._nested_scopes.get(key)
            if scope is None:
                scope = _OpScope(self, kind, None, deferred)
                self._nested_scopes[key] = scope
            return scope
        self._op_depth = 1
        self._op_seq += 1
        record = OpRecord(self._op_seq, kind, tuple(lpns))
        self._current_op = record
        return _OpScope(self, kind, record, deferred)

    def complete_operation(self, kind: str,
                           record: Optional[OpRecord]) -> None:
        """Deliver the completion of a deferred operation scope: fires
        the ``<kind>.ack`` checkpoint, then marks the record acked.
        Called by the device at the op's *completion* event, so acks are
        journalled in the order the device completes work."""
        for index, (pending_kind, pending_record) in enumerate(
                self._pending_acks):
            if pending_kind == kind and pending_record is record:
                del self._pending_acks[index]
                break
        try:
            self.checkpoint(kind + ".ack")
        except PowerFailure:
            self._mark_unacked(record)
            raise
        if record is not None:
            record.status = "acked"
            self._last_acked = record

    def abandon_operation(self, kind: str,
                          record: Optional[OpRecord]) -> None:
        """Drop a deferred operation whose completion will never fire
        (power cycle with commands in flight): the op was submitted but
        never acknowledged, so it is ambiguous."""
        for index, (pending_kind, pending_record) in enumerate(
                self._pending_acks):
            if pending_kind == kind and pending_record is record:
                del self._pending_acks[index]
                break
        self._mark_unacked(record)

    def fail_operation(self, kind: str,
                       record: Optional[OpRecord]) -> None:
        """A deferred operation's completion surfaced an ordinary error
        to the host: pop it and mark it failed (a failed operation
        promises nothing, so it is not ambiguous)."""
        for index, (pending_kind, pending_record) in enumerate(
                self._pending_acks):
            if pending_kind == kind and pending_record is record:
                del self._pending_acks[index]
                break
        if record is not None:
            record.status = "failed"

    def _mark_unacked(self, record: Optional[OpRecord]) -> None:
        if record is not None and record not in self._unacked_ops:
            record.status = "unacked"
            self._unacked_ops.append(record)

    def unacked_ops(self) -> List[OpRecord]:
        """Every operation whose durability is ambiguous: interrupted by
        a power failure, or submitted to the device queue but never
        completed (its deferred ack is still pending)."""
        out = list(self._unacked_ops)
        out.extend(record for _, record in self._pending_acks
                   if record is not None and record not in out)
        return out

    def unacked_op(self) -> Optional[OpRecord]:
        """The first ambiguous operation, or None when every operation
        either acked or failed (compat shim over :meth:`unacked_ops`)."""
        ops = self.unacked_ops()
        return ops[0] if ops else None

    def last_acked_op(self) -> Optional[OpRecord]:
        return self._last_acked

    def clear_unacked(self) -> None:
        """Forget the recorded unacked operations (e.g. between two
        independently injected crashes on one plan)."""
        self._unacked_ops = []
        self._pending_acks = []


class _PassiveScope:
    """Scope returned by :class:`_PassiveFaultPlan.operation`: enters to
    ``None`` and journals nothing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_PASSIVE_SCOPE = _PassiveScope()


class _PassiveFaultPlan(FaultPlan):
    """The plan behind :data:`NO_FAULTS`: nothing is ever armed on it, so
    checkpoints, operation scopes and the ack journal are pure overhead.
    Anything that wants injection or the journal must construct its own
    :class:`FaultPlan`; arming this shared singleton would silently
    couple unrelated components, so :meth:`arm` refuses."""

    def arm(self, fault) -> None:
        raise RuntimeError(
            "NO_FAULTS is the shared passive plan; construct a FaultPlan() "
            "to arm faults")

    def enable_trace(self) -> None:
        raise RuntimeError(
            "NO_FAULTS is the shared passive plan; construct a FaultPlan() "
            "to trace checkpoints")

    def checkpoint(self, point: str) -> None:
        pass

    def operation(self, kind: str, lpns: Sequence[int] = (),
                  deferred: bool = False) -> "_PassiveScope":
        return _PASSIVE_SCOPE

    def complete_operation(self, kind, record) -> None:
        pass

    def abandon_operation(self, kind, record) -> None:
        pass

    def fail_operation(self, kind, record) -> None:
        pass


#: Shared no-op plan used by components when the caller does not inject one.
NO_FAULTS = _PassiveFaultPlan()
