"""Deterministic virtual clock.

Every simulated component charges time to a shared :class:`SimClock` instead
of sleeping.  Throughput numbers reported by the benchmark harness are
``operations / clock.now_seconds``, which makes every experiment exactly
reproducible regardless of host machine speed.

Time is tracked in integer microseconds to avoid floating-point drift when
millions of small latencies are accumulated.
"""

from __future__ import annotations

US_PER_SECOND = 1_000_000
US_PER_MS = 1_000


class SimClock:
    """Monotonic virtual clock with microsecond resolution.

    The clock only moves forward via :meth:`advance`; components never read
    wall-clock time.  A single clock instance is shared by the whole
    simulated stack (host CPU model, SSD, log device).
    """

    __slots__ = ("_now_us", "_reset_hooks")

    def __init__(self, start_us: int = 0) -> None:
        if start_us < 0:
            raise ValueError(f"clock cannot start at negative time: {start_us}")
        self._now_us = int(start_us)
        self._reset_hooks = []

    @property
    def now_us(self) -> int:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_us / US_PER_MS

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds."""
        return self._now_us / US_PER_SECOND

    def advance(self, delta_us: float) -> int:
        """Move time forward by ``delta_us`` microseconds.

        Fractional microseconds are accepted (latency models may scale) and
        rounded to the nearest whole microsecond.  Returns the new time.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock backwards: {delta_us}")
        self._now_us += int(round(delta_us))
        return self._now_us

    def advance_to(self, time_us: int) -> int:
        """Move time forward to ``time_us`` if it lies in the future.

        Used by the event scheduler when delivering a completion whose
        timestamp may already have been overtaken (out-of-order
        completions under multi-channel parallelism): the clock clamps
        instead of moving backwards.  Returns the (possibly unchanged)
        current time.
        """
        time_us = int(time_us)
        if time_us > self._now_us:
            self._now_us = time_us
        return self._now_us

    def elapsed_since(self, start_us: int) -> int:
        """Microseconds elapsed since a previously sampled timestamp."""
        return self._now_us - start_us

    def on_reset(self, hook) -> None:
        """Register a callback invoked whenever the clock is rewound.

        Components that cache absolute timestamps (the event-driven
        device holds queue completion times and channel busy horizons)
        register here so a harness ``reset()`` between experiment runs
        cannot leave them anchored in a future that no longer exists.
        """
        self._reset_hooks.append(hook)

    def reset(self) -> None:
        """Rewind to time zero.  Only the benchmark harness should use this,
        between independent experiment runs."""
        self._now_us = 0
        for hook in self._reset_hooks:
            hook()

    def __repr__(self) -> str:
        return f"SimClock(now_us={self._now_us})"
