"""Deterministic virtual clock.

Every simulated component charges time to a shared :class:`SimClock` instead
of sleeping.  Throughput numbers reported by the benchmark harness are
``operations / clock.now_seconds``, which makes every experiment exactly
reproducible regardless of host machine speed.

Time is tracked in integer microseconds to avoid floating-point drift when
millions of small latencies are accumulated.
"""

from __future__ import annotations

US_PER_SECOND = 1_000_000
US_PER_MS = 1_000


class SimClock:
    """Monotonic virtual clock with microsecond resolution.

    The clock only moves forward via :meth:`advance`; components never read
    wall-clock time.  A single clock instance is shared by the whole
    simulated stack (host CPU model, SSD, log device).
    """

    __slots__ = ("_now_us",)

    def __init__(self, start_us: int = 0) -> None:
        if start_us < 0:
            raise ValueError(f"clock cannot start at negative time: {start_us}")
        self._now_us = int(start_us)

    @property
    def now_us(self) -> int:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_us / US_PER_MS

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds."""
        return self._now_us / US_PER_SECOND

    def advance(self, delta_us: float) -> int:
        """Move time forward by ``delta_us`` microseconds.

        Fractional microseconds are accepted (latency models may scale) and
        rounded to the nearest whole microsecond.  Returns the new time.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock backwards: {delta_us}")
        self._now_us += int(round(delta_us))
        return self._now_us

    def elapsed_since(self, start_us: int) -> int:
        """Microseconds elapsed since a previously sampled timestamp."""
        return self._now_us - start_us

    def reset(self) -> None:
        """Rewind to time zero.  Only the benchmark harness should use this,
        between independent experiment runs."""
        self._now_us = 0

    def __repr__(self) -> str:
        return f"SimClock(now_us={self._now_us})"
