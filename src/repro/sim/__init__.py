"""Simulation substrate: virtual clock, statistics, RNG, fault injection."""

from repro.sim.clock import SimClock
from repro.sim.faults import FaultPlan, PowerFailAfter
from repro.sim.rng import ZipfianGenerator, make_rng
from repro.sim.stats import Counter, Histogram, LatencyRecorder, percentile

__all__ = [
    "SimClock",
    "FaultPlan",
    "PowerFailAfter",
    "ZipfianGenerator",
    "make_rng",
    "Counter",
    "Histogram",
    "LatencyRecorder",
    "percentile",
]
