"""Closed-loop multi-client queueing over the single-server device.

The paper's LinkBench experiments ran 16 concurrent client threads
against one OpenSSD.  The reproduction executes operations serially on a
virtual clock, which yields the right *throughput* (the device is the
bottleneck either way) but understates *latency*: a real client's
response time includes the queueing delay behind the other clients'
in-flight operations — the paper explicitly credits part of SHARE's
read-latency win to "read requests blocked by preceding writes".

:class:`ClosedLoopQueue` replays a serially-measured service-time stream
through a closed FIFO single-server queue with N clients and zero think
time.  Operations keep their measured service times; what changes is the
*response* time each client observes (wait + service).  This is exact
for a FIFO device serving one command at a time, which is how the
simulated SSD behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class QueuedCompletion:
    """One operation's timing after queueing."""

    client: int
    arrival_us: float
    start_us: float
    completion_us: float

    @property
    def response_us(self) -> float:
        return self.completion_us - self.arrival_us

    @property
    def wait_us(self) -> float:
        return self.start_us - self.arrival_us


class ClosedLoopQueue:
    """N closed-loop clients sharing one FIFO server.

    Each client issues its next operation the moment its previous one
    completes; the server (the device) processes one operation at a time
    in submission order.
    """

    def __init__(self, clients: int) -> None:
        if clients < 1:
            raise ValueError(f"need at least one client: {clients}")
        self.clients = clients
        self._client_free: List[float] = [0.0] * clients
        self._server_free = 0.0
        self._next_client = 0
        self.completions = 0

    def submit(self, service_us: float) -> QueuedCompletion:
        """Submit the next operation (round-robin over clients) with the
        serially-measured ``service_us``; returns its queued timing."""
        if service_us < 0:
            raise ValueError(f"negative service time: {service_us}")
        client = self._next_client
        self._next_client = (self._next_client + 1) % self.clients
        arrival = self._client_free[client]
        start = max(arrival, self._server_free)
        completion = start + service_us
        self._server_free = completion
        self._client_free[client] = completion
        self.completions += 1
        return QueuedCompletion(client, arrival, start, completion)

    @property
    def makespan_us(self) -> float:
        """Total virtual time to drain everything submitted so far."""
        return self._server_free
