"""InnoDB-like storage engine.

Implements the flush pipeline the paper's MySQL experiments exercise: an
LRU buffer pool, a redo log on a separate log device, and three page-flush
modes —

* ``DWB_ON``   — the default doublewrite: batch to the doublewrite buffer,
  fsync, then write each page at its home location (two writes per page),
* ``DWB_OFF``  — write home locations directly (fast but torn-page unsafe),
* ``SHARE``    — batch to the doublewrite buffer, fsync, then one SHARE
  batch remapping home LPNs onto the staged copies (Section 4.3).
"""

from repro.innodb.buffer_pool import BufferPool, Frame
from repro.innodb.btree import BTree
from repro.innodb.doublewrite import DoublewriteBuffer
from repro.innodb.engine import FlushMode, InnoDBConfig, InnoDBEngine
from repro.innodb.page import Page, torn_copy
from repro.innodb.redo import RedoLog

__all__ = [
    "BufferPool",
    "Frame",
    "BTree",
    "DoublewriteBuffer",
    "FlushMode",
    "InnoDBConfig",
    "InnoDBEngine",
    "Page",
    "torn_copy",
    "RedoLog",
]
