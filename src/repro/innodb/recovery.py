"""InnoDB crash recovery.

The paper's recoverability argument (Section 2, Section 4.3): after a
crash, the engine must find a consistent copy of every page.  Recovery
here does what InnoDB does, scaled to the reproduction:

1. **Doublewrite scan** — every page image in the doublewrite area is
   checked against its home location; a torn home page is repaired from
   the intact staged copy.  In SHARE mode this step is a no-op by
   construction: the home LPN *is* the staged copy (the device remapped
   it atomically), so no torn home page can exist.
2. **Redo replay** — the durable log records are re-applied logically
   over freshly rebuilt trees.  The reproduction's log is never
   truncated, so a full replay reconstructs every committed transaction;
   this sidesteps checkpoint-LSN bookkeeping without weakening the
   property under test (committed == recovered).

``recover`` returns a fresh engine plus a report of what was repaired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TornPageError
from repro.innodb.engine import FlushMode, InnoDBConfig, InnoDBEngine
from repro.innodb.page import Page
from repro.ssd.device import Ssd


@dataclass
class RecoveryReport:
    """What recovery observed and fixed."""

    torn_pages_found: List[int] = field(default_factory=list)
    pages_repaired_from_dwb: List[int] = field(default_factory=list)
    unrepairable_pages: List[int] = field(default_factory=list)
    records_replayed: int = 0

    @property
    def clean(self) -> bool:
        return not self.unrepairable_pages


def recover(mode: FlushMode, data_ssd: Ssd, log_ssd: Ssd,
            config: Optional[InnoDBConfig] = None,
            strict: bool = True, fs_config=None) -> tuple:
    """Restart the engine after a crash.

    ``data_ssd`` and ``log_ssd`` carry the surviving media (after
    ``power_cycle()``).  Returns ``(engine, report)``.  With ``strict``
    a torn page without a doublewrite copy raises :class:`TornPageError`
    — that is precisely the DWB_OFF data-loss scenario.  ``fs_config``
    must match whatever the crashed engine used (journal sizing drives
    the tablespace's deterministic block layout).
    """
    data_ssd.power_cycle()
    log_ssd.power_cycle()
    engine = InnoDBEngine(mode, data_ssd, log_ssd, config,
                          fs_config=fs_config)
    report = RecoveryReport()
    _reextend_tablespace(engine, data_ssd)
    _repair_torn_pages(engine, report, strict)
    _replay_redo(engine, report, log_ssd)
    return engine, report


def _reextend_tablespace(engine: InnoDBEngine, data_ssd: Ssd) -> None:
    """Grow the re-created tablespace back over the pre-crash blocks.

    File block LPNs are allocated deterministically (the tablespace is the
    filesystem's first and only growing file), so probing successive LPNs
    past the fresh file's end recovers the old written length."""
    probe = engine.tablespace.block_lpn(engine.tablespace.block_count - 1) + 1
    grow = 0
    while (probe + grow < data_ssd.logical_pages
           and data_ssd.ftl.is_mapped(probe + grow)):
        grow += 1
    if grow:
        engine.tablespace.fallocate(engine.tablespace.block_count + grow)


def _repair_torn_pages(engine: InnoDBEngine, report: RecoveryReport,
                       strict: bool) -> None:
    """Step 1: the doublewrite scan."""
    dwb_copies: Dict[int, Page] = {}
    for block in engine.dwb.staged_blocks():
        lpn = engine.tablespace.block_lpn(block)
        if not engine.data_ssd.ftl.is_mapped(lpn):
            continue
        image = engine.data_ssd.read(lpn)
        if isinstance(image, Page) and not image.is_torn():
            existing = dwb_copies.get(image.page_id)
            if existing is None or image.lsn >= existing.lsn:
                dwb_copies[image.page_id] = image
    data_start = 1 + engine.config.dwb_pages
    for block in range(data_start, engine.tablespace.block_count):
        lpn = engine.tablespace.block_lpn(block)
        if not engine.data_ssd.ftl.is_mapped(lpn):
            continue
        image = engine.data_ssd.read(lpn)
        if not isinstance(image, Page) or not image.is_torn():
            continue
        report.torn_pages_found.append(block)
        staged = dwb_copies.get(block)
        if staged is not None:
            engine.tablespace.pwrite_block(block, staged)
            report.pages_repaired_from_dwb.append(block)
        else:
            report.unrepairable_pages.append(block)
            if strict:
                raise TornPageError(
                    f"page {block} is torn and no doublewrite copy exists "
                    "(this is the DWB-off data-loss scenario)")
    if report.pages_repaired_from_dwb:
        engine.tablespace.fsync()


def _replay_redo(engine: InnoDBEngine, report: RecoveryReport,
                 log_ssd: Ssd) -> None:
    """Step 2: logical redo over rebuilt trees."""
    records = engine.redo.replay_records()
    for __, record in records:
        op = record[0]
        if op == "put":
            __, table, key, row = record
            if table not in engine.tables:
                engine.create_table(table)
            engine.table(table).put(key, row)
        elif op == "delete":
            __, table, key = record
            if table not in engine.tables:
                engine.create_table(table)
            engine.table(table).delete(key)
        else:
            continue
        report.records_replayed += 1
    # Recovery must not re-log the replayed work: the records are already
    # durable.  Move the in-memory LSN past the replayed tail and the log
    # cursor past the durable log pages so new commits append, not clobber.
    engine.redo._next_lsn = (records[-1][0] + 1) if records else 1
    cursor = 0
    while (cursor < log_ssd.logical_pages
           and log_ssd.ftl.is_mapped(cursor)):
        cursor += 1
    engine.redo._cursor_lpn = cursor % log_ssd.logical_pages
