"""Doublewrite buffer and the three flush pipelines.

This module is the exact point where the paper intervenes in InnoDB
(Section 4.3, "less than 200 lines ... in buffer and file"): a batch of
dirty pages leaves the buffer pool and must reach its home locations in
the tablespace atomically per page.

* ``flush_dwb_on``  — stage the batch in the doublewrite area, fsync, then
  write every page at its home location, fsync.  Two page writes per page.
* ``flush_dwb_off`` — write home locations directly.  One write per page,
  but a crash mid-write can leave a torn home page with no intact copy.
* ``flush_share``   — stage the batch in the doublewrite area, fsync, then
  issue one SHARE batch remapping each home LPN onto its staged copy.  One
  page write per page plus a mapping-only command.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import EngineError, PowerFailure, ResilienceError
from repro.host.file import File
from repro.host.resilience import ShareGuard
from repro.innodb.page import Page, torn_copy
from repro.sim.faults import NO_FAULTS, FaultPlan


class DoublewriteBuffer:
    """The doublewrite area: a contiguous region of the tablespace file.

    InnoDB's real DWB is 128 pages (two 64-page chunks) inside the system
    tablespace; here it is a dedicated block range of the same file,
    written round-robin in batch-sized strides.
    """

    def __init__(self, tablespace: File, first_block: int,
                 size_pages: int = 128,
                 faults: FaultPlan = NO_FAULTS,
                 resilience: Optional[ShareGuard] = None) -> None:
        if size_pages < 1:
            raise ValueError(f"doublewrite area needs >= 1 page: {size_pages}")
        self.tablespace = tablespace
        self.first_block = first_block
        self.size_pages = size_pages
        self.faults = faults
        self.resilience = resilience or ShareGuard(tablespace.fs.ssd,
                                                   engine="innodb")
        self._cursor = 0
        self.batches_staged = 0
        self.telemetry = tablespace.fs.telemetry
        metrics = self.telemetry.metrics.scope("innodb.dwb")
        self._m_batches = metrics.counter("batches_staged")
        self._m_staged_pages = metrics.counter("pages_staged")
        self._m_home_writes = metrics.counter("home_page_writes")
        self._m_share_batches = metrics.counter("share_batches")

    def _stage(self, pages: List[Page]) -> List[int]:
        """Write the batch into the doublewrite area and fsync; returns
        the file block indices of the staged copies."""
        if len(pages) > self.size_pages:
            raise EngineError(
                f"flush batch of {len(pages)} exceeds the doublewrite area "
                f"of {self.size_pages} pages")
        if self._cursor + len(pages) > self.size_pages:
            self._cursor = 0
        start = self.first_block + self._cursor
        with self.telemetry.tracer.span("innodb.dwb.stage",
                                        pages=len(pages)):
            self.faults.checkpoint("innodb.dwb_stage")
            self.tablespace.pwrite_blocks(start, pages)
            self.tablespace.fsync()
        blocks = list(range(start, start + len(pages)))
        self._cursor += len(pages)
        self.batches_staged += 1
        self._m_batches.inc()
        self._m_staged_pages.inc(len(pages))
        return blocks

    def staged_blocks(self) -> List[int]:
        """Every block of the doublewrite area (recovery scans them all)."""
        return list(range(self.first_block, self.first_block + self.size_pages))

    # ------------------------------------------------------------ pipelines

    def flush_dwb_on(self, pages: List[Page]) -> None:
        """Default InnoDB: journal to DWB, then write in place."""
        self._stage(pages)
        for page in pages:
            self.faults.checkpoint("innodb.home_write")
            self._home_write_with_torn_window(page)
        self.tablespace.fsync()

    def flush_dwb_off(self, pages: List[Page]) -> None:
        """Doublewrite disabled: home writes only (torn-page unsafe)."""
        for page in pages:
            self.faults.checkpoint("innodb.home_write")
            self._home_write_with_torn_window(page)
        self.tablespace.fsync()

    def flush_share(self, pages: List[Page]) -> None:
        """SHARE mode: journal to DWB, then remap home LPNs onto the
        staged copies — the second write never happens (Section 4.3).

        When the SHARE command fails past the resilience layer's retry
        budget (or the breaker is open), the batch degrades to the
        classic second home-write.  That is crash-safe with no extra
        machinery: the staged copies are already durable in the
        doublewrite area, and recovery always scans it, so a home write
        torn by a crash mid-fallback is repaired from its staged copy."""
        staged = self._stage(pages)
        ranges = [(page.page_id, staged_block, 1)
                  for page, staged_block in zip(pages, staged)]
        self.faults.checkpoint("innodb.share_remap")
        try:
            self.resilience.share_file_ranges(self.tablespace,
                                              self.tablespace, ranges)
        except ResilienceError:
            self.faults.checkpoint("innodb.share_fallback")
            self.resilience.record_fallback()
            for page in pages:
                self.faults.checkpoint("innodb.home_write")
                self._home_write_with_torn_window(page)
            self.tablespace.fsync()
            return
        self._m_share_batches.inc()

    # ------------------------------------------------------------ internals

    def _home_write_with_torn_window(self, page: Page) -> None:
        """Write a page at its home location, honouring an armed torn-write
        fault: power dies mid-write, leaving a checksum-corrupt image."""
        try:
            self.faults.checkpoint("innodb.torn_window")
        except PowerFailure:
            self.tablespace.pwrite_block(page.page_id, torn_copy(page))
            raise
        self.tablespace.pwrite_block(page.page_id, page)
        self._m_home_writes.inc()
