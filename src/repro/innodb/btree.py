"""Update-in-place B+tree over the buffer pool.

This is the InnoDB-style index: nodes are pages, updates modify pages in
place (in the pool; the device still writes out of place internally), and
the *flush* path — not the tree — is what differs between DWB and SHARE
modes.  Keys are arbitrary comparable Python values; rows are opaque.

Deletion is lazy (no rebalancing): emptied leaves stay linked until the
tree is rebuilt, which matches what the experiments need — LinkBench never
shrinks the database meaningfully.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.errors import EngineError
from repro.innodb.page import Page

LEAF = "leaf"
INTERNAL = "internal"


def _leaf_payload(keys: List[Any], rows: List[Any],
                  next_leaf: Optional[int]) -> tuple:
    return (LEAF, tuple(keys), tuple(rows), next_leaf)


def _internal_payload(keys: List[Any], children: List[int]) -> tuple:
    return (INTERNAL, tuple(keys), tuple(children))


class BTree:
    """A B+tree whose nodes live in the buffer pool.

    The tree talks to storage through three callbacks supplied by the
    engine: ``fetch(page_id) -> Page``, ``write(page) -> None`` (installs
    the new image dirty in the pool), and ``allocate() -> page_id``.
    """

    def __init__(self, name: str,
                 fetch: Callable[[int], Page],
                 write: Callable[[Page], None],
                 allocate: Callable[[], int],
                 next_lsn: Callable[[], int],
                 leaf_capacity: int = 32,
                 internal_fanout: int = 64,
                 root_page_id: Optional[int] = None) -> None:
        if leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2: {leaf_capacity}")
        if internal_fanout < 3:
            raise ValueError(f"internal_fanout must be >= 3: {internal_fanout}")
        self.name = name
        self._fetch = fetch
        self._write = write
        self._allocate = allocate
        self._next_lsn = next_lsn
        self.leaf_capacity = leaf_capacity
        self.internal_fanout = internal_fanout
        if root_page_id is None:
            root_page_id = self._allocate()
            self._write(Page(root_page_id, self._next_lsn(),
                             _leaf_payload([], [], None)))
        self.root_page_id = root_page_id
        self.entry_count = 0

    # ------------------------------------------------------------ plumbing

    def _node(self, page_id: int) -> tuple:
        page = self._fetch(page_id)
        if not page.checksum_ok:
            raise EngineError(f"torn page {page_id} read through B+tree")
        return page.payload

    def _store(self, page_id: int, payload: tuple) -> None:
        self._write(Page(page_id, self._next_lsn(), payload))

    def _descend(self, key: Any) -> Tuple[int, tuple, List[int]]:
        """Leaf holding ``key``'s position: its page id, its (already
        fetched) payload, and the internal path (root first).

        Every node access in the tree funnels through here, so the walk
        is written flat: the fetched leaf payload is returned rather
        than refetched by the caller — at steady state that drops one
        pool hit (dict probe + LRU move) per get/put/delete."""
        fetch = self._fetch
        bisect_right = bisect.bisect_right
        path: List[int] = []
        page_id = self.root_page_id
        while True:
            page = fetch(page_id)
            if not page.checksum_ok:
                raise EngineError(
                    f"torn page {page_id} read through B+tree")
            node = page.payload
            if node[0] != INTERNAL:
                return page_id, node, path
            path.append(page_id)
            page_id = node[2][bisect_right(node[1], key)]

    # -------------------------------------------------------------- lookup

    def get(self, key: Any) -> Optional[Any]:
        """Row stored under ``key``, or None."""
        __, node, __ = self._descend(key)
        keys = node[1]
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return node[2][index]
        return None

    def contains(self, key: Any) -> bool:
        return self.get(key) is not None

    def range(self, low: Any, high: Any, limit: Optional[int] = None
              ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, row) for low <= key <= high in key order."""
        leaf_id, node, __ = self._descend(low)
        yielded = 0
        while True:
            __, keys, rows, next_leaf = node
            start = bisect.bisect_left(keys, low)
            for index in range(start, len(keys)):
                if keys[index] > high:
                    return
                yield keys[index], rows[index]
                yielded += 1
                if limit is not None and yielded >= limit:
                    return
            if next_leaf is None:
                return
            leaf_id = next_leaf
            node = self._node(leaf_id)

    # -------------------------------------------------------------- insert

    def put(self, key: Any, row: Any) -> bool:
        """Insert or overwrite; returns True when the key was new."""
        was_new, __ = self.upsert(key, row)
        return was_new

    def upsert(self, key: Any, row: Any) -> Tuple[bool, Optional[Any]]:
        """Insert or overwrite in one descent; returns ``(was_new,
        previous_row)``.  The transaction layer uses the previous row as
        its undo record, replacing a separate :meth:`get` per write."""
        leaf_id, node, path = self._descend(key)
        __, keys, rows, next_leaf = node
        keys = list(keys)
        rows = list(rows)
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            old_row = rows[index]
            rows[index] = row
            self._store(leaf_id, _leaf_payload(keys, rows, next_leaf))
            return False, old_row
        keys.insert(index, key)
        rows.insert(index, row)
        self.entry_count += 1
        if len(keys) <= self.leaf_capacity:
            self._store(leaf_id, _leaf_payload(keys, rows, next_leaf))
            return True, None
        self._split_leaf(leaf_id, keys, rows, next_leaf, path)
        return True, None

    def _split_leaf(self, leaf_id: int, keys: List[Any], rows: List[Any],
                    next_leaf: Optional[int], path: List[int]) -> None:
        mid = len(keys) // 2
        right_id = self._allocate()
        self._store(right_id, _leaf_payload(keys[mid:], rows[mid:], next_leaf))
        self._store(leaf_id, _leaf_payload(keys[:mid], rows[:mid], right_id))
        self._insert_into_parent(path, leaf_id, keys[mid], right_id)

    def _insert_into_parent(self, path: List[int], left_id: int,
                            separator: Any, right_id: int) -> None:
        if not path:
            new_root = self._allocate()
            self._store(new_root, _internal_payload([separator],
                                                    [left_id, right_id]))
            self.root_page_id = new_root
            return
        parent_id = path[-1]
        __, keys, children = self._node(parent_id)
        keys = list(keys)
        children = list(children)
        index = bisect.bisect_right(keys, separator)
        keys.insert(index, separator)
        children.insert(index + 1, right_id)
        if len(children) <= self.internal_fanout:
            self._store(parent_id, _internal_payload(keys, children))
            return
        mid = len(keys) // 2
        push_up = keys[mid]
        right_internal = self._allocate()
        self._store(right_internal,
                    _internal_payload(keys[mid + 1:], children[mid + 1:]))
        self._store(parent_id,
                    _internal_payload(keys[:mid], children[:mid + 1]))
        self._insert_into_parent(path[:-1], parent_id, push_up, right_internal)

    # -------------------------------------------------------------- delete

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns True when it existed (lazy, no merge)."""
        __, existed = self.pop(key)
        return existed

    def pop(self, key: Any) -> Tuple[Optional[Any], bool]:
        """Remove ``key`` in one descent; returns ``(removed_row,
        existed)`` — the row feeds the transaction layer's undo record.
        The existed flag disambiguates a stored ``None`` row."""
        leaf_id, node, __ = self._descend(key)
        __, keys, rows, next_leaf = node
        index = bisect.bisect_left(keys, key)
        if index >= len(keys) or keys[index] != key:
            return None, False
        old_row = rows[index]
        keys = list(keys)
        rows = list(rows)
        del keys[index]
        del rows[index]
        self.entry_count -= 1
        self._store(leaf_id, _leaf_payload(keys, rows, next_leaf))
        return old_row, True

    # --------------------------------------------------------------- debug

    def depth(self) -> int:
        """Levels from root to leaf inclusive."""
        depth = 1
        node = self._node(self.root_page_id)
        while node[0] == INTERNAL:
            depth += 1
            node = self._node(node[2][0])
        return depth

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Full scan in key order."""
        page_id = self.root_page_id
        node = self._node(page_id)
        while node[0] == INTERNAL:
            page_id = node[2][0]
            node = self._node(page_id)
        while page_id is not None:
            __, keys, rows, next_leaf = self._node(page_id)
            for key, row in zip(keys, rows):
                yield key, row
            page_id = next_leaf
            if page_id is not None:
                node = self._node(page_id)
