"""LRU buffer pool.

Pages live in frames; a miss reads from the tablespace file, an eviction
of a dirty victim triggers a flush batch through the engine's doublewrite
pipeline (the callback the engine installs).  The paper's
``buffer_flush_neighbors = off`` behaviour is the default and only mode:
each flush batch contains exactly the dirty pages chosen from the LRU tail,
never their neighbours.

``dirty_count`` is maintained incrementally at every dirty-bit
transition rather than recomputed by scanning the frames: the engine's
adaptive-flushing check reads it once per transaction commit, which made
the O(pool) scan the single hottest line of the whole benchmark stack.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional

from repro.errors import EngineError
from repro.innodb.page import Page


class Frame:
    """One buffer-pool slot."""

    __slots__ = ("page", "dirty")

    def __init__(self, page: Page, dirty: bool = False) -> None:
        self.page = page
        self.dirty = dirty

    def __repr__(self) -> str:
        return f"Frame(page={self.page!r}, dirty={self.dirty})"


class BufferPool:
    """Fixed-capacity LRU cache of pages keyed by page id.

    ``fetch`` is the only read path; ``put`` installs or updates a page
    and marks it dirty.  When the pool is full, the least-recently-used
    frames are evicted; dirty victims are handed to ``flush_callback`` in
    batches so the engine can push them through the mode-specific flush
    pipeline before they are dropped.
    """

    def __init__(self, capacity_pages: int,
                 read_page: Callable[[int], Page],
                 flush_callback: Callable[[List[Page]], None],
                 flush_batch_pages: int = 64) -> None:
        if capacity_pages < 8:
            raise ValueError(
                f"buffer pool needs at least 8 pages: {capacity_pages}")
        if flush_batch_pages < 1:
            raise ValueError(
                f"flush batch must be >= 1 page: {flush_batch_pages}")
        self.capacity_pages = capacity_pages
        self.flush_batch_pages = flush_batch_pages
        self._read_page = read_page
        self._flush = flush_callback
        self._frames: "OrderedDict[int, Frame]" = OrderedDict()
        self._dirty = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def dirty_count(self) -> int:
        return self._dirty

    def contains(self, page_id: int) -> bool:
        return page_id in self._frames

    def fetch(self, page_id: int) -> Page:
        """Return the page, reading it from storage on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            self.hits += 1
            return frame.page
        self.misses += 1
        page = self._read_page(page_id)
        if page.page_id != page_id:
            raise EngineError(
                f"storage returned page {page.page_id} for id {page_id}")
        self._install(page_id, Frame(page))
        return page

    def put(self, page: Page) -> None:
        """Install a (new or modified) page and mark it dirty."""
        frame = self._frames.get(page.page_id)
        if frame is not None:
            frame.page = page
            if not frame.dirty:
                frame.dirty = True
                self._dirty += 1
            self._frames.move_to_end(page.page_id)
            return
        self._install(page.page_id, Frame(page, dirty=True))
        self._dirty += 1

    def _install(self, page_id: int, frame: Frame) -> None:
        self._make_room()
        self._frames[page_id] = frame

    # ------------------------------------------------------------ eviction

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity_pages:
            self._evict_tail()

    def _evict_tail(self) -> None:
        """Drop the LRU victim; if it is dirty, flush a batch of dirty
        pages from the cold end first so the write happens in
        doublewrite-sized groups (as InnoDB's page cleaner does)."""
        victim_id = next(iter(self._frames))
        victim = self._frames[victim_id]
        if victim.dirty:
            self._flush_cold_batch()
        dropped = self._frames.pop(victim_id, None)
        if dropped is not None and dropped.dirty:
            # The flush batch is bounded, so the victim itself may still
            # be dirty when the pool drops it.
            self._dirty -= 1
        self.evictions += 1

    def _flush_cold_batch(self) -> None:
        batch: List[Page] = []
        for page_id, frame in self._frames.items():
            if frame.dirty:
                batch.append(frame.page)
                if len(batch) >= self.flush_batch_pages:
                    break
        if not batch:
            return
        self._flush(batch)
        for page in batch:
            frame = self._frames.get(page.page_id)
            if frame is not None and frame.page is page and frame.dirty:
                frame.dirty = False
                self._dirty -= 1

    # ------------------------------------------------------------ flushing

    def flush_some(self, max_pages: Optional[int] = None) -> int:
        """Adaptive-flushing entry point: flush up to ``max_pages`` dirty
        pages from the cold end; returns how many were flushed."""
        limit = max_pages if max_pages is not None else self.flush_batch_pages
        batch: List[Page] = []
        for page_id, frame in self._frames.items():
            if frame.dirty:
                batch.append(frame.page)
                if len(batch) >= limit:
                    break
        if not batch:
            return 0
        self._flush(batch)
        for page in batch:
            frame = self._frames.get(page.page_id)
            if frame is not None and frame.page is page and frame.dirty:
                frame.dirty = False
                self._dirty -= 1
        return len(batch)

    def flush_all(self) -> int:
        """Checkpoint: flush every dirty page (in batches)."""
        total = 0
        while True:
            flushed = self.flush_some(self.flush_batch_pages)
            if flushed == 0:
                return total
            total += flushed

    def drop_clean(self) -> None:
        """Drop every clean frame (used by tests to force re-reads)."""
        clean = [pid for pid, frame in self._frames.items() if not frame.dirty]
        for pid in clean:
            del self._frames[pid]
