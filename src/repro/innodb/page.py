"""Database page images.

A :class:`Page` is what the engine stores in a device page: the page id,
the LSN of the last modification, an opaque payload (the B+tree node
content), and a checksum.  The checksum is what detects torn writes — a
crash in the middle of an in-place page write leaves a mix of old and new
sectors on media, which :func:`torn_copy` models explicitly so recovery
tests can produce the exact failure Section 2 describes.

``Page`` is a hand-rolled ``__slots__`` value class rather than a frozen
dataclass: the B+tree builds a fresh image for every node it touches, so
construction is on the engine's per-operation hot path, and the frozen
dataclass ``object.__setattr__`` ceremony tripled its cost.  Treat
instances as immutable — every layer (pool aliasing, device pages,
recovery comparisons) assumes an image never changes after construction.
"""

from __future__ import annotations

from typing import Any

_TORN_MARK = "<torn>"


class Page:
    """One page image.

    ``payload`` is treated as opaque, immutable data; the engine always
    builds a fresh Page when a node changes, so device pages never alias
    mutable host state.
    """

    __slots__ = ("page_id", "lsn", "payload", "checksum_ok")

    def __init__(self, page_id: int, lsn: int, payload: Any,
                 checksum_ok: bool = True) -> None:
        self.page_id = page_id
        self.lsn = lsn
        self.payload = payload
        self.checksum_ok = checksum_ok

    def is_torn(self) -> bool:
        """True when the checksum does not match — a torn write."""
        return not self.checksum_ok

    def with_payload(self, payload: Any, lsn: int) -> "Page":
        return Page(self.page_id, lsn, payload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Page):
            return NotImplemented
        return (self.page_id == other.page_id and self.lsn == other.lsn
                and self.payload == other.payload
                and self.checksum_ok == other.checksum_ok)

    def __hash__(self) -> int:
        return hash((self.page_id, self.lsn, self.payload,
                     self.checksum_ok))

    def __repr__(self) -> str:
        return (f"Page(page_id={self.page_id}, lsn={self.lsn}, "
                f"payload={self.payload!r}, "
                f"checksum_ok={self.checksum_ok})")


def torn_copy(page: Page) -> Page:
    """The on-media result of a page write interrupted by power loss: a
    detectably corrupt image (mixed old/new sectors fail the checksum)."""
    return Page(page.page_id, page.lsn, _TORN_MARK, checksum_ok=False)
