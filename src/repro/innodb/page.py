"""Database page images.

A :class:`Page` is what the engine stores in a device page: the page id,
the LSN of the last modification, an opaque payload (the B+tree node
content), and a checksum.  The checksum is what detects torn writes — a
crash in the middle of an in-place page write leaves a mix of old and new
sectors on media, which :func:`torn_copy` models explicitly so recovery
tests can produce the exact failure Section 2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

_TORN_MARK = "<torn>"


@dataclass(frozen=True)
class Page:
    """One page image.

    ``payload`` is treated as opaque, immutable data; the engine always
    builds a fresh Page when a node changes, so device pages never alias
    mutable host state.
    """

    page_id: int
    lsn: int
    payload: Any
    checksum_ok: bool = True

    def is_torn(self) -> bool:
        """True when the checksum does not match — a torn write."""
        return not self.checksum_ok

    def with_payload(self, payload: Any, lsn: int) -> "Page":
        return Page(self.page_id, lsn, payload)


def torn_copy(page: Page) -> Page:
    """The on-media result of a page write interrupted by power loss: a
    detectably corrupt image (mixed old/new sectors fail the checksum)."""
    return Page(page.page_id, page.lsn, _TORN_MARK, checksum_ok=False)
