"""The InnoDB-like engine: tables, transactions, flush modes.

Layout of the system tablespace file (block indices = page ids):

* block 0 — catalog page (table name -> root page id, next allocation),
* blocks 1 .. dwb_pages — the doublewrite area,
* everything after — table pages, allocated by a bump allocator.

The engine drives exactly the pipeline the paper measures: transactions
append redo records to a log on a *separate* device and group-commit;
dirty pages leave the LRU buffer pool in batches through the
mode-specific doublewrite pipeline; adaptive flushing keeps the dirty
fraction bounded so flushing happens continuously in steady state rather
than in checkpoint bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.errors import EngineError
from repro.host.filesystem import FsConfig, HostFs
from repro.innodb.btree import BTree
from repro.innodb.buffer_pool import BufferPool
from repro.innodb.doublewrite import DoublewriteBuffer
from repro.innodb.page import Page
from repro.innodb.redo import RedoLog
from repro.sim.faults import NO_FAULTS, FaultPlan
from repro.ssd.device import Ssd

CATALOG_PAGE_ID = 0


class FlushMode(Enum):
    """The three configurations of Section 5.3.1, plus the related-work
    atomic-write FTL baseline (Section 6.1) for comparison."""

    DWB_ON = "dwb_on"
    DWB_OFF = "dwb_off"
    SHARE = "share"
    ATOMIC_WRITE = "atomic_write"


@dataclass(frozen=True)
class InnoDBConfig:
    """Engine tunables.

    ``buffer_pool_pages`` plays the role of the paper's 50–150 MB buffer
    pool (divide by the page size to compare).  ``dirty_flush_threshold``
    triggers adaptive flushing: when the dirty fraction of the pool
    exceeds it, each commit flushes one batch.
    """

    buffer_pool_pages: int = 1024
    flush_batch_pages: int = 64
    dwb_pages: int = 128
    leaf_capacity: int = 32
    internal_fanout: int = 64
    dirty_flush_threshold: float = 0.5
    file_grow_chunk: int = 1024

    def __post_init__(self) -> None:
        if self.flush_batch_pages > self.dwb_pages:
            raise ValueError("flush batch cannot exceed the doublewrite area")
        if not 0.0 < self.dirty_flush_threshold <= 1.0:
            raise ValueError(
                f"dirty_flush_threshold must be in (0, 1]: "
                f"{self.dirty_flush_threshold}")


class InnoDBEngine:
    """MySQL/InnoDB stand-in with pluggable page-flush mode."""

    def __init__(self, mode: FlushMode, data_ssd: Ssd, log_ssd: Ssd,
                 config: Optional[InnoDBConfig] = None,
                 faults: FaultPlan = NO_FAULTS,
                 fs_config: Optional[FsConfig] = None) -> None:
        self.mode = mode
        self.config = config or InnoDBConfig()
        self.faults = faults
        self.data_ssd = data_ssd
        self.log_ssd = log_ssd
        self.telemetry = data_ssd.telemetry
        metrics = self.telemetry.metrics.scope("innodb")
        self._m_transactions = metrics.counter("transactions")
        self._m_flush_batches = metrics.counter("flush_batches")
        self._m_flush_pages = metrics.histogram("flush_batch_pages")
        self.fs = HostFs(data_ssd, fs_config or FsConfig())
        self.tablespace = self.fs.create("/ibdata")
        self.tablespace.fallocate(1 + self.config.dwb_pages
                                  + self.config.file_grow_chunk)
        self.dwb = DoublewriteBuffer(self.tablespace, first_block=1,
                                     size_pages=self.config.dwb_pages,
                                     faults=faults)
        self.redo = RedoLog(log_ssd)
        self.pool = BufferPool(
            capacity_pages=self.config.buffer_pool_pages,
            read_page=self._read_page_from_disk,
            flush_callback=self._flush_batch,
            flush_batch_pages=self.config.flush_batch_pages)
        self._next_page_id = 1 + self.config.dwb_pages
        # Adaptive-flush trigger in pages, resolved once (the check runs
        # every commit).
        self._flush_trigger = (self.config.buffer_pool_pages
                               * self.config.dirty_flush_threshold)
        self.tables: Dict[str, BTree] = {}
        self._in_transaction = False
        self.transactions = 0
        self.flush_batches = 0

    def devices(self):
        """Every device this engine issues commands to, for workload
        drivers that attach submission sessions around an operation."""
        return (self.data_ssd, self.log_ssd)

    # ----------------------------------------------------------- page I/O

    def _read_page_from_disk(self, page_id: int) -> Page:
        page = self.tablespace.pread_block(page_id)
        if not isinstance(page, Page):
            raise EngineError(
                f"block {page_id} does not hold a page image: {page!r}")
        return page

    def _write_page(self, page: Page) -> None:
        self.pool.put(page)

    def _allocate_page(self) -> int:
        page_id = self._next_page_id
        self._next_page_id += 1
        if page_id >= self.tablespace.block_count:
            self.tablespace.fallocate(
                self.tablespace.block_count + self.config.file_grow_chunk)
        return page_id

    def _flush_batch(self, pages: List[Page]) -> None:
        """Route one dirty batch through the mode's pipeline."""
        with self.telemetry.tracer.span("innodb.flush_batch",
                                        mode=self.mode.value,
                                        pages=len(pages)):
            if self.mode is FlushMode.DWB_ON:
                self.dwb.flush_dwb_on(pages)
            elif self.mode is FlushMode.DWB_OFF:
                self.dwb.flush_dwb_off(pages)
            elif self.mode is FlushMode.ATOMIC_WRITE:
                # Section 6.1 baseline: the device's atomic-write command
                # replaces the doublewrite buffer entirely (Ouyang et al.).
                from repro.host.ioctl import atomic_write_ioctl
                atomic_write_ioctl(self.tablespace,
                                   [(page.page_id, page) for page in pages])
            else:
                self.dwb.flush_share(pages)
        self.flush_batches += 1
        self._m_flush_batches.inc()
        self._m_flush_pages.record(len(pages))

    # ------------------------------------------------------------- tables

    def create_table(self, name: str) -> BTree:
        if name in self.tables:
            raise EngineError(f"table exists: {name}")
        tree = BTree(name,
                     fetch=self.pool.fetch,
                     write=self._write_page,
                     allocate=self._allocate_page,
                     next_lsn=lambda: self.redo.next_lsn,
                     leaf_capacity=self.config.leaf_capacity,
                     internal_fanout=self.config.internal_fanout)
        self.tables[name] = tree
        return tree

    def table(self, name: str) -> BTree:
        tree = self.tables.get(name)
        if tree is None:
            raise EngineError(f"no such table: {name}")
        return tree

    # ------------------------------------------------------- transactions

    def transaction(self) -> "_TransactionScope":
        """One transaction: logical ops are applied to the trees and
        logged; commit group-commits the redo log, then adaptive flushing
        may push one dirty batch.

        An exception inside the block aborts the transaction: the undo
        records collected per operation are applied in reverse (InnoDB's
        rollback), and the buffered redo records are discarded before
        they ever reach the log device.

        Returns a plain class-based context manager (the benchmark loop
        enters one per operation; ``@contextmanager`` generator overhead
        is measurable at that rate).
        """
        return _TransactionScope(self)

    def _commit_transaction(self) -> None:
        tracer = self.telemetry.tracer
        if tracer.enabled:
            with tracer.span("innodb.txn_commit"):
                self.redo.commit()
                self.faults.checkpoint("innodb.txn_durable")
                self.transactions += 1
                self._m_transactions.inc()
                self._adaptive_flush()
            return
        self.redo.commit()
        self.faults.checkpoint("innodb.txn_durable")
        self.transactions += 1
        self._m_transactions.inc()   # no-op singleton when telemetry is off
        self._adaptive_flush()

    def _adaptive_flush(self) -> None:
        pool = self.pool
        if pool.dirty_count > self._flush_trigger:
            pool.flush_some(self.config.flush_batch_pages)

    # ---------------------------------------------------------- lifecycle

    def checkpoint(self) -> None:
        """Flush every dirty page and persist the catalog."""
        with self.telemetry.tracer.span("innodb.checkpoint"):
            self.faults.checkpoint("innodb.ckpt_begin")
            self.pool.flush_all()
            catalog = {name: tree.root_page_id
                       for name, tree in self.tables.items()}
            payload = ("catalog", tuple(sorted(catalog.items())),
                       self._next_page_id)
            self.tablespace.pwrite_block(
                CATALOG_PAGE_ID,
                Page(CATALOG_PAGE_ID, self.redo.next_lsn, payload))
            self.tablespace.fsync()
            self.faults.checkpoint("innodb.ckpt_end")

    def shutdown(self) -> None:
        """Clean shutdown: checkpoint then final log commit."""
        self.redo.commit()
        self.checkpoint()


class Transaction:
    """Handle exposing logical operations inside a transaction scope.

    Reads go straight to the trees; writes are applied to the trees (the
    buffer pool holds the dirty pages) *and* appended to the redo log so
    recovery can replay them.  Each write also records its logical
    inverse so an abort can roll the trees back (InnoDB's undo).
    Durability of the logical operations comes from the log commit; the
    flush pipeline only controls how page images reach their home
    locations.
    """

    def __init__(self, engine: InnoDBEngine) -> None:
        self._engine = engine
        self._undo: List = []
        self._redo_mark = len(engine.redo._pending)

    # Reads -----------------------------------------------------------------

    def get(self, table: str, key: Any) -> Optional[Any]:
        return self._engine.table(table).get(key)

    def range(self, table: str, low: Any, high: Any,
              limit: Optional[int] = None) -> List:
        return list(self._engine.table(table).range(low, high, limit))

    # Writes ----------------------------------------------------------------

    def put(self, table: str, key: Any, row: Any) -> bool:
        tree = self._engine.table(table)
        self._engine.redo.append(("put", table, key, row))
        was_new, old_row = tree.upsert(key, row)
        self._undo.append((table, key, old_row))
        return was_new

    def delete(self, table: str, key: Any) -> bool:
        tree = self._engine.table(table)
        self._engine.redo.append(("delete", table, key))
        old_row, existed = tree.pop(key)
        self._undo.append((table, key, old_row))
        return existed

    # Abort -----------------------------------------------------------------

    def _rollback(self) -> None:
        """Apply undo records newest-first and drop the un-committed redo
        tail (it never reached the log device)."""
        for table, key, old_row in reversed(self._undo):
            tree = self._engine.table(table)
            if old_row is None:
                tree.delete(key)
            else:
                tree.put(key, old_row)
        self._undo.clear()
        del self._engine.redo._pending[self._redo_mark:]


class _TransactionScope:
    """Context manager for one :meth:`InnoDBEngine.transaction` scope."""

    __slots__ = ("_engine", "_txn")

    def __init__(self, engine: "InnoDBEngine") -> None:
        if engine._in_transaction:
            raise EngineError("nested transactions are not supported")
        engine._in_transaction = True
        self._engine = engine
        self._txn = Transaction(engine)

    def __enter__(self) -> "Transaction":
        return self._txn

    def __exit__(self, exc_type, exc, tb) -> None:
        engine = self._engine
        if exc_type is not None:
            self._txn._rollback()
            engine._in_transaction = False
            return
        engine._in_transaction = False
        engine._commit_transaction()
