"""Redo log (WAL) on a dedicated log device.

Mirrors the experimental setup: the paper put the MySQL log on a separate
Samsung PM853T SSD, so redo traffic never competes with tablespace I/O on
the OpenSSD.  The log is identical across the three flush modes — it is
the *page* flush pipeline that SHARE changes — but it must exist so
transaction commits charge realistic log I/O and so recovery tests can
replay committed work.

Records are opaque tuples; the log packs them into device pages and
fsyncs at commit (group commit: one fsync may cover several transactions'
records when the engine batches)."""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.ssd.device import Ssd


class RedoLog:
    """Append-only log of (lsn, record) entries over a plain SSD."""

    def __init__(self, device: Ssd, records_per_page: int = 32,
                 region_pages: int = 0) -> None:
        if records_per_page < 1:
            raise ValueError(
                f"records_per_page must be >= 1: {records_per_page}")
        self.device = device
        self.records_per_page = records_per_page
        # The log file is a fixed-size region (ib_logfile*), recycled
        # circularly; it must not consume the whole device or the log
        # device's own GC has no headroom.
        self.region_pages = region_pages or max(1, device.logical_pages // 2)
        self._next_lsn = 1
        self._pending: List[Tuple[int, Any]] = []
        self._cursor_lpn = 0
        self._committed_through = 0
        self.commits = 0

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def last_committed_lsn(self) -> int:
        return self._committed_through

    def append(self, record: Any) -> int:
        """Buffer a record; returns its LSN.  Not durable until commit."""
        lsn = self._next_lsn
        self._next_lsn += 1
        self._pending.append((lsn, record))
        return lsn

    def commit(self) -> int:
        """Force the buffered records to the log device (group commit).

        Returns the highest durable LSN.
        """
        pending = self._pending
        if len(pending) <= self.records_per_page:
            # Common case (one group commit fits one log page): a single
            # write, no slice/del churn.
            if pending:
                self.device.write(self._cursor_lpn, tuple(pending))
                pending.clear()
                self._cursor_lpn = (self._cursor_lpn + 1) % self.region_pages
        else:
            while pending:
                chunk = pending[:self.records_per_page]
                del pending[:self.records_per_page]
                self.device.write(self._cursor_lpn, tuple(chunk))
                self._cursor_lpn = (self._cursor_lpn + 1) % self.region_pages
        self.device.flush()
        self._committed_through = self._next_lsn - 1
        self.commits += 1
        return self._committed_through

    def replay_records(self) -> List[Tuple[int, Any]]:
        """Read back every durable record in LSN order (recovery path).

        The simulated log never wraps during a test, so a linear scan from
        LPN 0 to the first unmapped page reproduces the durable tail.
        """
        records: List[Tuple[int, Any]] = []
        lpn = 0
        while lpn < self.region_pages and self.device.ftl.is_mapped(lpn):
            records.extend(self.device.read(lpn))
            lpn += 1
        records.sort(key=lambda item: item[0])
        return records
