"""Front-end router over M shard groups: the cluster's client API.

The :class:`ShardRouter` consistent-hash-partitions the key space over
its groups, forwards each KV operation to the owning group, and handles
the tier-level concerns no single shard can: promoting a group whose
breaker opened (via the :class:`FailoverController`), re-issuing the
failed operation on the new primary, degrading cross-shard SHARE to
read+copy, scoring primary media health after acks (proactive failover
before a device dies), consulting the fault plan's cluster set after
every ack so crashcheck sweeps can kill a shard — or storm its media —
at any ack boundary, and coordinating live ring rebalancing.

Ack contract: :meth:`put` / :meth:`share` / :meth:`delete` return only
once the mutation is durable on the owning primary, appended to the
group's replication log, *and* applied on a write quorum of replicas —
the ``no_lost_acked_write`` invariant the cluster crashcheck sweep
enforces is exactly "anything those methods returned for is readable
after any single-shard kill + power cycle".

Read routing: reads may be served by a replica when it has applied both
the calling client's last acked sequence on that shard (read-your-writes,
tracked per ``(client, shard)``) and the sequence that created the
key's directory entry; otherwise the primary serves them.  During a
rebalance, reads of still-pending keys dual-read: new owner first, old
owner as fallback.

Telemetry (``cluster.*``): op/ack counters, per-shard op-latency
histograms (p99 per shard), ``repl_lag.<shard>`` and ``epoch.<shard>``
gauges, a ``replica_lag`` distribution sampled at every pump, failover
count/duration plus a ``convergence_us`` histogram (promotion to
fully-caught-up group), replica-read and media-health counters,
backpressure waits, replayed records.  Because crash harnesses run with
``NULL_TELEMETRY``, the router also keeps a plain :class:`ClusterStats`
the sweeps read directly (same pattern as ``GuardStats``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.failover import FailoverController, FailoverEvent
from repro.cluster.hashring import HashRing
from repro.cluster.health import MediaHealthMonitor
from repro.cluster.rebalance import MigrationState, Rebalancer
from repro.cluster.shard import ShardGroup
from repro.errors import ClusterError, ResilienceError, ShardUnavailableError
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim.faults import NO_FAULTS, ShardMediaStorm
from repro.ssd.ncq import DeviceSession

__all__ = ["ShardRouter", "ClusterStats"]


@dataclass
class ClusterStats:
    """Local counters the router accumulates (readable even when
    telemetry is the NULL singleton, as in crash harnesses)."""

    ops: int = 0
    acked_writes: int = 0
    reads: int = 0
    kills: int = 0
    failovers: int = 0
    failover_duration_us: int = 0
    replayed_records: int = 0
    repl_applied: int = 0
    cross_shard_copies: int = 0
    last_failover_us: Optional[int] = field(default=None)
    replica_reads: int = 0
    replica_read_fallbacks: int = 0
    media_trips: int = 0
    media_storms: int = 0
    proactive_promotions: int = 0
    migrated_keys: int = 0
    shared_migrations: int = 0
    rebalances: int = 0
    convergences: int = 0
    convergence_us: int = 0


class ShardRouter:
    """Consistent-hash router over shard groups with failover."""

    def __init__(self, pairs: Sequence[ShardGroup], clock,
                 faults=NO_FAULTS, telemetry=None,
                 vnodes: int = 64,
                 health: Optional[MediaHealthMonitor] = None) -> None:
        if not pairs:
            raise ValueError("router needs at least one shard group")
        self.clock = clock
        self.faults = faults
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.pairs: Dict[str, ShardGroup] = {p.name: p for p in pairs}
        if len(self.pairs) != len(pairs):
            raise ValueError("duplicate shard group names")
        self.ring = HashRing([p.name for p in pairs], vnodes=vnodes)
        self.stats = ClusterStats()
        self.health = health if health is not None else MediaHealthMonitor()
        self._session: Optional[DeviceSession] = None
        #: Per-(client, shard) last acked sequence — the read-your-writes
        #: watermark replica reads must reach.
        self._client_seq: Dict[Tuple[Optional[int], str], int] = {}
        #: Shards promoted but not yet fully re-converged, with the
        #: promotion timestamp (feeds the convergence_us histogram).
        self._pending_convergence: Dict[str, int] = {}
        self._pump_cursor = 0
        #: Groups that left the ring after a completed rebalance.
        self.retired: Dict[str, ShardGroup] = {}
        self._migration: Optional[MigrationState] = None
        self.migration_epoch = 0
        metrics = self.telemetry.metrics.scope("cluster")
        self._metrics = metrics
        self._m_ops = metrics.counter("ops")
        self._m_acked = metrics.counter("acked_writes")
        self._m_reads = metrics.counter("reads")
        self._m_kills = metrics.counter("shard_kills")
        self._m_failovers = metrics.counter("failovers")
        self._m_failover_us = metrics.counter("failover_duration_us")
        self._m_replayed = metrics.counter("replayed_records")
        self._m_repl_applied = metrics.counter("repl_applied")
        self._m_backpressure = metrics.counter("backpressure_waits")
        self._m_copies = metrics.counter("cross_shard_copies")
        self._m_replica_reads = metrics.counter("replica_reads")
        self._m_replica_fallbacks = metrics.counter("replica_read_fallbacks")
        self._m_media_trips = metrics.counter("media_trips")
        self._m_storms = metrics.counter("media_storms")
        self._m_proactive = metrics.counter("proactive_promotions")
        self._m_migrated = metrics.counter("migrated_keys")
        self._m_shared_migrations = metrics.counter("shared_migrations")
        self._m_rebalances = metrics.counter("rebalances")
        self._m_replica_lag = metrics.histogram("replica_lag")
        self._m_convergence = metrics.histogram("convergence_us")
        self._m_latency: Dict[str, object] = {}
        self._m_lag: Dict[str, object] = {}
        self._m_epoch: Dict[str, object] = {}
        self.controller = FailoverController(clock,
                                             on_promoted=self._on_promoted)
        for pair in pairs:
            self._register_group(pair)

    def _register_group(self, group: ShardGroup) -> None:
        """Metrics + breaker listener for one group (init or ring add)."""
        self.pairs[group.name] = group
        metrics = self._metrics
        if group.name not in self._m_latency:
            self._m_latency[group.name] = metrics.histogram(
                f"latency_us.{group.name}")
            self._m_lag[group.name] = metrics.gauge(f"repl_lag.{group.name}")
            self._m_epoch[group.name] = metrics.gauge(f"epoch.{group.name}")
        self.controller.attach(group)

    # --------------------------------------------------------- sessions

    def use_session(self, session: Optional[DeviceSession]) -> None:
        """Issue subsequent ops on ``session``'s cursor (None = sync)."""
        self._session = session

    @property
    def devices(self) -> List:
        """Every live device, primaries first (for drain/power-cycle)."""
        groups = list(self.pairs.values())
        return ([g.primary for g in groups]
                + [rep.ssd for g in groups for rep in g.replicas])

    def pair_for(self, key) -> ShardGroup:
        return self.pairs[self.ring.lookup(key)]

    def _group(self, name: str) -> ShardGroup:
        group = self.pairs.get(name)
        if group is None:
            group = self.retired[name]
        return group

    # -------------------------------------------------------- internals

    def _on_promoted(self, event: FailoverEvent) -> None:
        self.stats.failovers += 1
        self.stats.failover_duration_us += event.duration_us
        self.stats.replayed_records += event.replayed
        self.stats.last_failover_us = event.at_us
        self._m_failovers.inc()
        self._m_failover_us.inc(event.duration_us)
        self._m_replayed.inc(event.replayed)
        self._m_epoch[event.shard].set(event.epoch)
        self._pending_convergence[event.shard] = event.at_us
        if event.proactive:
            self.stats.proactive_promotions += 1
            self._m_proactive.inc()
        if event.old_primary in self.health.tripped:
            # The demoted device is media-sick: keep replication off it
            # so applies stop burning its remaining spares.
            group = self.pairs.get(event.shard) \
                or self.retired.get(event.shard)
            if group is not None:
                group.mark_replica_failed(event.old_primary)

    def _ensure_primary(self, group: ShardGroup) -> None:
        if group.primary_down or group.needs_promotion:
            self.controller.promote(group)

    def _shard_op(self, group: ShardGroup, fn):
        """Run one group op with promote-and-retry on resilience failure.

        The first failure may be the breaker tripping (or already open)
        for a dead primary: promote a replica and re-issue once on the
        new primary.  A second failure means the shard is genuinely
        unavailable."""
        self.stats.ops += 1
        self._m_ops.inc()
        self._ensure_primary(group)
        start_us = self._session.now_us if self._session is not None \
            else self.clock.now_us
        before = group.backpressure_waits
        try:
            result = fn()
        except ResilienceError as exc:
            if not (group.needs_promotion or group.primary_down):
                raise ShardUnavailableError(
                    f"shard {group.name!r} failed without tripping its "
                    f"breaker: {exc}") from exc
            self.controller.promote(group)
            result = fn()
        waits = group.backpressure_waits - before
        if waits:
            self._m_backpressure.inc(waits)
        end_us = self._session.now_us if self._session is not None \
            else self.clock.now_us
        self._m_latency[group.name].record(max(0, end_us - start_us))
        return result

    def _ack(self, group: ShardGroup, record=None) -> None:
        """Post-ack bookkeeping: read-your-writes watermark, media
        health scoring, and the crashcheck kill/storm hook."""
        self.stats.acked_writes += 1
        self._m_acked.inc()
        self._m_lag[group.name].set(group.repl_lag)
        if record is not None:
            session = self._session
            client = session.client if session is not None else None
            self._client_seq[(client, group.name)] = record.seq
        if self.health.observe(group):
            self.stats.media_trips += 1
            self._m_media_trips.inc()
        faults = self.faults
        if faults.cluster.active:
            fault = faults.cluster.on_ack(group.name)
            if fault is not None:
                if isinstance(fault, ShardMediaStorm):
                    self._inject_storm(fault)
                else:
                    self.kill_shard(fault.victim)

    def _inject_storm(self, fault: ShardMediaStorm) -> None:
        """Arm the storm's NAND faults on the victim's primary — the
        device keeps serving; the health monitor watches it degrade."""
        group = self._group(fault.victim)
        fault.inject(group.primary)
        self.stats.media_storms += 1
        self._m_storms.inc()

    # ---------------------------------------------------- read routing

    def _read_owner(self, key) -> ShardGroup:
        """Owning group for a read, honoring mid-migration dual-read:
        a pending key missing from the new owner is still served by its
        old owner."""
        group = self.pair_for(key)
        state = self._migration
        if state is not None and key not in group.directory:
            src_name = state.pending.get(key)
            if src_name is not None:
                return self._group(src_name)
        return group

    # ------------------------------------------------------- client API

    def put(self, key, value):
        pair = self.pair_for(key)
        record = self._shard_op(
            pair, lambda: pair.put(key, value, session=self._session))
        self._ack(pair, record)
        self._settle_migration(key)
        return record

    def get(self, key):
        pair = self._read_owner(key)
        session = self._session
        client = session.client if session is not None else None
        min_seq = self._client_seq.get((client, pair.name), 0)
        before_reads = pair.replica_reads
        before_falls = pair.replica_read_fallbacks
        value = self._shard_op(
            pair, lambda: pair.get(key, session=session, min_seq=min_seq))
        if pair.replica_reads != before_reads:
            self.stats.replica_reads += 1
            self._m_replica_reads.inc()
        if pair.replica_read_fallbacks != before_falls:
            self.stats.replica_read_fallbacks += 1
            self._m_replica_fallbacks.inc()
        self.stats.reads += 1
        self._m_reads.inc()
        return value

    def share(self, dst_key, src_key):
        """Remap ``dst_key`` onto ``src_key``'s data.

        Same shard: a true SHARE command on that group's primary.
        Different shards (or a source still mid-migration): the remap
        cannot cross devices, so degrade to read-on-source +
        put-on-destination (counted, so reports show how often the hash
        layout defeats the mapping-only copy)."""
        src_pair = self._read_owner(src_key)
        dst_pair = self.pair_for(dst_key)
        if src_pair is dst_pair:
            record = self._shard_op(
                dst_pair,
                lambda: dst_pair.share(dst_key, src_key,
                                       session=self._session))
            self._ack(dst_pair, record)
            self._settle_migration(dst_key)
            return record
        session = self._session
        client = session.client if session is not None else None
        min_seq = self._client_seq.get((client, src_pair.name), 0)
        value = self._shard_op(
            src_pair, lambda: src_pair.get(src_key, session=session,
                                           min_seq=min_seq))
        self.stats.cross_shard_copies += 1
        self._m_copies.inc()
        record = self._shard_op(
            dst_pair, lambda: dst_pair.put(dst_key, value,
                                           session=self._session))
        self._ack(dst_pair, record)
        self._settle_migration(dst_key)
        return record

    def delete(self, key):
        pair = self.pair_for(key)
        record = self._shard_op(
            pair, lambda: pair.delete(key, session=self._session))
        if record is not None:
            self._ack(pair, record)
        settled = self._settle_migration(key)
        return record if record is not None else settled

    # ------------------------------------------------------ rebalancing

    def start_rebalance(self, add: Optional[ShardGroup] = None,
                        remove: Optional[str] = None) -> Rebalancer:
        """Resize the ring and return the migration driver.

        The ring swaps immediately — new writes route to new owners —
        while reads of not-yet-moved keys dual-read through the old
        owner.  The returned :class:`Rebalancer` drains the ownership
        diff; client writes settle pending keys early.  One rebalance
        at a time; each bumps the migration epoch, fencing any stale
        rebalancer."""
        if self._migration is not None:
            raise ClusterError("a rebalance is already in progress")
        if add is None and remove is None:
            raise ValueError("rebalance needs add= and/or remove=")
        adds: List[str] = []
        removes: List[str] = []
        if add is not None:
            if add.name in self.pairs or add.name in self.retired:
                raise ValueError(f"shard name in use: {add.name!r}")
            adds.append(add.name)
        if remove is not None:
            if remove not in self.pairs:
                raise ValueError(f"unknown shard: {remove!r}")
            removes.append(remove)
        new_ring = self.ring.rebalance(add=adds, remove=removes)
        if add is not None:
            self._register_group(add)
        pending: Dict[object, str] = {}
        for group in self.pairs.values():
            name = group.name
            for key in group.directory:
                if new_ring.lookup(key) != name:
                    pending[key] = name
        self.migration_epoch += 1
        self.ring = new_ring
        state = MigrationState(self.migration_epoch, pending,
                               tuple(adds), tuple(removes))
        rebalancer = Rebalancer(self, state)
        state.rebalancer = rebalancer
        self._migration = state
        self.stats.rebalances += 1
        self._m_rebalances.inc()
        return rebalancer

    def _settle_migration(self, key):
        """A client write/delete to a pending key supersedes the old
        copy: retire it from the old owner and unpend the key."""
        state = self._migration
        if state is None:
            return None
        src_name = state.pending.pop(key, None)
        if src_name is None:
            return None
        src = self._group(src_name)
        record = self._shard_op(
            src, lambda: src.delete(key, session=self._session))
        if record is not None:
            self._ack(src, record)
        if not state.pending:
            self._finish_migration(state)
        return record

    def _finish_migration(self, state: MigrationState) -> None:
        if self._migration is not state:
            return
        self._migration = None
        for name in state.removed:
            self.retired[name] = self.pairs.pop(name)

    def finish_rebalance(self) -> int:
        """Drain the active migration to completion (recovery path)."""
        state = self._migration
        if state is None or state.rebalancer is None:
            return 0
        return state.rebalancer.run()

    @property
    def migration_pending(self) -> int:
        state = self._migration
        return len(state.pending) if state is not None else 0

    # ------------------------------------------------------ maintenance

    def kill_shard(self, name: str) -> None:
        """Kill ``name``'s primary: power-cycle the device and latch the
        group's breaker open (the health monitor declaring it dead), so
        the next operation — or :meth:`ensure_healthy` — promotes a
        replica."""
        group = self._group(name)
        group.primary.power_cycle()
        group.primary_down = True
        self.stats.kills += 1
        self._m_kills.inc()
        # force_open -> BREAKER_OPEN transition -> controller listener
        # marks needs_promotion; promotion happens at an op boundary.
        group.guard.breaker.force_open()

    def ensure_healthy(self) -> int:
        """Promote every group marked for promotion; returns how many."""
        promoted = 0
        for group in list(self.pairs.values()):
            if group.primary_down or group.needs_promotion:
                self.controller.promote(group)
                promoted += 1
        return promoted

    def pump_replication(self, limit: Optional[int] = None) -> int:
        """Apply pending log records across every group's replicas.

        ``limit`` is a *total* budget for the call, spent round-robin
        one record per group per turn (starting from a cursor that
        rotates across calls), so one hot shard's backlog can't starve
        the others' replication lag.  Unlimited calls drain each group
        fully."""
        pairs = list(self.pairs.values())
        if not pairs:
            return 0
        count = len(pairs)
        start = self._pump_cursor % count
        applied = 0
        if limit is None:
            for offset in range(count):
                applied += pairs[(start + offset) % count].pump_replication()
            self._pump_cursor = (start + 1) % count
        else:
            remaining = limit
            progressed = True
            while remaining > 0 and progressed:
                progressed = False
                for offset in range(count):
                    if remaining <= 0:
                        break
                    group = pairs[(start + offset) % count]
                    got = group.pump_replication(1)
                    if got:
                        progressed = True
                        applied += got
                        remaining -= got
                start = (start + 1) % count
            self._pump_cursor = start
        for group in pairs:
            lag = group.repl_lag
            self._m_lag[group.name].set(lag)
            self._m_replica_lag.record(lag)
            if lag == 0:
                started = self._pending_convergence.pop(group.name, None)
                if started is not None:
                    duration = max(0, self.clock.now_us - started)
                    self.stats.convergences += 1
                    self.stats.convergence_us += duration
                    self._m_convergence.record(duration)
        if applied:
            self.stats.repl_applied += applied
            self._m_repl_applied.inc(applied)
        return applied

    def drain(self) -> None:
        """Complete all in-flight work on every device."""
        for device in self.devices:
            device.drain()
