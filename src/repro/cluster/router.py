"""Front-end router over M shard pairs: the cluster's client API.

The :class:`ShardRouter` consistent-hash-partitions the key space over
its pairs, forwards each KV operation to the owning pair's primary, and
handles the tier-level concerns no single shard can: promoting a pair
whose breaker opened (via the :class:`FailoverController`), re-issuing
the failed operation on the new primary, degrading cross-shard SHARE to
read+copy, and consulting the fault plan's cluster set after every ack
so crashcheck sweeps can kill a shard at any ack boundary.

Ack contract: :meth:`put` / :meth:`share` / :meth:`delete` return only
once the mutation is durable on the owning primary *and* appended to
the pair's replication log — the ``no_lost_acked_write`` invariant the
cluster crashcheck sweep enforces is exactly "anything those methods
returned for is readable after any single-shard kill + power cycle".

Telemetry (``cluster.*``): op/ack counters, per-shard op-latency
histograms (p99 per shard), ``repl_lag.<shard>`` and ``epoch.<shard>``
gauges, failover count and duration, backpressure waits, replayed
records.  Because crash harnesses run with ``NULL_TELEMETRY``, the
router also keeps a plain :class:`ClusterStats` the sweeps read
directly (same pattern as ``GuardStats``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.failover import FailoverController, FailoverEvent
from repro.cluster.hashring import HashRing
from repro.cluster.shard import ShardPair
from repro.errors import ResilienceError, ShardUnavailableError
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim.faults import NO_FAULTS
from repro.ssd.ncq import DeviceSession

__all__ = ["ShardRouter", "ClusterStats"]


@dataclass
class ClusterStats:
    """Local counters the router accumulates (readable even when
    telemetry is the NULL singleton, as in crash harnesses)."""

    ops: int = 0
    acked_writes: int = 0
    reads: int = 0
    kills: int = 0
    failovers: int = 0
    failover_duration_us: int = 0
    replayed_records: int = 0
    repl_applied: int = 0
    cross_shard_copies: int = 0
    last_failover_us: Optional[int] = field(default=None)


class ShardRouter:
    """Consistent-hash router over shard pairs with failover."""

    def __init__(self, pairs: Sequence[ShardPair], clock,
                 faults=NO_FAULTS, telemetry=None,
                 vnodes: int = 64) -> None:
        if not pairs:
            raise ValueError("router needs at least one shard pair")
        self.clock = clock
        self.faults = faults
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.pairs: Dict[str, ShardPair] = {p.name: p for p in pairs}
        if len(self.pairs) != len(pairs):
            raise ValueError("duplicate shard pair names")
        self.ring = HashRing([p.name for p in pairs], vnodes=vnodes)
        self.stats = ClusterStats()
        self._session: Optional[DeviceSession] = None
        metrics = self.telemetry.metrics.scope("cluster")
        self._m_ops = metrics.counter("ops")
        self._m_acked = metrics.counter("acked_writes")
        self._m_reads = metrics.counter("reads")
        self._m_kills = metrics.counter("shard_kills")
        self._m_failovers = metrics.counter("failovers")
        self._m_failover_us = metrics.counter("failover_duration_us")
        self._m_replayed = metrics.counter("replayed_records")
        self._m_repl_applied = metrics.counter("repl_applied")
        self._m_backpressure = metrics.counter("backpressure_waits")
        self._m_copies = metrics.counter("cross_shard_copies")
        self._m_latency: Dict[str, object] = {}
        self._m_lag: Dict[str, object] = {}
        self._m_epoch: Dict[str, object] = {}
        for pair in pairs:
            self._m_latency[pair.name] = metrics.histogram(
                f"latency_us.{pair.name}")
            self._m_lag[pair.name] = metrics.gauge(f"repl_lag.{pair.name}")
            self._m_epoch[pair.name] = metrics.gauge(f"epoch.{pair.name}")
        self.controller = FailoverController(clock,
                                             on_promoted=self._on_promoted)
        for pair in pairs:
            self.controller.attach(pair)

    # --------------------------------------------------------- sessions

    def use_session(self, session: Optional[DeviceSession]) -> None:
        """Issue subsequent ops on ``session``'s cursor (None = sync)."""
        self._session = session

    @property
    def devices(self) -> List:
        """Every live device, primaries first (for drain/power-cycle)."""
        return ([p.primary for p in self.pairs.values()]
                + [p.replica for p in self.pairs.values()])

    def pair_for(self, key) -> ShardPair:
        return self.pairs[self.ring.lookup(key)]

    # -------------------------------------------------------- internals

    def _on_promoted(self, event: FailoverEvent) -> None:
        self.stats.failovers += 1
        self.stats.failover_duration_us += event.duration_us
        self.stats.replayed_records += event.replayed
        self.stats.last_failover_us = event.at_us
        self._m_failovers.inc()
        self._m_failover_us.inc(event.duration_us)
        self._m_replayed.inc(event.replayed)
        self._m_epoch[event.shard].set(event.epoch)

    def _ensure_primary(self, pair: ShardPair) -> None:
        if pair.primary_down or pair.needs_promotion:
            self.controller.promote(pair)

    def _shard_op(self, pair: ShardPair, fn):
        """Run one pair op with promote-and-retry on resilience failure.

        The first failure may be the breaker tripping (or already open)
        for a dead primary: promote the replica and re-issue once on
        the new primary.  A second failure means the shard is genuinely
        unavailable."""
        self.stats.ops += 1
        self._m_ops.inc()
        self._ensure_primary(pair)
        start_us = self._session.now_us if self._session is not None \
            else self.clock.now_us
        before = pair.backpressure_waits
        try:
            result = fn()
        except ResilienceError as exc:
            if not (pair.needs_promotion or pair.primary_down):
                raise ShardUnavailableError(
                    f"shard {pair.name!r} failed without tripping its "
                    f"breaker: {exc}") from exc
            self.controller.promote(pair)
            result = fn()
        waits = pair.backpressure_waits - before
        if waits:
            self._m_backpressure.inc(waits)
        end_us = self._session.now_us if self._session is not None \
            else self.clock.now_us
        self._m_latency[pair.name].record(max(0, end_us - start_us))
        return result

    def _ack(self, pair: ShardPair) -> None:
        """Post-ack bookkeeping + the crashcheck kill hook."""
        self.stats.acked_writes += 1
        self._m_acked.inc()
        self._m_lag[pair.name].set(pair.repl_lag)
        faults = self.faults
        if faults.cluster.active:
            victim = faults.cluster.on_ack(pair.name)
            if victim is not None:
                self.kill_shard(victim)

    # ------------------------------------------------------- client API

    def put(self, key, value):
        pair = self.pair_for(key)
        record = self._shard_op(
            pair, lambda: pair.put(key, value, session=self._session))
        self._ack(pair)
        return record

    def get(self, key):
        pair = self.pair_for(key)
        value = self._shard_op(
            pair, lambda: pair.get(key, session=self._session))
        self.stats.reads += 1
        self._m_reads.inc()
        return value

    def share(self, dst_key, src_key):
        """Remap ``dst_key`` onto ``src_key``'s data.

        Same shard: a true SHARE command on that pair's primary.
        Different shards: the remap cannot cross devices, so degrade to
        read-on-source + put-on-destination (counted, so reports show
        how often the hash layout defeats the mapping-only copy)."""
        src_pair = self.pair_for(src_key)
        dst_pair = self.pair_for(dst_key)
        if src_pair is dst_pair:
            record = self._shard_op(
                dst_pair,
                lambda: dst_pair.share(dst_key, src_key,
                                       session=self._session))
            self._ack(dst_pair)
            return record
        value = self._shard_op(
            src_pair, lambda: src_pair.get(src_key, session=self._session))
        self.stats.cross_shard_copies += 1
        self._m_copies.inc()
        record = self._shard_op(
            dst_pair, lambda: dst_pair.put(dst_key, value,
                                           session=self._session))
        self._ack(dst_pair)
        return record

    def delete(self, key):
        pair = self.pair_for(key)
        record = self._shard_op(
            pair, lambda: pair.delete(key, session=self._session))
        if record is not None:
            self._ack(pair)
        return record

    # ------------------------------------------------------ maintenance

    def kill_shard(self, name: str) -> None:
        """Kill ``name``'s primary: power-cycle the device and latch the
        pair's breaker open (the health monitor declaring it dead), so
        the next operation — or :meth:`ensure_healthy` — promotes the
        replica."""
        pair = self.pairs[name]
        pair.primary.power_cycle()
        pair.primary_down = True
        self.stats.kills += 1
        self._m_kills.inc()
        # force_open -> BREAKER_OPEN transition -> controller listener
        # marks needs_promotion; promotion happens at an op boundary.
        pair.guard.breaker.force_open()

    def ensure_healthy(self) -> int:
        """Promote every pair marked for promotion; returns how many."""
        promoted = 0
        for pair in self.pairs.values():
            if pair.primary_down or pair.needs_promotion:
                self.controller.promote(pair)
                promoted += 1
        return promoted

    def pump_replication(self, limit: Optional[int] = None) -> int:
        """Apply pending log records on every pair's replica."""
        applied = 0
        for pair in self.pairs.values():
            applied += pair.pump_replication(limit)
            self._m_lag[pair.name].set(pair.repl_lag)
        if applied:
            self.stats.repl_applied += applied
            self._m_repl_applied.inc(applied)
        return applied

    def drain(self) -> None:
        """Complete all in-flight work on every device."""
        for device in self.devices:
            device.drain()
