"""Live key migration for ring resize: add or remove a shard safely.

``ShardRouter.start_rebalance`` swaps the ring *first* (so new writes
immediately route to the new owners) and hands back a
:class:`Rebalancer` that drains the ownership diff — every key whose
clockwise successor vnode changed — in deterministic per-vnode batches.
Until a key's record lands on its new owner, the router *dual-reads*:
the new owner's directory is consulted first, and a miss for a
still-pending key falls back to the old owner, which keeps serving it.
A client write to a pending key settles it immediately (write to the
new owner, retire the old copy), so the migration never overwrites
fresher data.

Each migrated record is re-published through the normal acked write
path on the destination group — primary write, replication-log append,
write-quorum wait — so a kill at *any* boundary mid-migration leaves
the key readable from one side of the handoff or the other: the source
copy is only deleted after the destination ack returned.

SHARE-remap awareness: a key created by a same-shard SHARE carries its
source key as provenance.  When the provenance key already lives on the
destination group with an identical payload, the transfer is a SHARE
remap on the destination device — the paper's mapping-only copy —
instead of a full data copy; the payload comparison guards against
provenance that went stale (source overwritten since the snapshot).

Epoch fencing: every ``start_rebalance`` bumps the router's migration
epoch and each :class:`Rebalancer` is pinned to the epoch it was
created under.  A rebalancer resumed after a newer rebalance started
(the stale-coordinator shape) is refused with
:class:`~repro.errors.StaleEpochError` instead of migrating keys under
an outdated ring.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StaleEpochError

__all__ = ["Rebalancer", "MigrationState"]


class MigrationState:
    """The router's view of one in-flight migration."""

    __slots__ = ("epoch", "pending", "rebalancer", "added", "removed")

    def __init__(self, epoch: int, pending: Dict[Any, str],
                 added: Tuple[str, ...], removed: Tuple[str, ...]) -> None:
        self.epoch = epoch
        #: key -> old-owner group name; a key leaves the map the moment
        #: its record is durable on the new owner (migration step or a
        #: client write settling it early).
        self.pending = pending
        self.rebalancer: Optional["Rebalancer"] = None
        self.added = added
        self.removed = removed


class Rebalancer:
    """Drains one migration's ownership diff, one vnode at a time."""

    def __init__(self, router, state: MigrationState) -> None:
        self.router = router
        self.epoch = state.epoch
        self._state = state
        # Deterministic per-vnode batches: group pending keys by the
        # destination vnode point that now owns them, migrate batches in
        # ascending point order, keys in repr order within a batch.
        batches: Dict[int, List[Any]] = {}
        for key in state.pending:
            point, _owner = router.ring.lookup_point(key)
            batches.setdefault(point, []).append(key)
        self._units: List[Tuple[int, List[Any]]] = [
            (point, sorted(keys, key=repr))
            for point, keys in sorted(batches.items())]
        self.cursor = 0
        self.moved = 0
        self.shared = 0
        self.skipped = 0

    @property
    def total_units(self) -> int:
        return len(self._units)

    @property
    def done(self) -> bool:
        return self.cursor >= len(self._units)

    def _check_epoch(self) -> None:
        if self.router.migration_epoch != self.epoch:
            raise StaleEpochError(
                f"rebalancer epoch {self.epoch} superseded by migration "
                f"epoch {self.router.migration_epoch}")

    def step(self) -> int:
        """Migrate the next vnode batch; returns keys moved.

        Safe to interleave with client traffic and shard kills: every
        per-key transfer is an independently acked handoff."""
        self._check_epoch()
        if self.done:
            return 0
        _point, keys = self._units[self.cursor]
        self.cursor += 1
        migrated = 0
        for key in keys:
            if self._move_key(key):
                migrated += 1
        if self.done:
            self.router._finish_migration(self._state)
        return migrated

    def run(self) -> int:
        """Drain every remaining vnode batch."""
        migrated = 0
        while not self.done:
            migrated += self.step()
        return migrated

    def _move_key(self, key) -> bool:
        router = self.router
        state = self._state
        src_name = state.pending.get(key)
        if src_name is None:
            # A client write or delete already settled this key on the
            # new owner (or removed it); nothing left to move.
            self.skipped += 1
            return False
        src = router.pairs[src_name]
        value = router._shard_op(
            src, lambda: src.get(key, allow_replica=False))
        if value is None:
            # Deleted on the source since the plan was computed.
            state.pending.pop(key, None)
            self.skipped += 1
            return False
        dst = router.pairs[router.ring.lookup(key)]
        record = None
        src_key = src._share_src.get(key)
        if src_key is not None and src_key in dst.directory:
            src_val = router._shard_op(
                dst, lambda: dst.get(src_key, allow_replica=False))
            if repr(src_val) == repr(value):
                record = router._shard_op(
                    dst, lambda: dst.share(key, src_key))
                self.shared += 1
                router.stats.shared_migrations += 1
                router._m_shared_migrations.inc()
        if record is None:
            record = router._shard_op(dst, lambda: dst.put(key, value))
        router._ack(dst, record)
        # The destination ack is durable: only now retire the old copy.
        state.pending.pop(key, None)
        retired = router._shard_op(src, lambda: src.delete(key))
        if retired is not None:
            router._ack(src, retired)
        self.moved += 1
        router.stats.migrated_keys += 1
        router._m_migrated.inc()
        return True
