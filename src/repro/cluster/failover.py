"""Breaker-driven promotion of a shard pair's replica.

The controller is a listener on each pair's :class:`ShareGuard` breaker
(via the PR 8 ``add_listener`` hook): the moment a shard's media or
command faults push its breaker open — or the router latches it open
after a device kill — the pair is marked for promotion.  The router then
calls :meth:`promote` at the next operation boundary (never from inside
the breaker transition callback, where the guard's retry loop is still
on the stack and still holds closures over the old primary).

Promotion sequence (the ``closed -> open -> promote -> re-replicate``
state machine in docs/resilience.md):

1. Reset the pair's breaker — the new primary is healthy, and the reset
   re-emits the state gauge (the satellite fix in
   :meth:`CircuitBreaker.reset`) so the open->closed edge is visible in
   telemetry with the failover duration accounted in ``GuardStats``.
2. Replay the replication-log tail past the replica's verified
   watermark onto the replica, each record through the guard's retry
   policy — this is where writes that were acked but not yet pumped
   (the dead shard's in-flight backlog) drain back through retry.
3. Bump the log epoch, fencing any stale writer from the old regime.
4. Swap roles.  The old primary (just power-cycled) rejoins as the
   replica with a fresh applier at watermark 0; normal replication
   pumping re-replicates the full log onto it.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from repro.cluster.replication import LogApplier
from repro.cluster.shard import ShardPair
from repro.errors import ShardUnavailableError
from repro.host.resilience import BREAKER_OPEN

__all__ = ["FailoverController", "FailoverEvent"]


class FailoverEvent(NamedTuple):
    """One completed promotion, for telemetry and the results log."""

    shard: str
    at_us: int
    duration_us: int
    replayed: int
    epoch: int
    old_primary: str
    new_primary: str


class FailoverController:
    """Promotes replicas when breakers open; owns the event history."""

    def __init__(self, clock,
                 on_promoted: Optional[Callable[[FailoverEvent], None]]
                 = None) -> None:
        self.clock = clock
        self.on_promoted = on_promoted
        self.events: List[FailoverEvent] = []
        self._promoting = False

    def attach(self, pair: ShardPair) -> None:
        """Watch one pair's breaker; an open edge marks it promotable."""
        def _on_state(state: str) -> None:
            if state == BREAKER_OPEN:
                pair.needs_promotion = True
        pair.guard.add_listener(_on_state)

    def promote(self, pair: ShardPair) -> FailoverEvent:
        """Make the replica the primary; replay the unreplicated tail."""
        if self._promoting:
            raise ShardUnavailableError(
                f"re-entrant promotion on shard {pair.name!r}")
        if pair.replica is None:
            raise ShardUnavailableError(
                f"shard {pair.name!r} has no replica to promote")
        self._promoting = True
        try:
            start_us = self.clock.now_us
            new_primary = pair.replica
            old_primary = pair.primary
            # The breaker belongs to the pair, not the dead device; the
            # new primary is healthy, so unlatch before replaying (the
            # reset also closes out GuardStats' open episode, stamping
            # the failover latency).
            pair.guard.breaker.reset()
            tail = pair.log.records_from(pair.applier.watermark + 1)
            session = pair.repl_session
            if session.now_us < self.clock.now_us:
                session.now_us = self.clock.now_us
            start_cursor = session.now_us
            replayed = 0
            applier = pair.applier
            for record in tail:
                def apply_one(record=record):
                    new_primary._session = session
                    try:
                        return applier.apply(new_primary, record)
                    finally:
                        new_primary._session = None
                if pair.guard.call("cluster.replay", apply_one):
                    replayed += 1
            epoch = pair.log.bump_epoch()
            pair.primary = new_primary
            pair.replica = old_primary
            # Rejoin: the demoted device re-replicates from scratch via
            # the normal pump path.  Applying from seq 1 is idempotent
            # on its media (writes of the same payloads, remaps of the
            # same pairs) and closes any post-kill gap.
            pair.applier = LogApplier()
            pair.primary_down = False
            pair.needs_promotion = False
            pair.failovers += 1
            # Replay I/O advances the replication session's cursor, not
            # necessarily the global clock — the recovery duration is
            # whichever moved further.
            duration = max(self.clock.now_us - start_us,
                           session.now_us - start_cursor)
            event = FailoverEvent(
                shard=pair.name,
                at_us=self.clock.now_us,
                duration_us=duration,
                replayed=replayed,
                epoch=epoch,
                old_primary=old_primary.name,
                new_primary=new_primary.name,
            )
            self.events.append(event)
            if self.on_promoted is not None:
                self.on_promoted(event)
            return event
        finally:
            self._promoting = False
