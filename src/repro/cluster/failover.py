"""Breaker-driven promotion of a shard group's best replica.

The controller is a listener on each group's :class:`ShareGuard` breaker
(via the PR 8 ``add_listener`` hook): the moment a shard's media or
command faults push its breaker open — or the router latches it open
after a device kill, or the media-health monitor latches it open on an
escalating-degradation score — the group is marked for promotion.  The
router then calls :meth:`promote` at the next operation boundary (never
from inside the breaker transition callback, where the guard's retry
loop is still on the stack and still holds closures over the old
primary).

Promotion sequence (the ``closed -> open -> promote -> re-replicate``
state machine in docs/resilience.md):

1. Pick the most-caught-up live replica — the one whose applier
   watermark is highest, so the tail replay is shortest.  Failed
   replicas are a last resort: their media still holds every applied
   record, they just stopped keeping up.
2. Reset the group's breaker — the new primary is healthy, and the
   reset re-emits the state gauge (the satellite fix in
   :meth:`CircuitBreaker.reset`) so the open->closed edge is visible in
   telemetry with the failover duration accounted in ``GuardStats``.
3. Replay the replication-log tail past the chosen replica's verified
   watermark onto it, each record through the guard's retry policy —
   this is where writes that were acked but not yet pumped (the dead
   shard's in-flight backlog) drain back through retry.
4. Bump the log epoch, fencing any stale writer from the old regime.
5. Swap roles.  The old primary (power-cycled after a kill, or still
   live after a proactive media trip) rejoins as a replica with a fresh
   applier at watermark 0; normal replication pumping re-replicates the
   full log onto it.

A promotion whose old primary never went down (the health monitor fired
before the device died) is recorded as *proactive* — the paper-level
claim of media-driven failover is exactly that these happen with zero
kills.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from repro.cluster.shard import ShardGroup
from repro.errors import ShardUnavailableError
from repro.host.resilience import BREAKER_OPEN

__all__ = ["FailoverController", "FailoverEvent"]


class FailoverEvent(NamedTuple):
    """One completed promotion, for telemetry and the results log."""

    shard: str
    at_us: int
    duration_us: int
    replayed: int
    epoch: int
    old_primary: str
    new_primary: str
    #: True when the old primary was still serving (media-health trip)
    #: rather than already dead (kill / breaker exhaustion).
    proactive: bool = False
    #: Replication lag of the promoted replica at promotion time — the
    #: size of the tail replay it needed.
    lag_at_promotion: int = 0


class FailoverController:
    """Promotes replicas when breakers open; owns the event history."""

    def __init__(self, clock,
                 on_promoted: Optional[Callable[[FailoverEvent], None]]
                 = None) -> None:
        self.clock = clock
        self.on_promoted = on_promoted
        self.events: List[FailoverEvent] = []
        self._promoting = False

    def attach(self, group: ShardGroup) -> None:
        """Watch one group's breaker; an open edge marks it promotable."""
        def _on_state(state: str) -> None:
            if state == BREAKER_OPEN:
                group.needs_promotion = True
        group.guard.add_listener(_on_state)

    def promote(self, group: ShardGroup) -> FailoverEvent:
        """Make the best replica the primary; replay the log tail."""
        if self._promoting:
            raise ShardUnavailableError(
                f"re-entrant promotion on shard {group.name!r}")
        candidates = group.live_replicas() or list(group.replicas)
        if not candidates:
            raise ShardUnavailableError(
                f"shard {group.name!r} has no replica to promote")
        self._promoting = True
        try:
            start_us = self.clock.now_us
            target = max(candidates, key=lambda rep: rep.applier.watermark)
            proactive = not group.primary_down
            lag = group.log.tip - target.applier.watermark
            new_primary = target.ssd
            old_primary = group.primary
            # The breaker belongs to the group, not the dead device; the
            # new primary is healthy, so unlatch before replaying (the
            # reset also closes out GuardStats' open episode, stamping
            # the failover latency).
            group.guard.breaker.reset()
            session = target.session
            if session.now_us < self.clock.now_us:
                session.now_us = self.clock.now_us
            start_cursor = session.now_us
            replayed = 0
            applier = target.applier
            log = group.log
            for seq in range(applier.watermark + 1, log.tip + 1):
                record = log.record_at(seq)

                def apply_one(record=record):
                    new_primary._session = session
                    try:
                        return applier.apply(new_primary, record)
                    finally:
                        new_primary._session = None
                if group.guard.call("cluster.replay", apply_one):
                    replayed += 1
            epoch = log.bump_epoch()
            group.replicas.remove(target)
            group.primary = new_primary
            group.rejoin(old_primary)
            group.primary_down = False
            group.needs_promotion = False
            group.failovers += 1
            # Replay I/O advances the replication session's cursor, not
            # necessarily the global clock — the recovery duration is
            # whichever moved further.
            duration = max(self.clock.now_us - start_us,
                           session.now_us - start_cursor)
            event = FailoverEvent(
                shard=group.name,
                at_us=self.clock.now_us,
                duration_us=duration,
                replayed=replayed,
                epoch=epoch,
                old_primary=old_primary.name,
                new_primary=new_primary.name,
                proactive=proactive,
                lag_at_promotion=lag,
            )
            self.events.append(event)
            if self.on_promoted is not None:
                self.on_promoted(event)
            return event
        finally:
            self._promoting = False
