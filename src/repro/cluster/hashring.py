"""Deterministic consistent-hash ring for shard placement.

Keys are hashed with FNV-1a over their ``repr`` — never Python's
built-in ``hash()``, which is randomized per process for strings and
would make shard placement (and therefore every crashcheck sweep and
benchmark) non-reproducible.  Each node contributes ``vnodes`` virtual
points so load stays balanced even with a handful of shards, and a key
maps to the first point clockwise from its own hash.

The ring is intentionally static: failover swaps the *roles* inside a
shard pair (primary <-> replica), it never moves key ownership between
pairs, so there is no rebalancing path to get wrong during a kill.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

__all__ = ["HashRing", "fnv1a64"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a64(data: bytes) -> int:
    """64-bit FNV-1a — small, fast, and stable across processes."""
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & _MASK
    return h


class HashRing:
    """Consistent-hash ring over a fixed set of node names."""

    def __init__(self, nodes: Sequence[str], vnodes: int = 64) -> None:
        if not nodes:
            raise ValueError("ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node names: {list(nodes)!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(vnodes):
                point = fnv1a64(f"{node}#{replica}".encode("utf-8"))
                points.append((point, node))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def lookup(self, key) -> str:
        """Owning node for ``key`` (first ring point clockwise)."""
        h = fnv1a64(repr(key).encode("utf-8"))
        index = bisect_right(self._hashes, h)
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def spread(self, keys: Sequence) -> Dict[str, int]:
        """Key count per node — balance diagnostics for tests/reports."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.nodes)
