"""Deterministic consistent-hash ring for shard placement.

Keys are hashed with FNV-1a over their ``repr`` — never Python's
built-in ``hash()``, which is randomized per process for strings and
would make shard placement (and therefore every crashcheck sweep and
benchmark) non-reproducible.  Each node contributes ``vnodes`` virtual
points so load stays balanced even with a handful of shards, and a key
maps to the first point clockwise from its own hash.

A ring instance is immutable; :meth:`rebalance` derives a *new* ring
with nodes added and/or removed.  Consistent hashing's defining
property holds by construction: a key changes owner between the old and
new ring only when its clockwise successor point belongs to an added or
removed node, so membership changes move the minimal key range.  The
live migration protocol on top of this (dual-read handoff, per-vnode
cursors, epoch fencing) lives in ``repro.cluster.rebalance``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["HashRing", "fnv1a64"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a64(data: bytes) -> int:
    """64-bit FNV-1a — small, fast, and stable across processes."""
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & _MASK
    return h


def _mix64(h: int) -> int:
    """Finalizing avalanche (murmur3's fmix64).

    Raw FNV-1a barely diffuses a short suffix — ``"shard3#0"`` through
    ``"shard3#63"`` hash to *adjacent* points, so without this step each
    node's vnodes collapse into one arc and the ring degenerates to a
    single point per node (terrible balance, near-zero movement on
    rebalance)."""
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK
    h ^= h >> 33
    return h


def _point_hash(data: bytes) -> int:
    return _mix64(fnv1a64(data))


class HashRing:
    """Consistent-hash ring over a set of node names."""

    def __init__(self, nodes: Sequence[str], vnodes: int = 64) -> None:
        if not nodes:
            raise ValueError("ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node names: {list(nodes)!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(vnodes):
                point = _point_hash(f"{node}#{replica}".encode("utf-8"))
                points.append((point, node))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def lookup(self, key) -> str:
        """Owning node for ``key`` (first ring point clockwise)."""
        h = _point_hash(repr(key).encode("utf-8"))
        index = bisect_right(self._hashes, h)
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def lookup_point(self, key) -> Tuple[int, str]:
        """``(vnode_point, owner)`` for ``key`` — the migration cursor
        unit: all keys sharing a vnode point move as one batch."""
        h = _point_hash(repr(key).encode("utf-8"))
        index = bisect_right(self._hashes, h)
        if index == len(self._points):
            index = 0
        return self._points[index]

    def rebalance(self, add: Sequence[str] = (),
                  remove: Sequence[str] = ()) -> "HashRing":
        """A new ring with ``add`` joined and ``remove`` departed.

        Validates membership strictly — adding a present node or
        removing an absent one is a caller bug, not a no-op."""
        add = list(add)
        remove = list(remove)
        for node in add:
            if node in self.nodes:
                raise ValueError(f"node already in ring: {node!r}")
        for node in remove:
            if node not in self.nodes:
                raise ValueError(f"node not in ring: {node!r}")
        nodes = [n for n in self.nodes if n not in remove] + add
        if not nodes:
            raise ValueError("rebalance would empty the ring")
        return HashRing(nodes, vnodes=self.vnodes)

    def moved_keys(self, keys: Sequence, new_ring: "HashRing"
                   ) -> Dict[object, Tuple[str, str]]:
        """Keys whose owner differs between this ring and ``new_ring``,
        mapped to ``(old_owner, new_owner)``."""
        moved: Dict[object, Tuple[str, str]] = {}
        for key in keys:
            old_owner = self.lookup(key)
            new_owner = new_ring.lookup(key)
            if old_owner != new_owner:
                moved[key] = (old_owner, new_owner)
        return moved

    def spread(self, keys: Sequence) -> Dict[str, int]:
        """Key count per node — balance diagnostics for tests/reports."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.nodes)
