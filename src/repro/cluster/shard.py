"""One shard of the cluster: a primary/replica device pair.

A :class:`ShardPair` owns two event-driven :class:`~repro.ssd.device.Ssd`
devices plus the host-side state that makes them one shard: the
key->LPN directory (the tier's metadata service — it survives device
kills), an LPN allocator over the primary's logical space, the pair's
:class:`~repro.cluster.replication.ReplicationLog`, the replica-side
:class:`~repro.cluster.replication.LogApplier`, and a
:class:`~repro.host.resilience.ShareGuard` wrapping every primary
command in the PR 4 retry/breaker policy.

Write path: reserve an LPN, write the primary through the guard, commit
the directory entry, append the mutation to the replication log — *then*
ack.  The replica lags behind on purpose; :meth:`pump_replication`
applies the backlog in batches on a dedicated replication session so
background applies never advance foreground client cursors.

Backpressure: before each command the pair bounds the primary's
in-flight queue at ``queue_limit`` tickets, blocking (advancing virtual
time to the next completion) until a slot frees up.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional

from repro.cluster.replication import (REPL_SHARE, REPL_TRIM, REPL_WRITE,
                                       LogApplier, ReplicationLog)
from repro.errors import ClusterError, ShareError
from repro.host.resilience import CircuitBreaker, RetryPolicy, ShareGuard
from repro.ssd.ncq import DeviceSession

__all__ = ["ShardPair", "PairStats"]

#: Session id reserved for the replication apply loop (never a client).
REPL_CLIENT = -1


class PairStats(NamedTuple):
    """Snapshot of one pair's counters (for reports and tests)."""

    writes: int
    reads: int
    shares: int
    deletes: int
    share_fallbacks: int
    backpressure_waits: int
    failovers: int
    repl_lag: int
    epoch: int


class ShardPair:
    """Primary + replica devices serving one consistent-hash shard."""

    def __init__(self, name: str, primary, replica,
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 queue_limit: Optional[int] = 8) -> None:
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1: {queue_limit}")
        self.name = name
        self.primary = primary
        self.replica = replica
        self.queue_limit = queue_limit
        self.log = ReplicationLog()
        self.applier = LogApplier()
        self.directory: Dict[Any, int] = {}
        self.capacity = min(primary.logical_pages, replica.logical_pages)
        self._next_lpn = 0
        self._free_lpns: List[int] = []
        self.guard = ShareGuard(primary, engine=f"shard.{name}",
                                policy=policy, breaker=breaker)
        self.repl_session = DeviceSession(client=REPL_CLIENT)
        # Role/health flags the router and failover controller maintain.
        self.primary_down = False
        self.needs_promotion = False
        self.failovers = 0
        # Plain counters (readable under NULL_TELEMETRY).
        self.writes = 0
        self.reads = 0
        self.shares = 0
        self.deletes = 0
        self.share_fallbacks = 0
        self.backpressure_waits = 0

    # ---------------------------------------------------------- metadata

    @property
    def repl_lag(self) -> int:
        """Records acked by the primary but not yet on the replica."""
        return self.log.tip - self.applier.watermark

    def stats(self) -> PairStats:
        return PairStats(self.writes, self.reads, self.shares, self.deletes,
                         self.share_fallbacks, self.backpressure_waits,
                         self.failovers, self.repl_lag, self.log.epoch)

    def _reserve_lpn(self, key):
        """Pick an LPN for ``key`` without committing it yet."""
        lpn = self.directory.get(key)
        if lpn is not None:
            return lpn, False
        if self._free_lpns:
            return self._free_lpns[-1], True
        if self._next_lpn >= self.capacity:
            raise ClusterError(
                f"shard {self.name!r} is full ({self.capacity} keys)")
        return self._next_lpn, True

    def _commit_lpn(self, key, lpn: int, fresh: bool) -> None:
        """Commit a reservation once the device write succeeded."""
        if not fresh:
            return
        if self._free_lpns and self._free_lpns[-1] == lpn:
            self._free_lpns.pop()
        else:
            self._next_lpn += 1
        self.directory[key] = lpn

    # ------------------------------------------------------- client ops

    def _backpressure(self, ssd) -> None:
        limit = self.queue_limit
        if limit is None:
            return
        inflight = ssd._inflight
        while len(inflight) >= limit:
            self.backpressure_waits += 1
            ssd.events.run_until(inflight[0][0])

    def _guarded(self, label: str, ssd, session, fn):
        """Run a device op through the guard with a session attached."""
        def attempt():
            if session is not None:
                ssd._session = session
            try:
                return fn()
            finally:
                if session is not None:
                    ssd._session = None
        return self.guard.call(label, attempt)

    def put(self, key, value, session: Optional[DeviceSession] = None):
        """Durably write ``key`` and append the replication record.

        Returns the appended :class:`ReplRecord`; its return *is* the
        ack — the write is on the primary's media and in the durable
        log, so a single-device kill at any later instant cannot lose
        it."""
        ssd = self.primary
        self._backpressure(ssd)
        lpn, fresh = self._reserve_lpn(key)
        self._guarded("cluster.put", ssd, session,
                      lambda: ssd.write(lpn, value))
        self._commit_lpn(key, lpn, fresh)
        self.writes += 1
        return self.log.append(REPL_WRITE, key, lpn, value)

    def get(self, key, session: Optional[DeviceSession] = None):
        """Read ``key`` from the primary (None when absent)."""
        lpn = self.directory.get(key)
        if lpn is None:
            return None
        ssd = self.primary
        self._backpressure(ssd)
        value = self._guarded("cluster.get", ssd, session,
                              lambda: ssd.read(lpn))
        self.reads += 1
        return value

    def share(self, dst_key, src_key,
              session: Optional[DeviceSession] = None):
        """SHARE-remap ``dst_key`` onto ``src_key``'s physical page.

        The mapping-only copy from the paper, lifted to the KV tier.
        Degrades to read+write when the primary's reverse map refuses
        the remap; either way the replication record carries the source
        payload so the replica can make the same choice independently.
        Returns the appended record."""
        src_lpn = self.directory.get(src_key)
        if src_lpn is None:
            raise ClusterError(
                f"share source {src_key!r} not present on shard "
                f"{self.name!r}")
        ssd = self.primary
        self._backpressure(ssd)
        value = self._guarded("cluster.share.read", ssd, session,
                              lambda: ssd.read(src_lpn))
        lpn, fresh = self._reserve_lpn(dst_key)

        def do_share():
            try:
                ssd.share(lpn, src_lpn)
            except ShareError:
                self.share_fallbacks += 1
                ssd.write(lpn, value)
        self._guarded("cluster.share", ssd, session, do_share)
        self._commit_lpn(dst_key, lpn, fresh)
        self.shares += 1
        return self.log.append(REPL_SHARE, dst_key, lpn, value,
                               src_lpn=src_lpn)

    def delete(self, key, session: Optional[DeviceSession] = None):
        """Trim ``key``; returns the record, or None when absent."""
        lpn = self.directory.get(key)
        if lpn is None:
            return None
        ssd = self.primary
        self._backpressure(ssd)
        self._guarded("cluster.delete", ssd, session,
                      lambda: ssd.trim(lpn))
        del self.directory[key]
        self._free_lpns.append(lpn)
        self.deletes += 1
        return self.log.append(REPL_TRIM, key, lpn)

    # ------------------------------------------------------- replication

    def pump_replication(self, limit: Optional[int] = None) -> int:
        """Apply up to ``limit`` pending log records to the replica.

        Runs on the pair's dedicated replication session so the apply
        I/O queues behind the replica's other work without dragging any
        client cursor forward.  Returns the number of records applied."""
        pending = self.log.records_from(self.applier.watermark + 1)
        if limit is not None:
            pending = pending[:limit]
        if not pending:
            return 0
        replica = self.replica
        session = self.repl_session
        if session.now_us < replica.clock.now_us:
            session.now_us = replica.clock.now_us
        applied = 0
        replica._session = session
        try:
            for record in pending:
                if self.applier.apply(replica, record):
                    applied += 1
        finally:
            replica._session = None
        return applied
