"""One shard of the cluster: a primary plus R replica devices.

A :class:`ShardGroup` owns ``1 + R`` event-driven
:class:`~repro.ssd.device.Ssd` devices plus the host-side state that
makes them one shard: the key->LPN directory (the tier's metadata
service — it survives device kills), an LPN allocator over the
primary's logical space, the group's
:class:`~repro.cluster.replication.ReplicationLog`, one
:class:`~repro.cluster.replication.LogApplier` per replica, and a
:class:`~repro.host.resilience.ShareGuard` wrapping every primary
command in the PR 4 retry/breaker policy.

Write path: reserve an LPN, write the primary through the guard, commit
the directory entry, append the mutation to the replication log, then
synchronously drive the ``write_quorum - 1`` most-caught-up replicas to
the record's sequence — *then* ack.  With ``write_quorum=1`` (the PR 8
shape) replicas lag behind on purpose and :meth:`pump_replication`
applies the backlog in batches on dedicated replication sessions, so
background applies never advance foreground client cursors.

Read path: a replica may serve a read when its applied watermark covers
both the *reader's* last acked sequence on this shard (read-your-writes,
enforced by the router's per-client watermark) and the sequence that
*created* the key's current directory entry.  The entry fence matters
because LPNs are recycled: without it a lagging replica could return a
deleted key's stale payload for a fresh key that re-used its LPN.

Backpressure: before each command the group bounds the target device's
in-flight queue at ``queue_limit`` tickets, blocking (advancing virtual
time to the next completion) until a slot frees up.

:class:`ShardPair` survives as the two-device special case — same
constructor shape as PR 8, now a thin subclass of :class:`ShardGroup`.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Sequence

from repro.cluster.replication import (REPL_SHARE, REPL_TRIM, REPL_WRITE,
                                       LogApplier, ReplicationLog)
from repro.errors import (ClusterError, DeviceError, MediaError,
                          OutOfSpaceError, ShareError)
from repro.host.resilience import CircuitBreaker, RetryPolicy, ShareGuard
from repro.ssd.ncq import DeviceSession

__all__ = ["ShardGroup", "ShardPair", "Replica", "PairStats", "GroupStats"]

#: Session id reserved for the first replica's apply loop (never a
#: client); further replicas count down from here.
REPL_CLIENT = -1


class Replica:
    """One replica device with its applier and replication session."""

    __slots__ = ("ssd", "applier", "session", "failed")

    def __init__(self, ssd, client: int = REPL_CLIENT) -> None:
        self.ssd = ssd
        self.applier = LogApplier()
        self.session = DeviceSession(client=client)
        #: Dropped from quorum, reads, and pumping after an unrecoverable
        #: device error during apply (or a health-monitor trip).
        self.failed = False

    def __repr__(self) -> str:
        return (f"Replica({self.ssd.name!r}, "
                f"watermark={self.applier.watermark}, "
                f"failed={self.failed})")


class PairStats(NamedTuple):
    """Snapshot of one group's counters (for reports and tests)."""

    writes: int
    reads: int
    shares: int
    deletes: int
    share_fallbacks: int
    backpressure_waits: int
    failovers: int
    repl_lag: int
    epoch: int
    replica_reads: int = 0
    replica_read_fallbacks: int = 0
    quorum_syncs: int = 0
    quorum_degraded: int = 0
    replica_drops: int = 0
    replicas: int = 0
    write_quorum: int = 1


#: The stats tuple outgrew the pair; both names refer to the same shape.
GroupStats = PairStats


class ShardGroup:
    """Primary + R replica devices serving one consistent-hash shard."""

    def __init__(self, name: str, primary, replicas: Sequence = (),
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 queue_limit: Optional[int] = 8,
                 write_quorum: int = 1) -> None:
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1: {queue_limit}")
        if write_quorum < 1:
            raise ValueError(f"write_quorum must be >= 1: {write_quorum}")
        if write_quorum > 1 + len(replicas):
            raise ValueError(
                f"write_quorum {write_quorum} exceeds group size "
                f"{1 + len(replicas)}")
        self.name = name
        self.primary = primary
        self._next_repl_client = REPL_CLIENT
        self.replicas: List[Replica] = []
        for device in replicas:
            self._add_replica(device)
        self.write_quorum = write_quorum
        self.queue_limit = queue_limit
        self.log = ReplicationLog()
        self.directory: Dict[Any, int] = {}
        #: Sequence of the record that created each live directory entry
        #: (the replica-read fence against LPN recycling).
        self._entry_seq: Dict[Any, int] = {}
        #: SHARE provenance: dst_key -> src_key for entries created by a
        #: same-shard SHARE whose source is still live.  Rebalancing uses
        #: it to move snapshot records as remaps instead of full copies.
        self._share_src: Dict[Any, Any] = {}
        devices = [primary] + [rep.ssd for rep in self.replicas]
        self.capacity = min(device.logical_pages for device in devices)
        self._next_lpn = 0
        self._free_lpns: List[int] = []
        self.guard = ShareGuard(primary, engine=f"shard.{name}",
                                policy=policy, breaker=breaker)
        # Role/health flags the router and failover controller maintain.
        self.primary_down = False
        self.needs_promotion = False
        self.failovers = 0
        # Plain counters (readable under NULL_TELEMETRY).
        self.writes = 0
        self.reads = 0
        self.shares = 0
        self.deletes = 0
        self.share_fallbacks = 0
        self.backpressure_waits = 0
        self.replica_reads = 0
        self.replica_read_fallbacks = 0
        self.quorum_syncs = 0
        self.quorum_degraded = 0
        self.replica_drops = 0
        self._read_rr = 0

    def _add_replica(self, device) -> Replica:
        rep = Replica(device, client=self._next_repl_client)
        self._next_repl_client -= 1
        self.replicas.append(rep)
        return rep

    def rejoin(self, device) -> Replica:
        """Re-admit a demoted (or repaired) device as a fresh replica.

        The new replica starts from watermark 0: applying the log from
        seq 1 is idempotent on its media (writes of the same payloads,
        remaps of the same pairs) and closes any post-kill gap."""
        return self._add_replica(device)

    # ------------------------------------------------ pair-era adapters

    @property
    def replica(self):
        """First replica's device (the PR 8 one-replica view)."""
        return self.replicas[0].ssd if self.replicas else None

    @replica.setter
    def replica(self, device) -> None:
        if device is None:
            self.replicas = []
        elif self.replicas:
            self.replicas[0].ssd = device
        else:
            self._add_replica(device)

    @property
    def applier(self) -> Optional[LogApplier]:
        """First replica's applier (the PR 8 one-replica view)."""
        return self.replicas[0].applier if self.replicas else None

    @property
    def repl_session(self) -> Optional[DeviceSession]:
        return self.replicas[0].session if self.replicas else None

    # ---------------------------------------------------------- metadata

    def live_replicas(self) -> List[Replica]:
        return [rep for rep in self.replicas if not rep.failed]

    @property
    def repl_lag(self) -> int:
        """Records acked by the primary but missing on the most-lagged
        live replica (0 with no live replicas: nothing left to drain)."""
        live = self.live_replicas()
        if not live:
            return 0
        tip = self.log.tip
        return tip - min(rep.applier.watermark for rep in live)

    def stats(self) -> PairStats:
        return PairStats(self.writes, self.reads, self.shares, self.deletes,
                         self.share_fallbacks, self.backpressure_waits,
                         self.failovers, self.repl_lag, self.log.epoch,
                         self.replica_reads, self.replica_read_fallbacks,
                         self.quorum_syncs, self.quorum_degraded,
                         self.replica_drops, len(self.replicas),
                         self.write_quorum)

    def mark_replica_failed(self, device_name: str) -> bool:
        """Drop the named replica from quorum/read/pump rotation."""
        for rep in self.replicas:
            if rep.ssd.name == device_name and not rep.failed:
                rep.failed = True
                self.replica_drops += 1
                return True
        return False

    def _reserve_lpn(self, key):
        """Pick an LPN for ``key`` without committing it yet."""
        lpn = self.directory.get(key)
        if lpn is not None:
            return lpn, False
        if self._free_lpns:
            return self._free_lpns[-1], True
        if self._next_lpn >= self.capacity:
            raise ClusterError(
                f"shard {self.name!r} is full ({self.capacity} keys)")
        return self._next_lpn, True

    def _commit_lpn(self, key, lpn: int, fresh: bool) -> None:
        """Commit a reservation once the device write succeeded."""
        if not fresh:
            return
        if self._free_lpns and self._free_lpns[-1] == lpn:
            self._free_lpns.pop()
        else:
            self._next_lpn += 1
        self.directory[key] = lpn

    # ------------------------------------------------------- client ops

    def _backpressure(self, ssd) -> None:
        limit = self.queue_limit
        if limit is None:
            return
        inflight = ssd._inflight
        while len(inflight) >= limit:
            self.backpressure_waits += 1
            ssd.events.run_until(inflight[0][0])

    def _guarded(self, label: str, ssd, session, fn):
        """Run a device op through the guard with a session attached."""
        def attempt():
            if session is not None:
                ssd._session = session
            try:
                return fn()
            finally:
                if session is not None:
                    ssd._session = None
        return self.guard.call(label, attempt)

    def put(self, key, value, session: Optional[DeviceSession] = None):
        """Durably write ``key`` and append the replication record.

        Returns the appended :class:`ReplRecord`; its return *is* the
        ack — the write is on the primary's media, in the durable log,
        and (with ``write_quorum`` > 1) applied on a write quorum of
        replicas, so a single-device kill at any later instant cannot
        lose it."""
        ssd = self.primary
        self._backpressure(ssd)
        lpn, fresh = self._reserve_lpn(key)
        self._guarded("cluster.put", ssd, session,
                      lambda: ssd.write(lpn, value))
        self._commit_lpn(key, lpn, fresh)
        record = self.log.append(REPL_WRITE, key, lpn, value)
        if fresh:
            self._entry_seq[key] = record.seq
        self._share_src.pop(key, None)
        self._await_quorum(record.seq)
        self.writes += 1
        return record

    def get(self, key, session: Optional[DeviceSession] = None,
            min_seq: int = 0, allow_replica: bool = True):
        """Read ``key`` (None when absent).

        A replica serves the read when one has applied both ``min_seq``
        (the caller's read-your-writes watermark) and the sequence that
        created the key's directory entry; otherwise — or when the
        replica read itself fails at the device — the primary serves it
        through the guard."""
        lpn = self.directory.get(key)
        if lpn is None:
            return None
        if allow_replica and self.replicas:
            rep = self._pick_replica(key, min_seq)
            if rep is not None:
                try:
                    value = self._replica_read(rep, lpn, session)
                except DeviceError:
                    self.replica_read_fallbacks += 1
                else:
                    self.replica_reads += 1
                    self.reads += 1
                    return value
        ssd = self.primary
        self._backpressure(ssd)
        value = self._guarded("cluster.get", ssd, session,
                              lambda: ssd.read(lpn))
        self.reads += 1
        return value

    def _pick_replica(self, key, min_seq: int) -> Optional[Replica]:
        """Round-robin over replicas eligible to serve ``key``."""
        need = min_seq
        entry = self._entry_seq.get(key, 0)
        if entry > need:
            need = entry
        count = len(self.replicas)
        for offset in range(count):
            rep = self.replicas[(self._read_rr + offset) % count]
            if rep.failed or rep.applier.watermark < need:
                continue
            self._read_rr = (self._read_rr + offset + 1) % count
            return rep
        return None

    def _replica_read(self, rep: Replica, lpn: int, session):
        ssd = rep.ssd
        self._backpressure(ssd)
        if session is None:
            return ssd.read(lpn)
        ssd._session = session
        try:
            return ssd.read(lpn)
        finally:
            ssd._session = None

    def share(self, dst_key, src_key,
              session: Optional[DeviceSession] = None):
        """SHARE-remap ``dst_key`` onto ``src_key``'s physical page.

        The mapping-only copy from the paper, lifted to the KV tier.
        Degrades to read+write when the primary's reverse map refuses
        the remap; either way the replication record carries the source
        payload so the replica can make the same choice independently.
        Returns the appended record."""
        src_lpn = self.directory.get(src_key)
        if src_lpn is None:
            raise ClusterError(
                f"share source {src_key!r} not present on shard "
                f"{self.name!r}")
        ssd = self.primary
        self._backpressure(ssd)
        value = self._guarded("cluster.share.read", ssd, session,
                              lambda: ssd.read(src_lpn))
        lpn, fresh = self._reserve_lpn(dst_key)

        def do_share():
            try:
                ssd.share(lpn, src_lpn)
            except ShareError:
                self.share_fallbacks += 1
                ssd.write(lpn, value)
        self._guarded("cluster.share", ssd, session, do_share)
        self._commit_lpn(dst_key, lpn, fresh)
        record = self.log.append(REPL_SHARE, dst_key, lpn, value,
                                 src_lpn=src_lpn)
        if fresh:
            self._entry_seq[dst_key] = record.seq
        self._share_src[dst_key] = src_key
        self._await_quorum(record.seq)
        self.shares += 1
        return record

    def delete(self, key, session: Optional[DeviceSession] = None):
        """Trim ``key``; returns the record, or None when absent."""
        lpn = self.directory.get(key)
        if lpn is None:
            return None
        ssd = self.primary
        self._backpressure(ssd)
        self._guarded("cluster.delete", ssd, session,
                      lambda: ssd.trim(lpn))
        del self.directory[key]
        self._entry_seq.pop(key, None)
        self._share_src.pop(key, None)
        self._free_lpns.append(lpn)
        record = self.log.append(REPL_TRIM, key, lpn)
        self._await_quorum(record.seq)
        self.deletes += 1
        return record

    # ------------------------------------------------------- replication

    def _apply_to(self, rep: Replica, upto: Optional[int] = None,
                  budget: Optional[int] = None) -> int:
        """Apply pending records to one replica, strictly in order.

        ``upto`` bounds the target sequence (defaults to the log tip),
        ``budget`` bounds how many records this call applies.  A device
        error mid-apply marks the replica failed and drops it from the
        rotation — the applier watermark stays truthful, so a later
        repair could resume exactly where it stopped."""
        log = self.log
        tip = log.tip if upto is None else min(upto, log.tip)
        applied = 0
        ssd = rep.ssd
        session = rep.session
        if session.now_us < ssd.clock.now_us:
            session.now_us = ssd.clock.now_us
        applier = rep.applier
        while applier.watermark < tip:
            if budget is not None and applied >= budget:
                break
            record = log.record_at(applier.watermark + 1)
            ssd._session = session
            try:
                done = applier.apply(ssd, record)
            except (MediaError, OutOfSpaceError):
                # The replica's media is giving out: drop it from the
                # rotation rather than burn its remaining spares.
                rep.failed = True
                self.replica_drops += 1
                break
            except DeviceError:
                # Transient (busy/timeout): stop this batch, retry at
                # the next pump with the replica still in rotation.
                break
            finally:
                ssd._session = None
            if done:
                applied += 1
        return applied

    def _await_quorum(self, seq: int) -> None:
        """Block the ack until ``write_quorum`` group members hold the
        record (the primary is vote one).  With too few live replicas
        the group degrades to primary-only acks — availability over
        quorum — and counts the episode."""
        need = self.write_quorum - 1
        if need <= 0:
            return
        satisfied = 0
        live = sorted(self.live_replicas(),
                      key=lambda rep: -rep.applier.watermark)
        for rep in live:
            if satisfied >= need:
                break
            if rep.applier.watermark < seq:
                self.quorum_syncs += 1
                self._apply_to(rep, upto=seq)
            if rep.applier.watermark >= seq:
                satisfied += 1
        if satisfied < need:
            self.quorum_degraded += 1

    def pump_replication(self, limit: Optional[int] = None) -> int:
        """Apply up to ``limit`` pending log records across replicas.

        Runs on each replica's dedicated replication session so the
        apply I/O queues behind the replica's other work without
        dragging any client cursor forward.  The most-lagged replica
        drains first.  Returns the number of records applied."""
        live = self.live_replicas()
        if not live:
            return 0
        live.sort(key=lambda rep: rep.applier.watermark)
        applied = 0
        remaining = limit
        for rep in live:
            count = self._apply_to(rep, budget=remaining)
            applied += count
            if remaining is not None:
                remaining -= count
                if remaining <= 0:
                    break
        return applied


class ShardPair(ShardGroup):
    """Primary + one replica: the PR 8 construction shape, unchanged."""

    def __init__(self, name: str, primary, replica,
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 queue_limit: Optional[int] = 8,
                 write_quorum: int = 1) -> None:
        replicas = () if replica is None else (replica,)
        super().__init__(name, primary, replicas, policy=policy,
                         breaker=breaker, queue_limit=queue_limit,
                         write_quorum=write_quorum)
