"""Delta-log replication between the two devices of a shard pair.

The unit of replication is the same thing the FTL journals in its delta
log (PR 2): a small record describing one logical mutation — a write, a
SHARE remap, or a trim.  The primary acks a client write as soon as the
mutation is durable locally *and* appended to the pair's
:class:`ReplicationLog`; the replica applies records strictly in
sequence later (asynchronously, pumped in batches by the driver).

Epoch fencing makes failover safe: every promotion bumps the log's
epoch, and both :meth:`ReplicationLog.append_record` and
:meth:`LogApplier.apply` refuse records from a superseded epoch with
:class:`~repro.errors.StaleEpochError`.  A demoted primary that wakes up
holding pre-failover records cannot push them into the log, and a
lagging replica can never replay a stale remap over post-failover state.

The log models the durable replicated-log service of a production tier
(it survives any single device kill); the devices under it hold the
actual pages.
"""

from __future__ import annotations

from typing import Any, List, NamedTuple, Optional

from repro.errors import ClusterError, ShareError, StaleEpochError

__all__ = [
    "REPL_WRITE",
    "REPL_SHARE",
    "REPL_TRIM",
    "ReplRecord",
    "ReplicationLog",
    "LogApplier",
]

REPL_WRITE = "write"
REPL_SHARE = "share"
REPL_TRIM = "trim"

_KINDS = (REPL_WRITE, REPL_SHARE, REPL_TRIM)


class ReplRecord(NamedTuple):
    """One replicated mutation, in delta-log shape."""

    epoch: int
    seq: int
    kind: str
    key: Any
    lpn: int
    #: Payload for writes; for SHARE records the *source* payload so an
    #: applier can degrade to read-modify-write when the replica's
    #: reverse-map refuses the remap.
    value: Any = None
    src_lpn: Optional[int] = None


class ReplicationLog:
    """Ordered, epoch-fenced mutation log of one shard pair."""

    def __init__(self) -> None:
        self._records: List[ReplRecord] = []
        self.epoch = 0
        self.next_seq = 1

    @property
    def tip(self) -> int:
        """Sequence number of the newest record (0 when empty)."""
        return self.next_seq - 1

    def __len__(self) -> int:
        return len(self._records)

    def append(self, kind: str, key, lpn: int, value=None,
               src_lpn: Optional[int] = None) -> ReplRecord:
        """Append a mutation under the current epoch and return it."""
        if kind not in _KINDS:
            raise ValueError(f"unknown replication kind: {kind!r}")
        record = ReplRecord(self.epoch, self.next_seq, kind, key, lpn,
                            value, src_lpn)
        self._records.append(record)
        self.next_seq += 1
        return record

    def append_record(self, record: ReplRecord) -> None:
        """Append a pre-built record, fencing stale writers.

        A record stamped with a superseded epoch is refused with
        :class:`StaleEpochError`; a sequence gap is a programming error
        and raises :class:`ClusterError`."""
        if record.epoch != self.epoch:
            raise StaleEpochError(
                f"record epoch {record.epoch} != log epoch {self.epoch} "
                f"(seq {record.seq}): writer was demoted")
        if record.seq != self.next_seq:
            raise ClusterError(
                f"non-contiguous append: seq {record.seq}, expected "
                f"{self.next_seq}")
        self._records.append(record)
        self.next_seq += 1

    def bump_epoch(self) -> int:
        """Fence the old primary at promotion; returns the new epoch."""
        self.epoch += 1
        return self.epoch

    def records_from(self, seq: int) -> List[ReplRecord]:
        """All records with sequence >= ``seq`` (1-based, contiguous)."""
        if seq < 1:
            raise ValueError(f"seq must be >= 1: {seq}")
        return self._records[seq - 1:]

    def record_at(self, seq: int) -> ReplRecord:
        """The record with sequence ``seq`` — O(1), no tail copy.

        Appliers stepping one record at a time (quorum waits, budgeted
        round-robin pumping) use this instead of slicing the tail."""
        if not 1 <= seq <= self.tip:
            raise ValueError(f"seq {seq} outside log [1, {self.tip}]")
        return self._records[seq - 1]


class LogApplier:
    """Applies a pair's log onto one device, strictly in order.

    Tracks ``(epoch, watermark)``: every record with ``seq <=
    watermark`` has been applied.  Both the replica's background apply
    loop and the promotion-time tail replay go through here, so the
    in-order / no-stale-epoch discipline is enforced on every path.
    """

    def __init__(self) -> None:
        self.epoch = 0
        self.watermark = 0
        self.applied = 0
        #: SHARE remaps the replica had to degrade to plain writes
        #: (reverse-map refusal on the replica device).
        self.share_fallbacks = 0

    def apply(self, ssd, record: ReplRecord) -> bool:
        """Apply one record to ``ssd``.

        Returns False for an already-applied record (idempotent skip),
        True once applied.  Raises :class:`StaleEpochError` for a record
        from a superseded epoch and :class:`ClusterError` for a sequence
        gap — an applier never guesses around missing records."""
        if record.epoch < self.epoch:
            raise StaleEpochError(
                f"stale record epoch {record.epoch} < applier epoch "
                f"{self.epoch} (seq {record.seq})")
        if record.seq <= self.watermark:
            return False
        if record.seq != self.watermark + 1:
            raise ClusterError(
                f"apply gap: record seq {record.seq}, watermark "
                f"{self.watermark}")
        if record.kind == REPL_WRITE:
            ssd.write(record.lpn, record.value)
        elif record.kind == REPL_SHARE:
            try:
                ssd.share(record.lpn, record.src_lpn)
            except ShareError:
                # The replica's reverse-map may be shaped differently
                # (independent GC history); the record carries the
                # source payload exactly for this degradation.
                self.share_fallbacks += 1
                ssd.write(record.lpn, record.value)
        elif record.kind == REPL_TRIM:
            ssd.trim(record.lpn)
        else:
            raise ClusterError(f"unknown record kind: {record.kind!r}")
        self.epoch = record.epoch
        self.watermark = record.seq
        self.applied += 1
        return True
