"""Media-health scoring: proactive failover before a device dies.

A flash device rarely fails all at once — it *degrades*: program
failures retire blocks, retirements burn spares, worn pages need
read-retry, and eventually reads go uncorrectable.  All of that is
visible in the PR 3 ``media.*`` counters long before a command actually
errors back to the host.  The :class:`MediaHealthMonitor` watches each
shard primary's :meth:`~repro.ssd.device.Ssd.media_report` deltas,
folds them into a weighted health score, and when the score crosses the
trip threshold latches the group's :class:`CircuitBreaker` open via
``force_open`` — the same edge a kill produces — so the existing
breaker listener marks the group for promotion and the router promotes
a healthy replica at the next operation boundary.

The promotion this produces is *proactive*: the sick primary is still
serving (``primary_down`` is False), no client has seen an error, and
the :class:`~repro.cluster.failover.FailoverEvent` records
``proactive=True``.  The demoted device rejoins as a replica; the
router marks it failed so replication stops burning its remaining
spares (a real tier would re-replicate onto a fresh device).

Scores are computed from *deltas against the first observation* of each
device, so a device with historical wear is not punished for its past —
only for degradation that happens on this monitor's watch.
"""

from __future__ import annotations

from typing import Dict, Set

__all__ = ["MediaHealthMonitor", "DEFAULT_WEIGHTS"]

#: Weight per media_report counter delta.  Program/erase failures and
#: grown-bad blocks dominate: they are the irreversible escalation.
#: Read-retry noise contributes but cannot trip the breaker alone.
DEFAULT_WEIGHTS: Dict[str, int] = {
    "program_fails": 3,
    "erase_fails": 3,
    "uncorrectable_reads": 2,
    "grown_bad_blocks": 4,
    "read_relocations": 1,
}


class MediaHealthMonitor:
    """Per-shard media health scores with breaker-trip escalation.

    ``observe(group)`` is called by the router once per acknowledged
    write; every ``check_every``-th call per group it snapshots the
    primary's media report and scores the delta.  Crossing ``threshold``
    — or exhausting a spare pool that existed at baseline — latches the
    group's breaker open exactly once per device.
    """

    def __init__(self, threshold: int = 8, check_every: int = 4,
                 weights: Dict[str, int] = DEFAULT_WEIGHTS) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1: {check_every}")
        self.threshold = threshold
        self.check_every = check_every
        self.weights = dict(weights)
        self.trips = 0
        #: Device names whose degradation tripped a breaker.  A tripped
        #: device never re-trips (it was already demoted once; the
        #: router keeps it out of the replica rotation).
        self.tripped: Set[str] = set()
        self._acks: Dict[str, int] = {}
        self._baseline: Dict[str, Dict[str, int]] = {}

    def score(self, ssd) -> int:
        """Weighted degradation since this device's first observation."""
        report = ssd.media_report()
        base = self._baseline.setdefault(ssd.name, dict(report))
        total = 0
        for counter, weight in self.weights.items():
            delta = report.get(counter, 0) - base.get(counter, 0)
            if delta > 0:
                total += weight * delta
        # Spare exhaustion is terminal regardless of how gently the
        # device got there: the next retirement has nowhere to go.
        if base.get("spare_pool", 0) > 0 and report.get("spare_pool", 0) == 0:
            total += self.threshold
        return total

    def observe(self, group) -> bool:
        """Score ``group``'s primary; returns True when this call
        tripped the breaker (the router counts the trip and the
        promotion happens at the next op boundary)."""
        primary = group.primary
        if primary.name in self.tripped:
            return False
        if group.primary_down or group.needs_promotion:
            return False
        count = self._acks.get(group.name, 0) + 1
        self._acks[group.name] = count
        if count % self.check_every:
            return False
        if self.score(primary) < self.threshold:
            return False
        self.tripped.add(primary.name)
        self.trips += 1
        # force_open -> BREAKER_OPEN -> controller listener marks
        # needs_promotion; the router promotes at an op boundary.
        group.guard.breaker.force_open()
        return True
