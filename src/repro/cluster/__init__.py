"""Sharded multi-device tier: router, replication, failover.

Composes the PR 4 resilience primitives (retry, breaker, guard) and the
PR 5 event-driven devices into a front-end over M shard pairs —
consistent-hash placement, bounded per-shard queues, asynchronous
delta-log replication to a peer device, and breaker-driven promotion
with epoch fencing.  The crashcheck side (``repro.crashcheck.cluster``)
verifies the tier's one promise: no acked write is ever lost to a
single-shard kill.
"""

from repro.cluster.failover import FailoverController, FailoverEvent
from repro.cluster.hashring import HashRing, fnv1a64
from repro.cluster.replication import (REPL_SHARE, REPL_TRIM, REPL_WRITE,
                                       LogApplier, ReplicationLog,
                                       ReplRecord)
from repro.cluster.router import ClusterStats, ShardRouter
from repro.cluster.shard import PairStats, ShardPair

__all__ = [
    "HashRing",
    "fnv1a64",
    "ReplRecord",
    "ReplicationLog",
    "LogApplier",
    "REPL_WRITE",
    "REPL_SHARE",
    "REPL_TRIM",
    "ShardPair",
    "PairStats",
    "FailoverController",
    "FailoverEvent",
    "ShardRouter",
    "ClusterStats",
]
