"""Sharded multi-device tier: router, replication, failover, rebalance.

Composes the PR 4 resilience primitives (retry, breaker, guard) and the
PR 5 event-driven devices into a front-end over M shard groups —
consistent-hash placement, bounded per-shard queues, delta-log
replication to R peer devices with configurable write quorums,
read-your-writes replica reads, breaker-driven promotion with epoch
fencing (kill-driven or proactive via media-health scoring), and live
ring rebalancing.  The crashcheck side (``repro.crashcheck.cluster``)
verifies the tier's promises: no acked write is ever lost to a
single-shard kill or media storm, reads honor read-your-writes, and
replicas converge after quiescence.
"""

from repro.cluster.failover import FailoverController, FailoverEvent
from repro.cluster.hashring import HashRing, fnv1a64
from repro.cluster.health import MediaHealthMonitor
from repro.cluster.rebalance import MigrationState, Rebalancer
from repro.cluster.replication import (REPL_SHARE, REPL_TRIM, REPL_WRITE,
                                       LogApplier, ReplicationLog,
                                       ReplRecord)
from repro.cluster.router import ClusterStats, ShardRouter
from repro.cluster.shard import (GroupStats, PairStats, Replica, ShardGroup,
                                 ShardPair)

__all__ = [
    "HashRing",
    "fnv1a64",
    "ReplRecord",
    "ReplicationLog",
    "LogApplier",
    "REPL_WRITE",
    "REPL_SHARE",
    "REPL_TRIM",
    "ShardGroup",
    "ShardPair",
    "Replica",
    "PairStats",
    "GroupStats",
    "FailoverController",
    "FailoverEvent",
    "MediaHealthMonitor",
    "MigrationState",
    "Rebalancer",
    "ShardRouter",
    "ClusterStats",
]
