"""Custom parameter sweeps with CSV output.

The canned experiments regenerate the paper's exact figures; this CLI
lets a researcher sweep any axis and get machine-readable rows::

    python -m repro.bench.sweeps ycsb --workload F --batches 1,8,64 \
        --records 4000 --ops 4000
    python -m repro.bench.sweeps linkbench --buffers 50,100,150 \
        --nodes 4000 --transactions 6000 --csv out.csv
    python -m repro.bench.sweeps microbench --patterns randwrite,share

Each row carries the swept parameters plus throughput and the device
counters, so the output drops straight into pandas/gnuplot.
"""

from __future__ import annotations

import argparse
import csv
import io
import sys
from typing import Dict, List, Optional

from repro.bench.experiments import _estimate_db_pages
from repro.bench.harness import (
    buffer_pages_for,
    build_couch_stack,
    build_innodb_stack,
)
from repro.couchstore.engine import CommitMode
from repro.innodb.engine import FlushMode
from repro.workloads.linkbench import LinkBenchConfig, LinkBenchDriver
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, YcsbWorkload


def sweep_ycsb(workload: YcsbWorkload, batches: List[int], records: int,
               operations: int, modes: List[CommitMode]) -> List[Dict]:
    """One row per (mode, batch size)."""
    rows: List[Dict] = []
    for mode in modes:
        stack = build_couch_stack(mode, records,
                                  operations * max(1, len(batches)))
        driver = YcsbDriver(stack.store, stack.clock,
                            YcsbConfig(record_count=records))
        driver.load()
        for batch in batches:
            stack.ssd.reset_measurement()
            stack.clock.reset()
            result = driver.run(workload, operations, batch_size=batch)
            stats = stack.ssd.stats
            rows.append({
                "mode": mode.value,
                "batch_size": batch,
                "throughput_ops": round(result.throughput_ops, 2),
                "written_pages": stats.host_write_pages,
                "read_pages": stats.host_read_pages,
                "share_pairs": stats.share_pairs,
                "gc_events": stats.gc_events,
            })
    return rows


def sweep_linkbench(buffers_mib: List[int], nodes: int, transactions: int,
                    modes: List[FlushMode], page_size: int = 4096) -> List[Dict]:
    """One row per (mode, paper-buffer-size)."""
    rows: List[Dict] = []
    db_pages = _estimate_db_pages(nodes, 32)
    for mode in modes:
        for buffer_mib in buffers_mib:
            stack = build_innodb_stack(
                mode, page_size,
                buffer_pages_for(buffer_mib, db_pages, page_size), db_pages)
            driver = LinkBenchDriver(stack.engine, stack.clock,
                                     LinkBenchConfig(node_count=nodes))
            driver.load()
            driver.run(max(200, transactions // 8))
            stack.data_ssd.reset_measurement()
            stack.clock.reset()
            result = driver.run(transactions)
            stats = stack.data_ssd.stats
            rows.append({
                "mode": mode.value,
                "buffer_mib": buffer_mib,
                "throughput_tps": round(result.throughput_tps, 2),
                "host_writes": stats.host_write_pages,
                "gc_events": stats.gc_events,
                "copybacks": stats.copyback_pages,
                "waf": round(stats.write_amplification, 3),
            })
    return rows


def sweep_microbench(patterns: List[str], ops: int,
                     utilizations: List[float]) -> List[Dict]:
    """One row per (pattern, utilization)."""
    from repro.tools.microbench import run_microbench
    rows: List[Dict] = []
    for pattern in patterns:
        for utilization in utilizations:
            result = run_microbench(pattern, ops=ops,
                                    utilization=utilization)
            rows.append({
                "pattern": pattern,
                "utilization": utilization,
                "iops": round(result.iops, 1),
                "bandwidth_mib_s": round(result.bandwidth_mib_s, 2),
                "waf": round(result.waf, 3),
                "gc_events": result.gc_events,
            })
    return rows


def write_csv(rows: List[Dict], out) -> None:
    if not rows:
        raise ValueError("sweep produced no rows")
    writer = csv.DictWriter(out, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)


def _ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("target", choices=["ycsb", "linkbench", "microbench"])
    parser.add_argument("--csv", default=None,
                        help="write rows to this file (default: stdout)")
    # ycsb
    parser.add_argument("--workload", default="F",
                        choices=[w.name for w in YcsbWorkload])
    parser.add_argument("--batches", default="1,16,256")
    parser.add_argument("--records", type=int, default=4000)
    parser.add_argument("--ops", type=int, default=4000)
    parser.add_argument("--couch-modes", default="original,share")
    # linkbench
    parser.add_argument("--buffers", default="50,100,150")
    parser.add_argument("--nodes", type=int, default=4000)
    parser.add_argument("--transactions", type=int, default=6000)
    parser.add_argument("--innodb-modes", default="dwb_on,share")
    # microbench
    parser.add_argument("--patterns", default="randwrite,randread")
    parser.add_argument("--utilizations", default="0.5,0.8")
    args = parser.parse_args(argv)

    if args.target == "ycsb":
        rows = sweep_ycsb(
            YcsbWorkload[args.workload], _ints(args.batches), args.records,
            args.ops,
            [CommitMode(m) for m in args.couch_modes.split(",")])
    elif args.target == "linkbench":
        rows = sweep_linkbench(
            _ints(args.buffers), args.nodes, args.transactions,
            [FlushMode(m) for m in args.innodb_modes.split(",")])
    else:
        rows = sweep_microbench(args.patterns.split(","), args.ops,
                                _floats(args.utilizations))

    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            write_csv(rows, handle)
        print(f"wrote {len(rows)} rows to {args.csv}")
    else:
        buffer = io.StringIO()
        write_csv(rows, buffer)
        sys.stdout.write(buffer.getvalue())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
