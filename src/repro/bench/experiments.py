"""One function per table/figure of the paper's evaluation (Section 5).

Each function runs the scaled experiment and returns a plain dict of the
numbers; ``print_*`` renders them in the paper's row/series format.  The
per-experiment index in DESIGN.md maps each function to the paper artifact
it regenerates; EXPERIMENTS.md records paper-vs-measured.

Run everything from the command line::

    python -m repro.bench.experiments            # QUICK scale
    python -m repro.bench.experiments --scale tiny
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import (
    SCALES,
    Scale,
    ScaleParams,
    buffer_pages_for,
    build_couch_stack,
    build_innodb_stack,
    build_postgres_stack,
)
from repro.bench.report import format_series, format_table
from repro.couchstore.compaction import compact
from repro.couchstore.engine import CommitMode
from repro.innodb.engine import FlushMode
from repro.workloads.linkbench import LinkBenchConfig, LinkBenchDriver
from repro.workloads.pgbench import PgBenchConfig, run_pgbench, setup_pgbench
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, YcsbWorkload

MIB = 1024 * 1024

#: Buffer-pool sizes of Figure 5(b)/6 in the paper's MiB.
PAPER_BUFFER_SWEEP_MIB = (50, 75, 100, 125, 150)
PAPER_PAGE_SIZES = (4096, 8192, 16384)
PAPER_BATCH_SIZES = (1, 4, 16, 64, 256)


def _estimate_db_pages(nodes: int, leaf_capacity: int) -> int:
    """Analytic size of the loaded LinkBench database in pages: node,
    link (mean out-degree 5), and count trees.  Random-order inserts leave
    leaves roughly half full, hence the ~2.1 split-overhead factor
    (calibrated against measured post-load footprints)."""
    entries = nodes * (1 + 5 + 2)
    return max(256, int(entries / leaf_capacity * 2.1))


# --------------------------------------------------------------------------
# LinkBench cells (Figures 5, 6; Table 1)
# --------------------------------------------------------------------------

#: The paper ran 16 concurrent LinkBench client threads.
LINKBENCH_CLIENTS = 16


def run_linkbench_cell(mode: FlushMode, page_size: int,
                       paper_buffer_mib: int, params: ScaleParams,
                       collect_latencies: bool = False,
                       concurrency: int = LINKBENCH_CLIENTS,
                       telemetry=None,
                       force_fallback: bool = False,
                       queue_depth: int = 1,
                       channel_count: Optional[int] = None) -> Dict:
    """One (mode, page size, buffer size) cell of the MySQL experiments.

    With ``telemetry`` the whole stack is instrumented: spans and metric
    snapshots go to the telemetry's sink, warm-up is excluded via
    pause/resume, and the measured run's per-operation latencies land in
    ``linkbench.op.<op>.latency_ms`` histograms.

    ``force_fallback`` latches the SHARE circuit breaker open before the
    run, so every flush is served by the classic two-phase fallback —
    the degraded-mode cost the resilience benchmarks measure."""
    leaf_capacity = max(8, 32 * (page_size // 4096))
    db_pages = _estimate_db_pages(params.linkbench_nodes, leaf_capacity)
    buffer_pages = buffer_pages_for(paper_buffer_mib, db_pages, page_size)
    stack = build_innodb_stack(mode, page_size, buffer_pages, db_pages,
                               telemetry=telemetry,
                               queue_depth=queue_depth,
                               channel_count=channel_count)
    if force_fallback:
        stack.engine.dwb.resilience.breaker.force_open()
    tel = stack.data_ssd.telemetry
    driver = LinkBenchDriver(
        stack.engine, stack.clock,
        LinkBenchConfig(node_count=params.linkbench_nodes))
    tel.pause()  # exclude load + warm-up from spans and snapshots
    driver.load()
    # Warm-up (the paper's 300 s pre-run), then measure from zero.
    driver.run(max(500, params.linkbench_transactions // 8))
    stack.data_ssd.reset_measurement()
    stack.log_ssd.reset_measurement()
    stack.clock.reset()
    tel.resume()
    tel.reset_measurement()
    result = driver.run(params.linkbench_transactions,
                        concurrency=concurrency)
    stats = stack.data_ssd.stats
    if telemetry is not None:
        for op in result.latencies.op_names():
            hist = telemetry.metrics.histogram(
                f"linkbench.op.{op}.latency_ms")
            for sample in result.latencies.histogram(op)._samples:
                hist.record(sample)
        telemetry.snapshot(stack.clock.now_us)
    cell = {
        "mode": mode.value,
        "page_size": page_size,
        "paper_buffer_mib": paper_buffer_mib,
        "buffer_pages": buffer_pages,
        "throughput_tps": result.throughput_tps,
        "host_write_pages": stats.host_write_pages,
        "host_read_pages": stats.host_read_pages,
        "gc_events": stats.gc_events,
        "copyback_pages": stats.copyback_pages,
        "share_pairs": stats.share_pairs,
        "write_amplification": stats.write_amplification,
        "max_erase": stack.data_ssd.nand.max_erase_count,
        "resilience_fallbacks": stack.engine.dwb.resilience.stats.fallbacks,
        "queue_depth": queue_depth,
        "channel_count": stack.data_ssd.channels.channel_count,
        "data_queue_report": stack.data_ssd.queue_report(),
    }
    if collect_latencies:
        cell["latency_table"] = result.latencies.table()
    return cell


def linkbench_telemetry(scale: Scale = Scale.QUICK,
                        mode: FlushMode = FlushMode.SHARE,
                        jsonl_path: str = "results/linkbench_telemetry.jsonl",
                        snapshot_interval_us: int = 1_000_000,
                        queue_depth: int = 1,
                        channel_count: Optional[int] = None) -> Dict:
    """One fully instrumented LinkBench cell: runs (mode, 4 KiB, 50 MB)
    with a JSONL sink and returns the cell dict plus the artifact path.

    Render the artifact with ``python -m repro.tools.report <path>``.
    """
    import os

    from repro.obs import JsonlSink, Telemetry

    directory = os.path.dirname(jsonl_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    telemetry = Telemetry(JsonlSink(jsonl_path),
                          snapshot_interval_us=snapshot_interval_us)
    try:
        cell = run_linkbench_cell(mode, 4096, 50, SCALES[scale],
                                  collect_latencies=True,
                                  telemetry=telemetry,
                                  queue_depth=queue_depth,
                                  channel_count=channel_count)
    finally:
        telemetry.close()
    cell["jsonl_path"] = jsonl_path
    return cell


def fig5a(scale: Scale = Scale.QUICK,
          modes=(FlushMode.DWB_ON, FlushMode.SHARE)) -> Dict:
    """Figure 5(a): LinkBench throughput vs page size (50 MB buffer)."""
    params = SCALES[scale]
    cells = {}
    for page_size in PAPER_PAGE_SIZES:
        for mode in modes:
            cells[(page_size, mode.value)] = run_linkbench_cell(
                mode, page_size, 50, params)
    return {"experiment": "fig5a", "scale": scale.value, "cells": cells}


def fig5b(scale: Scale = Scale.QUICK,
          modes=(FlushMode.DWB_ON, FlushMode.SHARE),
          buffers=PAPER_BUFFER_SWEEP_MIB) -> Dict:
    """Figure 5(b): LinkBench throughput vs buffer-pool size (4 KiB
    pages).  The same runs also provide Figure 6's I/O counters."""
    params = SCALES[scale]
    cells = {}
    for buffer_mib in buffers:
        for mode in modes:
            cells[(buffer_mib, mode.value)] = run_linkbench_cell(
                mode, 4096, buffer_mib, params)
    return {"experiment": "fig5b", "scale": scale.value, "cells": cells}


def fig6(scale: Scale = Scale.QUICK,
         fig5b_result: Optional[Dict] = None) -> Dict:
    """Figure 6: host page writes (a), GC events (b), copyback pages (c),
    per buffer size.  Reuses Figure 5(b)'s runs when given."""
    base = fig5b_result or fig5b(scale)
    cells = base["cells"]
    out = {"experiment": "fig6", "scale": base["scale"], "rows": []}
    for (buffer_mib, mode) in sorted(cells):
        cell = cells[(buffer_mib, mode)]
        out["rows"].append({
            "paper_buffer_mib": buffer_mib,
            "mode": mode,
            "host_write_pages": cell["host_write_pages"],
            "gc_events": cell["gc_events"],
            "copyback_pages": cell["copyback_pages"],
        })
    return out


def table1(scale: Scale = Scale.QUICK) -> Dict:
    """Table 1: per-operation latency distribution, DWB-On vs SHARE
    (50 MB buffer, 4 KiB pages)."""
    params = SCALES[scale]
    cells = {}
    for mode in (FlushMode.DWB_ON, FlushMode.SHARE):
        cells[mode.value] = run_linkbench_cell(
            mode, 4096, 50, params, collect_latencies=True)
    return {"experiment": "table1", "scale": scale.value, "cells": cells}


# --------------------------------------------------------------------------
# YCSB cells (Figures 7, 8; Table 2)
# --------------------------------------------------------------------------

def _run_ycsb_sweep(workload: YcsbWorkload, scale: Scale,
                    batch_sizes=PAPER_BATCH_SIZES,
                    telemetry=None) -> Dict:
    params = SCALES[scale]
    cells = {}
    for mode in (CommitMode.ORIGINAL, CommitMode.SHARE):
        stack = build_couch_stack(mode, params.ycsb_records,
                                  params.ycsb_operations * len(batch_sizes),
                                  telemetry=telemetry)
        tel = stack.ssd.telemetry
        driver = YcsbDriver(stack.store, stack.clock,
                            YcsbConfig(record_count=params.ycsb_records))
        tel.pause()  # the load phase is not part of any cell
        driver.load()
        tel.resume()
        for batch_size in batch_sizes:
            stack.ssd.reset_measurement()
            stack.clock.reset()
            tel.reset_measurement()
            result = driver.run(workload, params.ycsb_operations, batch_size)
            if telemetry is not None:
                telemetry.snapshot(stack.clock.now_us)
            stats = stack.ssd.stats
            cells[(batch_size, mode.value)] = {
                "mode": mode.value,
                "batch_size": batch_size,
                "throughput_ops": result.throughput_ops,
                "written_bytes": stats.host_written_bytes,
                "written_mib": stats.host_written_bytes / MIB,
                "share_pairs": stats.share_pairs,
                "gc_events": stats.gc_events,
                "stale_ratio": stack.store.stale_ratio,
            }
    return {"experiment": f"ycsb-{workload.value}", "scale": scale.value,
            "cells": cells}


def fig7(scale: Scale = Scale.QUICK) -> Dict:
    """Figure 7: YCSB workload-F throughput (a) and written data (b) vs
    batch size, original vs SHARE Couchbase."""
    out = _run_ycsb_sweep(YcsbWorkload.F, scale)
    out["experiment"] = "fig7"
    return out


def fig8(scale: Scale = Scale.QUICK) -> Dict:
    """Figure 8: YCSB workload-A throughput vs batch size."""
    out = _run_ycsb_sweep(YcsbWorkload.A, scale)
    out["experiment"] = "fig8"
    return out


def table2(scale: Scale = Scale.QUICK, update_fraction: float = 1.0) -> Dict:
    """Table 2: compaction elapsed time and written bytes, original vs
    SHARE.  Builds identical aged stores (every record updated once so
    roughly half the file is stale), then compacts."""
    params = SCALES[scale]
    rows = {}
    for mode in (CommitMode.ORIGINAL, CommitMode.SHARE):
        stack = build_couch_stack(mode, params.ycsb_records,
                                  params.ycsb_records * 2)
        driver = YcsbDriver(stack.store, stack.clock,
                            YcsbConfig(record_count=params.ycsb_records))
        driver.load()
        updates = int(params.ycsb_records * update_fraction)
        driver.run(YcsbWorkload.F, updates, batch_size=16)
        store = stack.store
        stack.ssd.reset_measurement()
        stack.clock.reset()
        new_store, result = compact(store, stack.clock)
        rows[mode.value] = {
            "mode": mode.value,
            "elapsed_seconds": result.elapsed_seconds,
            "written_bytes": result.written_bytes,
            "written_mib": result.written_mib,
            "read_mib": result.read_bytes / MIB,
            "docs_moved": result.docs_moved,
            "index_nodes_written": result.index_nodes_written,
            "share_commands": result.share_commands,
            "stale_ratio_before": None,
        }
    return {"experiment": "table2", "scale": scale.value, "rows": rows}


# --------------------------------------------------------------------------
# PostgreSQL full_page_writes (in-text experiment of Section 5.3.1)
# --------------------------------------------------------------------------

def pgbench_fpw(scale: Scale = Scale.QUICK) -> Dict:
    """In-text experiment: pgbench with full_page_writes on vs off."""
    params = SCALES[scale]
    rows = {}
    for fpw in (True, False):
        clock, data_ssd, wal_ssd, engine = build_postgres_stack(
            fpw, params.pgbench_scale)
        config = PgBenchConfig(scale=params.pgbench_scale)
        setup_pgbench(engine, config)
        clock.reset()
        result = run_pgbench(engine, clock, params.pgbench_transactions,
                             config)
        rows["on" if fpw else "off"] = {
            "full_page_writes": fpw,
            "throughput_tps": result.throughput_tps,
            "wal_bytes": result.wal_bytes,
            "wal_mib": result.wal_bytes / MIB,
            "wal_full_page_mib": result.wal_full_page_bytes / MIB,
            "wal_record_mib": result.wal_record_bytes / MIB,
        }
    return {"experiment": "pgbench_fpw", "scale": scale.value, "rows": rows}


# --------------------------------------------------------------------------
# Printing
# --------------------------------------------------------------------------

def print_fig5a(result: Dict) -> str:
    cells = result["cells"]
    page_sizes = sorted({key[0] for key in cells})
    modes = sorted({key[1] for key in cells})
    series = {mode: [cells[(p, mode)]["throughput_tps"]
                     for p in page_sizes] for mode in modes}
    return format_series("Figure 5(a): LinkBench throughput vs page size "
                         "(tx/s)", "page_size", page_sizes, series)


def print_fig5b(result: Dict) -> str:
    cells = result["cells"]
    buffers = sorted({key[0] for key in cells})
    modes = sorted({key[1] for key in cells})
    series = {mode: [cells[(b, mode)]["throughput_tps"]
                     for b in buffers] for mode in modes}
    return format_series("Figure 5(b): LinkBench throughput vs buffer size "
                         "(tx/s)", "buffer_MiB(paper)", buffers, series)


def print_fig6(result: Dict) -> str:
    rows = [[row["paper_buffer_mib"], row["mode"], row["host_write_pages"],
             row["gc_events"], row["copyback_pages"]]
            for row in result["rows"]]
    return format_table(
        ["buffer_MiB", "mode", "host_writes(a)", "gc_events(b)",
         "copybacks(c)"], rows,
        title="Figure 6: IO activities inside the SSD")


def print_table1(result: Dict) -> str:
    blocks = []
    for mode, cell in result["cells"].items():
        table = cell["latency_table"]
        rows = []
        for op in sorted(table):
            summary = table[op]
            rows.append([op, summary["mean"], summary["p25"], summary["p50"],
                         summary["p75"], summary["p99"], summary["max"]])
        blocks.append(format_table(
            ["op", "mean", "P25", "P50", "P75", "P99", "max"], rows,
            title=f"Table 1 ({mode}): LinkBench latency (ms)"))
    return "\n\n".join(blocks)


def print_fig7(result: Dict) -> str:
    cells = result["cells"]
    batches = sorted({key[0] for key in cells})
    modes = sorted({key[1] for key in cells})
    tput = {m: [cells[(b, m)]["throughput_ops"] for b in batches]
            for m in modes}
    written = {m: [cells[(b, m)]["written_mib"] for b in batches]
               for m in modes}
    return "\n\n".join([
        format_series("Figure 7(a): YCSB-F throughput (ops/s)",
                      "batch_size", batches, tput),
        format_series("Figure 7(b): YCSB-F written data (MiB)",
                      "batch_size", batches, written),
    ])


def print_fig8(result: Dict) -> str:
    cells = result["cells"]
    batches = sorted({key[0] for key in cells})
    modes = sorted({key[1] for key in cells})
    tput = {m: [cells[(b, m)]["throughput_ops"] for b in batches]
            for m in modes}
    return format_series("Figure 8: YCSB-A throughput (ops/s)",
                         "batch_size", batches, tput)


def print_table2(result: Dict) -> str:
    rows = [[mode, row["elapsed_seconds"], row["written_mib"],
             row["read_mib"], row["docs_moved"]]
            for mode, row in result["rows"].items()]
    return format_table(
        ["mode", "elapsed_s", "written_MiB", "read_MiB", "docs"], rows,
        title="Table 2: effect of SHARE on compaction")


def print_pgbench(result: Dict) -> str:
    rows = [[name, row["throughput_tps"], row["wal_mib"],
             row["wal_full_page_mib"], row["wal_record_mib"]]
            for name, row in result["rows"].items()]
    return format_table(
        ["full_page_writes", "tps", "WAL_MiB", "FPI_MiB", "records_MiB"],
        rows, title="pgbench: full_page_writes on vs off (in-text, 5.3.1)")


def run_all(scale: Scale = Scale.QUICK) -> str:
    """Regenerate every table and figure; returns the full text report."""
    sections: List[str] = []
    result_5a = fig5a(scale)
    sections.append(print_fig5a(result_5a))
    result_5b = fig5b(scale)
    sections.append(print_fig5b(result_5b))
    sections.append(print_fig6(fig6(scale, fig5b_result=result_5b)))
    sections.append(print_table1(table1(scale)))
    sections.append(print_fig7(fig7(scale)))
    sections.append(print_fig8(fig8(scale)))
    sections.append(print_table2(table2(scale)))
    sections.append(print_pgbench(pgbench_fpw(scale)))
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures")
    parser.add_argument("--scale", choices=[s.value for s in Scale],
                        default=Scale.QUICK.value)
    parser.add_argument("--only", choices=[
        "fig5a", "fig5b", "fig6", "table1", "fig7", "fig8", "table2",
        "pgbench", "telemetry"], default=None)
    parser.add_argument(
        "--telemetry-out", default="results/linkbench_telemetry.jsonl",
        help="JSONL artifact path for --only telemetry")
    args = parser.parse_args(argv)
    scale = Scale(args.scale)
    if args.only == "telemetry":
        cell = linkbench_telemetry(scale, jsonl_path=args.telemetry_out)
        print(f"throughput_tps: {cell['throughput_tps']:.1f}")
        print(f"telemetry written to {cell['jsonl_path']}")
        print(f"render with: python -m repro.tools.report "
              f"{cell['jsonl_path']}")
        return 0
    if args.only is None:
        print(run_all(scale))
        return 0
    printers = {
        "fig5a": lambda: print_fig5a(fig5a(scale)),
        "fig5b": lambda: print_fig5b(fig5b(scale)),
        "fig6": lambda: print_fig6(fig6(scale)),
        "table1": lambda: print_table1(table1(scale)),
        "fig7": lambda: print_fig7(fig7(scale)),
        "fig8": lambda: print_fig8(fig8(scale)),
        "table2": lambda: print_table2(table2(scale)),
        "pgbench": lambda: print_pgbench(pgbench_fpw(scale)),
    }
    print(printers[args.only]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
