"""Experiment stack builders.

Every experiment assembles the same kind of stack the paper's testbed had:

* an OpenSSD stand-in (SHARE-capable simulated SSD, MLC timing) holding
  the database,
* for MySQL, a second plain SSD as the log device (the Samsung PM853T),
* a host filesystem with ordered metadata journaling,
* the engine under test.

The paper's absolute sizes (1.5 GB LinkBench database, 50–150 MB buffer
pool, 1 GB / 250 k-record YCSB store) are scaled down by a constant factor
so a full figure regenerates in minutes of wall time; every ratio the
figures depend on (buffer-to-database, over-provisioning, batch sizes) is
preserved.  ``Scale.FULL`` restores the paper's record counts for
overnight runs.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import MLC_TIMING, SATA_SSD_TIMING, FlashTiming
from repro.ftl.config import FtlConfig
from repro.ftl.mapping import resolve_l2p_strategy
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.host.filesystem import FsConfig, HostFs
from repro.innodb.engine import FlushMode, InnoDBConfig, InnoDBEngine
from repro.postgres.engine import PostgresConfig, PostgresEngine
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.ssd.device import Ssd, SsdConfig
from repro.ssd.ncq import NativeCommandQueue

KIB = 1024
MIB = 1024 * KIB

#: The paper's database sizes.
PAPER_LINKBENCH_DB_BYTES = 1536 * MIB
PAPER_YCSB_RECORDS = 250_000


def _map_blocks_for(block_count: int) -> int:
    """Mapping-log region size: proportional to capacity (real FTLs
    reserve capacity-proportional metadata space) with a small floor."""
    return max(4, block_count // 24)


def _l2p(l2p_strategy: Optional[str]) -> str:
    """L2P backing for a stack: the explicit argument, else the
    ``REPRO_L2P`` environment override, else the flat default — so one
    env var flips every builder-made device in a run."""
    return (l2p_strategy if l2p_strategy is not None
            else resolve_l2p_strategy())


class Scale(enum.Enum):
    """Experiment scale: QUICK regenerates every figure in minutes; FULL
    uses the paper's record counts."""

    TINY = "tiny"      # CI-sized, seconds per cell
    QUICK = "quick"    # default, minutes per figure
    FULL = "full"      # paper-sized record counts


@dataclass(frozen=True)
class ScaleParams:
    linkbench_nodes: int
    linkbench_transactions: int
    ycsb_records: int
    ycsb_operations: int
    pgbench_scale: int
    pgbench_transactions: int


SCALES = {
    Scale.TINY: ScaleParams(
        linkbench_nodes=2_000, linkbench_transactions=3_000,
        ycsb_records=4_000, ycsb_operations=3_000,
        pgbench_scale=1, pgbench_transactions=2_000),
    Scale.QUICK: ScaleParams(
        linkbench_nodes=12_000, linkbench_transactions=16_000,
        ycsb_records=40_000, ycsb_operations=16_000,
        pgbench_scale=2, pgbench_transactions=8_000),
    Scale.FULL: ScaleParams(
        linkbench_nodes=120_000, linkbench_transactions=160_000,
        ycsb_records=PAPER_YCSB_RECORDS, ycsb_operations=100_000,
        pgbench_scale=10, pgbench_transactions=50_000),
}


# --------------------------------------------------------------------------
# InnoDB / LinkBench stack
# --------------------------------------------------------------------------

@dataclass
class InnoDbStack:
    """One assembled MySQL-style stack."""

    clock: SimClock
    data_ssd: Ssd
    log_ssd: Ssd
    engine: InnoDBEngine


def innodb_device_geometry(page_size: int, db_pages_estimate: int
                           ) -> FlashGeometry:
    """Size the OpenSSD stand-in with the paper's database-to-device
    ratio: the 1.5 GB LinkBench database lived on a 4 GB OpenSSD (~40 %
    utilization).  That ratio sets the steady-state block survival time,
    which is what makes SHARE's garbage-collection reductions (Figure 6 b
    and c) come out at the paper's magnitudes."""
    needed_logical = int(db_pages_estimate * 2.3) + 700
    pages_per_block = 128
    block_count = max(24, -(-needed_logical
                            // int(pages_per_block * 0.92)) + 4)
    return FlashGeometry(page_size=page_size,
                         pages_per_block=pages_per_block,
                         block_count=block_count,
                         overprovision_ratio=0.08)


def build_innodb_stack(mode: FlushMode, page_size: int,
                       buffer_pool_pages: int, db_pages_estimate: int,
                       timing: FlashTiming = MLC_TIMING,
                       leaf_capacity: Optional[int] = None,
                       share_table_entries: int = 250,
                       age_device: bool = True,
                       trace_capacity: int = 0,
                       trace_keep: str = "oldest",
                       telemetry=None,
                       queue_depth: int = 1,
                       channel_count: Optional[int] = None,
                       plane_ways: int = 1,
                       interval_capacity: int = 0,
                       l2p_strategy: Optional[str] = None) -> InnoDbStack:
    """Assemble data device + log device + engine for one experiment cell.

    ``leaf_capacity`` scales with the page size by default: bigger pages
    hold proportionally more rows, exactly why the paper's Figure 5(a)
    varies the page size.  ``age_device`` reproduces Section 5.1's aging
    pre-run so garbage collection is active in steady state.  Passing a
    :class:`repro.obs.Telemetry` instruments both devices (metric prefixes
    ``device.data`` and ``device.log``) and every layer above them.

    ``queue_depth``/``channel_count``/``plane_ways`` configure the
    event-driven execution core.  The defaults reproduce the serial
    model bit-for-bit.  At ``queue_depth=1`` both devices share one
    native command queue — the host issues synchronously, one command
    outstanding across the whole stack, exactly the old model; at
    higher depths each device gets its own queue and commands from
    different clients pipeline.

    ``interval_capacity`` enables per-channel busy-interval capture on
    the data device (for the Chrome-trace exporter).  When the telemetry
    carries a :class:`~repro.obs.profiling.PhaseProfiler` the shared
    event scheduler charges its dispatch loop to it too.
    """
    clock = SimClock()
    events = EventScheduler(
        clock, profiler=getattr(telemetry, "profiler", None))
    shared_ncq = NativeCommandQueue(1) if queue_depth == 1 else None
    geometry = innodb_device_geometry(page_size, db_pages_estimate)
    if channel_count is not None:
        geometry = dataclasses.replace(geometry,
                                       channel_count=channel_count)
    data_ssd = Ssd(clock, SsdConfig(
        geometry=geometry, timing=timing,
        ftl=FtlConfig(share_table_entries=share_table_entries,
                      map_block_count=_map_blocks_for(geometry.block_count),
                      l2p_strategy=_l2p(l2p_strategy)),
        trace_capacity=trace_capacity, trace_keep=trace_keep,
        queue_depth=queue_depth, plane_ways=plane_ways,
        interval_capacity=interval_capacity),
        telemetry=telemetry, name="data", events=events, ncq=shared_ncq)
    if age_device:
        # Light sequential pre-fill of the region the database will NOT
        # overwrite is pointless cold weight; the paper-faithful aging is
        # the workload warm-up the experiment driver performs, which
        # fragments exactly the blocks the benchmark churns.  A thin
        # pre-fill of the low LPNs seeds that fragmentation.
        data_ssd.age(fill_fraction=0.35, rewrite_fraction=0.2)
    log_geometry = FlashGeometry(page_size=page_size, pages_per_block=128,
                                 block_count=max(
                                     32, geometry.block_count // 2),
                                 overprovision_ratio=0.08,
                                 channel_count=geometry.channel_count)
    log_ssd = Ssd(clock, SsdConfig(geometry=log_geometry,
                                   timing=SATA_SSD_TIMING,
                                   share_enabled=False,
                                   # Same L2P backing as the data device:
                                   # the shared ftl.l2p.* gauges stay
                                   # coherent across the stack.
                                   ftl=FtlConfig(
                                       l2p_strategy=_l2p(l2p_strategy)),
                                   queue_depth=queue_depth,
                                   plane_ways=plane_ways),
                  telemetry=telemetry, name="log", events=events,
                  ncq=shared_ncq)
    if leaf_capacity is None:
        leaf_capacity = max(8, 32 * (page_size // 4096))
    config = InnoDBConfig(
        buffer_pool_pages=buffer_pool_pages,
        flush_batch_pages=64,
        dwb_pages=128,
        leaf_capacity=leaf_capacity,
        internal_fanout=max(16, 2 * leaf_capacity))
    engine = InnoDBEngine(mode, data_ssd, log_ssd, config)
    return InnoDbStack(clock, data_ssd, log_ssd, engine)


def buffer_pages_for(paper_buffer_mib: int, db_pages: int,
                     page_size: int) -> int:
    """Translate the paper's buffer-pool size into the scaled stack.

    The paper pairs a 50–150 MiB pool with a 1.5 GiB database; keeping the
    pool-to-database *ratio* reproduces the same miss behaviour at any
    scale."""
    ratio = (paper_buffer_mib * MIB) / PAPER_LINKBENCH_DB_BYTES
    return max(64, int(db_pages * ratio))


# --------------------------------------------------------------------------
# Couchstore / YCSB stack
# --------------------------------------------------------------------------

@dataclass
class CouchStack:
    """One assembled Couchbase-style stack."""

    clock: SimClock
    ssd: Ssd
    fs: HostFs
    store: CouchStore


def build_couch_stack(mode: CommitMode, record_count: int,
                      operations_estimate: int,
                      timing: FlashTiming = MLC_TIMING,
                      config: Optional[CouchConfig] = None,
                      share_table_entries: int = 250,
                      age_device: bool = False,
                      telemetry=None,
                      queue_depth: int = 1,
                      channel_count: Optional[int] = None,
                      plane_ways: int = 1,
                      trace_capacity: int = 0,
                      interval_capacity: int = 0,
                      l2p_strategy: Optional[str] = None) -> CouchStack:
    """Assemble the device + filesystem + couchstore for one cell.

    The device is sized for the record set plus the append churn of the
    run so compaction pressure (stale ratio) builds as in the paper.
    ``telemetry`` instruments the device (prefix ``device.data``) and the
    store above it.  ``queue_depth``/``channel_count``/``plane_ways``
    configure the event-driven core; the defaults reproduce the serial
    model bit-for-bit."""
    clock = SimClock()
    churn = operations_estimate * 6
    needed_logical = record_count * 2 + churn + 4096
    geometry = FlashGeometry(page_size=4 * KIB, pages_per_block=128,
                             block_count=max(
                                 64, -(-needed_logical // int(128 * 0.92))),
                             overprovision_ratio=0.08)
    if channel_count is not None:
        geometry = dataclasses.replace(geometry,
                                       channel_count=channel_count)
    ssd = Ssd(clock, SsdConfig(
        geometry=geometry, timing=timing,
        ftl=FtlConfig(share_table_entries=share_table_entries,
                      map_block_count=_map_blocks_for(geometry.block_count),
                      l2p_strategy=_l2p(l2p_strategy)),
        queue_depth=queue_depth, plane_ways=plane_ways,
        trace_capacity=trace_capacity,
        interval_capacity=interval_capacity),
        telemetry=telemetry, name="data")
    if age_device:
        ssd.age(fill_fraction=0.5, rewrite_fraction=0.3)
    fs = HostFs(ssd, FsConfig())
    store = CouchStore(fs, "/db.couch", mode, config or CouchConfig())
    return CouchStack(clock, ssd, fs, store)


# --------------------------------------------------------------------------
# PostgreSQL / pgbench stack
# --------------------------------------------------------------------------

def build_postgres_stack(full_page_writes: bool, scale: int,
                         timing: FlashTiming = MLC_TIMING,
                         l2p_strategy: Optional[str] = None
                         ) -> Tuple[SimClock, Ssd, Ssd, PostgresEngine]:
    """Assemble a heap device + WAL device + engine."""
    clock = SimClock()
    data_pages = scale * 10_000 // 32 + scale * 10_000 // 32 + 4096
    geometry = FlashGeometry(page_size=4 * KIB, pages_per_block=128,
                             block_count=max(
                                 64, -(-(data_pages * 2) // int(128 * 0.92))),
                             overprovision_ratio=0.08)
    ftl_config = FtlConfig(l2p_strategy=_l2p(l2p_strategy))
    data_ssd = Ssd(clock, SsdConfig(geometry=geometry, timing=timing,
                                    share_enabled=False, ftl=ftl_config))
    wal_ssd = Ssd(clock, SsdConfig(geometry=geometry, timing=timing,
                                   share_enabled=False, ftl=ftl_config))
    # Frequent checkpoints (as with pgbench's default-sized WAL) keep the
    # full-page-image cost recurring — the regime the paper's in-text
    # experiment measured.
    engine = PostgresEngine(data_ssd, wal_ssd, PostgresConfig(
        full_page_writes=full_page_writes,
        checkpoint_interval_commits=300))
    return clock, data_ssd, wal_ssd, engine


# --------------------------------------------------------------------------
# Sharded cluster stack
# --------------------------------------------------------------------------

@dataclass
class ClusterStack:
    """One assembled sharded tier: M replicated groups behind a router."""

    clock: SimClock
    events: EventScheduler
    router: "ShardRouter"
    pairs: Tuple["ShardGroup", ...]
    #: Pre-built groups *not* in the ring — candidates for a live
    #: ``router.start_rebalance(add=...)`` join.
    spares: Tuple["ShardGroup", ...] = ()


def build_cluster_stack(shards: int = 3, keys_estimate: int = 4_000,
                        page_size: int = 4 * KIB,
                        timing: FlashTiming = MLC_TIMING,
                        telemetry=None, faults=None,
                        queue_depth: int = 4, channel_count: int = 2,
                        queue_limit: Optional[int] = 8,
                        vnodes: int = 64, replicas: int = 1,
                        write_quorum: int = 1,
                        spare_shards: int = 0,
                        l2p_strategy: Optional[str] = None) -> ClusterStack:
    """Assemble ``shards`` shard groups (primary + ``replicas`` peer
    devices each) behind a :class:`~repro.cluster.router.ShardRouter`.

    All ``(1 + replicas) * shards`` devices share one clock and one
    event scheduler (completions from different shards interleave in
    global time), but each device has its own NCQ and channel set — a
    shard's queue filling up backpressures only that shard.  Per-device
    capacity is sized for the worst shard of the consistent-hash split
    (keys spread unevenly) plus overwrite churn headroom.
    ``write_quorum`` > 1 makes each group synchronously apply every
    write to ``write_quorum - 1`` replicas before acking.
    ``spare_shards`` builds that many extra groups on the same clock
    and scheduler but leaves them out of the ring — ready to join via
    ``router.start_rebalance(add=stack.spares[i])``.
    """
    from repro.cluster import ShardGroup, ShardRouter
    from repro.sim.faults import NO_FAULTS

    if shards < 1:
        raise ValueError(f"shards must be >= 1: {shards}")
    if replicas < 0:
        raise ValueError(f"replicas must be >= 0: {replicas}")
    clock = SimClock()
    events = EventScheduler(
        clock, profiler=getattr(telemetry, "profiler", None))
    # Hash imbalance headroom (~1.5x the even split) and overwrite
    # churn headroom so GC is active but the shard never fills.
    per_shard_keys = max(256, (keys_estimate * 3) // (2 * shards))
    needed_logical = int(per_shard_keys * 2.0) + 256
    pages_per_block = 64
    block_count = max(24, -(-needed_logical
                            // int(pages_per_block * 0.90)) + 4)
    geometry = FlashGeometry(page_size=page_size,
                             pages_per_block=pages_per_block,
                             block_count=block_count,
                             overprovision_ratio=0.12,
                             channel_count=channel_count)

    def device(name: str) -> Ssd:
        return Ssd(clock, SsdConfig(
            geometry=geometry, timing=timing,
            ftl=FtlConfig(
                share_table_entries=max(64, per_shard_keys // 4),
                map_block_count=_map_blocks_for(block_count),
                l2p_strategy=_l2p(l2p_strategy)),
            queue_depth=queue_depth),
            telemetry=telemetry, name=name, events=events)

    def group(index: int) -> "ShardGroup":
        primary = device(f"s{index}p")
        if replicas == 1:
            reps = [device(f"s{index}r")]
        else:
            reps = [device(f"s{index}r{rep}") for rep in range(replicas)]
        return ShardGroup(f"shard{index}", primary, reps,
                          queue_limit=queue_limit,
                          write_quorum=write_quorum)

    pairs = [group(index) for index in range(shards)]
    spares = [group(shards + extra) for extra in range(spare_shards)]
    router = ShardRouter(pairs, clock,
                         faults=faults if faults is not None else NO_FAULTS,
                         telemetry=telemetry, vnodes=vnodes)
    return ClusterStack(clock, events, router, tuple(pairs), tuple(spares))
