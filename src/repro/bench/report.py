"""Plain-text rendering of experiment results in the paper's shapes."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Monospace-aligned table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.1f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def format_ratio_line(label: str, baseline: float, improved: float) -> str:
    """One 'who wins by how much' line."""
    if improved <= 0:
        return f"{label}: n/a"
    return (f"{label}: baseline {baseline:.2f} vs improved {improved:.2f} "
            f"-> {baseline / improved:.2f}x" if baseline >= improved else
            f"{label}: baseline {baseline:.2f} vs improved {improved:.2f} "
            f"-> {improved / baseline:.2f}x")


def format_series(title: str, x_label: str, xs: Sequence,
                  series: Dict[str, Sequence[float]]) -> str:
    """A figure rendered as a table: one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [series[name][index] for name in series])
    return format_table(headers, rows, title=title)
