"""Benchmark harness: stack builders, one experiment per paper artifact,
and text reporting in the paper's row/series format."""

from repro.bench.harness import (
    CouchStack,
    InnoDbStack,
    build_couch_stack,
    build_innodb_stack,
    build_postgres_stack,
)

__all__ = [
    "CouchStack",
    "InnoDbStack",
    "build_couch_stack",
    "build_innodb_stack",
    "build_postgres_stack",
]
