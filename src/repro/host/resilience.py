"""Host-side resilience for vendor-unique device commands.

The paper assumes SHARE always succeeds; a production host cannot.  This
module is the layer between the engines and :mod:`repro.host.ioctl` that
makes the SHARE path survivable: a :class:`RetryPolicy` (bounded
attempts, exponential backoff with deterministic jitter, per-command
deadline — all in virtual time), a :class:`CircuitBreaker`
(closed→open→half-open, tripping on consecutive failures so a sick
device is not hammered), and a :class:`ShareGuard` facade the engines
call instead of the raw ioctl helpers.

Error contract:

* ``DeviceBusyError`` / ``CommandTimeoutError`` are **retryable**: the
  guard backs off (advancing the sim clock) and reissues.  Retrying
  SHARE is idempotent — remapping a dst LPN onto the same src physical
  page twice is a no-op — so the ambiguous applied-but-timed-out case
  is safe.
* Any other ``DeviceError`` (``CommandUnsupportedError``, media faults
  the firmware could not mask, FTL state errors) is **non-retryable**:
  the guard records the failure against the breaker and raises
  :class:`RetriesExhaustedError` immediately.
* When the breaker is open the guard raises :class:`CircuitOpenError`
  without touching the device.

Engines catch the single base type :class:`ResilienceError` and degrade
to their classic two-phase path (doublewrite, copy-compaction, rollback
journal, journal-copy checkpoint).  :class:`PowerFailure` is never
caught here — a crash is a crash.

Telemetry: shared counters ``resilience.retries`` /
``resilience.command_failures`` / ``resilience.breaker_trips`` /
``resilience.breaker_fast_fails`` / ``resilience.deadline_exceeded``,
plus per-engine ``resilience.fallbacks.<engine>`` counters and
``resilience.breaker_state.<engine>`` gauges (0=closed, 1=half-open,
2=open).  Because crash harnesses run with ``NULL_TELEMETRY``, the
guard also keeps a local :class:`GuardStats` the sweeps read directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from repro.errors import (CircuitOpenError, CommandTimeoutError,
                          DeviceBusyError, DeviceError, PowerFailure,
                          ResilienceError, RetriesExhaustedError)
from repro.host import ioctl as _ioctl
from repro.host.file import File
from repro.sim.rng import make_rng

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "ShareGuard",
    "GuardStats",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "RETRYABLE_ERRORS",
]

#: Errors worth a backoff-and-retry; everything else fails fast.
RETRYABLE_ERRORS = (DeviceBusyError, CommandTimeoutError)

BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half-open"
BREAKER_OPEN = "open"

#: Gauge encoding of breaker states (monotone in severity).
_STATE_GAUGE = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, jitter, and a deadline.

    All durations are virtual microseconds.  Jitter is drawn from a
    seeded private stream (:func:`repro.sim.rng.make_rng`), so a retry
    schedule is exactly reproducible for a given seed.
    """

    max_attempts: int = 4
    base_backoff_us: int = 200
    backoff_multiplier: float = 2.0
    max_backoff_us: int = 20_000
    jitter_fraction: float = 0.25
    deadline_us: Optional[int] = 2_000_000
    seed: int = 0x51C

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_backoff_us < 0:
            raise ValueError(
                f"base_backoff_us must be >= 0: {self.base_backoff_us}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1: {self.backoff_multiplier}")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1]: {self.jitter_fraction}")
        if self.deadline_us is not None and self.deadline_us < 1:
            raise ValueError(
                f"deadline_us must be >= 1 or None: {self.deadline_us}")

    def backoff_us(self, attempt: int, rng) -> int:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(self.base_backoff_us
                   * self.backoff_multiplier ** (attempt - 1),
                   float(self.max_backoff_us))
        return int(base + base * self.jitter_fraction * rng.random())


class CircuitBreaker:
    """Consecutive-failure circuit breaker on the virtual clock.

    ``failure_threshold`` consecutive failures trip CLOSED→OPEN; while
    OPEN, :meth:`allow` refuses until ``recovery_timeout_us`` of virtual
    time has passed, then the breaker half-opens and admits
    ``half_open_probes`` probe commands.  A probe success closes the
    breaker; a probe failure re-opens it (restarting the timeout).
    :meth:`force_open` latches the breaker open regardless of time —
    benchmarks use it to measure the pure-fallback path.
    """

    def __init__(self, clock, failure_threshold: int = 3,
                 recovery_timeout_us: int = 500_000,
                 half_open_probes: int = 1,
                 on_transition: Optional[Callable[[str], None]] = None
                 ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {failure_threshold}")
        if recovery_timeout_us < 1:
            raise ValueError(
                f"recovery_timeout_us must be >= 1: {recovery_timeout_us}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1: {half_open_probes}")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.recovery_timeout_us = recovery_timeout_us
        self.half_open_probes = half_open_probes
        self.on_transition = on_transition
        self.state = BREAKER_CLOSED
        self.trips = 0
        self._consecutive_failures = 0
        self._opened_at: Optional[int] = None
        self._probes_left = 0
        self._latched = False

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if state == BREAKER_OPEN:
            self.trips += 1
            self._opened_at = self.clock.now_us
        if self.on_transition is not None:
            self.on_transition(state)

    def allow(self) -> bool:
        """May a command be attempted right now?  Half-opens an OPEN
        breaker once the recovery timeout has elapsed (consuming a probe
        slot per admitted command)."""
        if self._latched:
            return False
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if (self.clock.elapsed_since(self._opened_at)
                    < self.recovery_timeout_us):
                return False
            self._transition(BREAKER_HALF_OPEN)
            self._probes_left = self.half_open_probes
        if self._probes_left <= 0:
            return False
        self._probes_left -= 1
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state != BREAKER_CLOSED:
            self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self._transition(BREAKER_OPEN)
            return
        self._consecutive_failures += 1
        if (self.state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._transition(BREAKER_OPEN)

    def force_open(self) -> None:
        """Latch the breaker open (no time-based recovery) — used to
        force the pure-fallback path in benchmarks and tests."""
        self._latched = True
        self._transition(BREAKER_OPEN)

    def reset(self) -> None:
        """Unlatch and close the breaker.

        Always announces CLOSED through ``on_transition``, even when the
        breaker was already closed — a promoted or recovered shard must
        re-emit its state gauge, not report a stale value — and clears
        half-open probe accounting so a later trip starts clean."""
        self._latched = False
        self._consecutive_failures = 0
        self._probes_left = 0
        self._opened_at = None
        if self.state != BREAKER_CLOSED:
            self._transition(BREAKER_CLOSED)
        elif self.on_transition is not None:
            self.on_transition(BREAKER_CLOSED)


@dataclass
class GuardStats:
    """Local counters one :class:`ShareGuard` accumulates (readable even
    when telemetry is the NULL singleton, as in crash harnesses)."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    failures: int = 0
    fast_fails: int = 0
    deadline_exceeded: int = 0
    fallbacks: int = 0
    backoff_us: int = field(default=0)
    #: Virtual time the breaker last entered an open episode (None until
    #: the first trip).  An episode spans open -> half-open -> open
    #: flapping; re-opens do not restart it.
    last_open_us: Optional[int] = None
    #: Total virtual time spent in open episodes that have since closed
    #: — failover latency is readable here without parsing span traces.
    open_duration_us: int = 0


class ShareGuard:
    """Resilient facade over the SHARE/atomic-write ioctl helpers.

    One guard per engine instance: it owns the retry RNG stream and a
    :class:`CircuitBreaker`, wraps any callable via :meth:`call`, and
    offers drop-in replacements for the three ioctl entry points.  On
    unrecoverable failure it raises a :class:`ResilienceError` subclass;
    the engine catches that one type, calls :meth:`record_fallback`, and
    serves the operation through its classic two-phase path.
    """

    def __init__(self, ssd, engine: str = "host",
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.ssd = ssd
        self.clock = ssd.clock
        self.engine = engine
        self.policy = policy or RetryPolicy()
        self._rng = make_rng(self.policy.seed)
        self.stats = GuardStats()
        metrics = ssd.telemetry.metrics.scope("resilience")
        self._m_retries = metrics.counter("retries")
        self._m_failures = metrics.counter("command_failures")
        self._m_trips = metrics.counter("breaker_trips")
        self._m_fast_fails = metrics.counter("breaker_fast_fails")
        self._m_deadline = metrics.counter("deadline_exceeded")
        self._m_fallbacks = metrics.counter(f"fallbacks.{engine}")
        self._m_state = metrics.gauge(f"breaker_state.{engine}")
        if breaker is None:
            breaker = CircuitBreaker(ssd.clock)
        self.breaker = breaker
        self._open_since: Optional[int] = None
        previous = breaker.on_transition
        def _observe(state: str, _prev=previous) -> None:
            self._m_state.set(_STATE_GAUGE[state])
            if state == BREAKER_OPEN:
                self._m_trips.inc()
                if self._open_since is None:
                    # Episode start; half-open flaps back to open do not
                    # restart the clock, so open_duration_us measures
                    # trip-to-recovery, i.e. failover latency.
                    self._open_since = self.clock.now_us
                    self.stats.last_open_us = self._open_since
            elif state == BREAKER_CLOSED and self._open_since is not None:
                self.stats.open_duration_us += (self.clock.now_us
                                                - self._open_since)
                self._open_since = None
            if _prev is not None:
                _prev(state)
        breaker.on_transition = _observe
        self._m_state.set(_STATE_GAUGE[breaker.state])

    # ------------------------------------------------------------- core

    def call(self, label: str, fn: Callable[[], object]):
        """Run ``fn`` under the retry policy and breaker.

        Returns ``fn``'s result.  Raises :class:`CircuitOpenError` when
        the breaker refuses the attempt, :class:`RetriesExhaustedError`
        when the command keeps failing (retryable errors past the
        attempt budget or deadline, or any non-retryable device error).
        """
        self.stats.calls += 1
        if not self.breaker.allow():
            self.stats.fast_fails += 1
            self._m_fast_fails.inc()
            raise CircuitOpenError(
                f"{label}: circuit breaker is {self.breaker.state} "
                f"for engine {self.engine!r}")
        policy = self.policy
        start_us = self.clock.now_us
        attempt = 0
        while True:
            attempt += 1
            self.stats.attempts += 1
            try:
                result = fn()
            except PowerFailure:
                raise
            except RETRYABLE_ERRORS as exc:
                self.stats.failures += 1
                self._m_failures.inc()
                self.breaker.record_failure()
                if not self.breaker.allow():
                    raise RetriesExhaustedError(
                        f"{label}: breaker opened after {attempt} "
                        f"attempt(s): {exc}", attempts=attempt,
                        elapsed_us=self.clock.elapsed_since(start_us)
                    ) from exc
                if attempt >= policy.max_attempts:
                    raise RetriesExhaustedError(
                        f"{label}: {attempt} attempts failed, last: {exc}",
                        attempts=attempt,
                        elapsed_us=self.clock.elapsed_since(start_us)
                    ) from exc
                backoff = policy.backoff_us(attempt, self._rng)
                elapsed = self.clock.elapsed_since(start_us)
                if (policy.deadline_us is not None
                        and elapsed + backoff > policy.deadline_us):
                    self.stats.deadline_exceeded += 1
                    self._m_deadline.inc()
                    raise RetriesExhaustedError(
                        f"{label}: deadline {policy.deadline_us}us exceeded "
                        f"after {attempt} attempt(s): {exc}",
                        attempts=attempt, elapsed_us=elapsed) from exc
                self.stats.retries += 1
                self.stats.backoff_us += backoff
                self._m_retries.inc()
                self.clock.advance(backoff)
            except DeviceError as exc:
                self.stats.failures += 1
                self._m_failures.inc()
                self.breaker.record_failure()
                raise RetriesExhaustedError(
                    f"{label}: non-retryable device error: {exc}",
                    attempts=attempt,
                    elapsed_us=self.clock.elapsed_since(start_us)) from exc
            else:
                self.breaker.record_success()
                return result

    def record_fallback(self) -> None:
        """Count one degradation to the engine's classic two-phase path."""
        self.stats.fallbacks += 1
        self._m_fallbacks.inc()

    def add_listener(self, listener: Callable[[str], None]) -> None:
        """Chain another breaker-state observer after the guard's own.

        The cluster failover controller registers its promotion trigger
        here, so a breaker trip marks the shard for promotion without
        the guard knowing anything about the tier above it."""
        previous = self.breaker.on_transition
        def _chained(state: str, _prev=previous) -> None:
            if _prev is not None:
                _prev(state)
            listener(state)
        self.breaker.on_transition = _chained

    # ------------------------------------------------ ioctl replacements

    def share_ioctl(self, dst_file: File, dst_block: int, src_file: File,
                    src_block: int, length: int = 1) -> int:
        return self.call("share_ioctl",
                         lambda: _ioctl.share_ioctl(dst_file, dst_block,
                                                    src_file, src_block,
                                                    length))

    def share_file_ranges(self, dst_file: File, src_file: File,
                          ranges: Sequence[Tuple[int, int, int]]) -> int:
        return self.call("share_file_ranges",
                         lambda: _ioctl.share_file_ranges(dst_file, src_file,
                                                          ranges))

    def atomic_write_ioctl(self, file: File, items: Sequence) -> int:
        return self.call("atomic_write_ioctl",
                         lambda: _ioctl.atomic_write_ioctl(file, items))
