"""Extent-based host filesystem over an :class:`repro.ssd.device.Ssd`.

Models the parts of the paper's ext4 (ordered mode, O_DIRECT) setup that
matter to the experiments:

* files are lists of device LPNs; data writes go straight to the device
  (O_DIRECT — no page cache is modelled),
* ``fallocate`` reserves LPNs without writing them (the SHARE-based
  Couchbase compaction of Figure 3 depends on this),
* metadata is journaled in *ordered* mode: an fsync that observes metadata
  changes (file growth, create, unlink) writes a descriptor+commit pair to
  a dedicated journal area before the fsync returns — this is the extra
  traffic that keeps Figure 6(a)'s reduction below 50 %,
* ``unlink`` TRIMs the file's extents, which is how the old Couchbase file
  releases its shared pages after compaction.

The directory table itself is kept in host memory: the experiments never
crash the filesystem structure, only the device and the database engines
(whose durability lives in device pages, not in the directory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import FileExists, FileNotFound, NoSpace
from repro.host.file import File
from repro.ssd.device import Ssd


@dataclass(frozen=True)
class FsConfig:
    """Filesystem assembly options.

    ``journal_blocks`` LPNs are reserved for the metadata journal;
    ``metadata_pages_per_commit`` models the descriptor + commit blocks of
    one ordered-mode journal transaction.
    """

    journal_blocks: int = 256
    metadata_pages_per_commit: int = 2

    def __post_init__(self) -> None:
        if self.journal_blocks < self.metadata_pages_per_commit:
            raise ValueError("journal area smaller than one commit")
        if self.metadata_pages_per_commit < 1:
            raise ValueError("need at least one metadata page per commit")


class HostFs:
    """A minimal but honest filesystem facade.

    Block size equals the device page size; all file I/O is in whole
    blocks, matching the databases' O_DIRECT page I/O.
    """

    def __init__(self, ssd: Ssd, config: Optional[FsConfig] = None) -> None:
        self.ssd = ssd
        self.config = config or FsConfig()
        if self.config.journal_blocks >= ssd.logical_pages // 4:
            raise ValueError("journal area would consume too much of the device")
        self.telemetry = ssd.telemetry
        metrics = self.telemetry.metrics
        self._m_meta_commits = metrics.counter("host.metadata_commits")
        self._m_fsyncs = metrics.counter("host.fsync_calls")
        self.block_size = ssd.page_size
        self._journal_base = 0
        self._journal_cursor = 0
        self._files: Dict[str, File] = {}
        # Free-space map: a compact cursor+recycled-pool allocator over the
        # LPNs after the journal area.
        self._alloc_cursor = self.config.journal_blocks
        self._recycled: List[int] = []
        self.metadata_commits = 0

    # ------------------------------------------------------------ files

    def create(self, path: str) -> File:
        """Create an empty file.  Metadata-dirties the filesystem."""
        if path in self._files:
            raise FileExists(f"file exists: {path}")
        handle = File(self, path)
        self._files[path] = handle
        handle._metadata_dirty = True
        return handle

    def open(self, path: str) -> File:
        handle = self._files.get(path)
        if handle is None:
            raise FileNotFound(f"no such file: {path}")
        return handle

    def exists(self, path: str) -> bool:
        return path in self._files

    def unlink(self, path: str) -> None:
        """Delete a file: TRIM its extents on the device and return the
        LPNs to the free pool."""
        handle = self._files.pop(path, None)
        if handle is None:
            raise FileNotFound(f"no such file: {path}")
        self._release_file(handle, path)

    def _release_file(self, handle: "File", path: str) -> None:
        """TRIM a dropped file's extents and recycle its LPNs."""
        with self.telemetry.tracer.span("host.unlink", path=path,
                                        blocks=len(handle._blocks)):
            for start, count in _runs(handle._blocks):
                self.ssd.trim(start, count)
            self.release_blocks(handle._blocks)
            handle._blocks = []
            handle._unlinked = True
            self._commit_metadata()

    def reflink_copy(self, src_path: str, dst_path: str) -> int:
        """Copy a file without copying data (Section 1's "file copy
        operations that can occur almost without copying data").

        Allocates fresh LPNs for the destination and SHAREs every written
        source block onto them; holes (fallocated-but-unwritten blocks)
        stay holes.  Returns the number of SHARE commands issued.
        """
        src = self.open(src_path)
        dst = self.create(dst_path)
        if src.block_count == 0:
            self._commit_metadata()
            return 0
        dst.fallocate(src.block_count)
        from repro.host.ioctl import share_file_ranges
        ranges = []
        run_start = None
        for index in range(src.block_count + 1):
            written = (index < src.block_count
                       and self.ssd.ftl.is_mapped(src.block_lpn(index)))
            if written and run_start is None:
                run_start = index
            elif not written and run_start is not None:
                ranges.append((run_start, run_start, index - run_start))
                run_start = None
        commands = share_file_ranges(dst, src, ranges) if ranges else 0
        self._commit_metadata()
        return commands

    def rename(self, old_path: str, new_path: str) -> None:
        """Atomic rename; replaces ``new_path`` if it exists (the couch
        compaction switch-over).

        The directory entry swaps before the replaced file's extents are
        TRIMmed: the swap itself touches no device state, so a power
        failure leaves either the old name or the new one — never
        neither.  Releasing the replaced extents afterwards mirrors a
        real filesystem's orphaned-inode cleanup; a crash mid-release
        at worst delays the TRIMs, it cannot lose the rename."""
        handle = self._files.get(old_path)
        if handle is None:
            raise FileNotFound(f"no such file: {old_path}")
        if new_path == old_path:
            return
        replaced = self._files.pop(new_path, None)
        del self._files[old_path]
        handle.path = new_path
        self._files[new_path] = handle
        self._commit_metadata()
        if replaced is not None:
            self._release_file(replaced, new_path)

    def list_files(self) -> List[str]:
        return sorted(self._files)

    # -------------------------------------------------------- allocation

    def allocate_blocks(self, count: int) -> List[int]:
        """Hand out ``count`` LPNs (fallocate machinery).  Prefers fresh
        contiguous space, falls back to recycled LPNs."""
        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        fresh_available = self.ssd.logical_pages - self._alloc_cursor
        out: List[int] = []
        if fresh_available >= count:
            out = list(range(self._alloc_cursor, self._alloc_cursor + count))
            self._alloc_cursor += count
            return out
        out = list(range(self._alloc_cursor,
                         self._alloc_cursor + fresh_available))
        self._alloc_cursor += fresh_available
        needed = count - len(out)
        if len(self._recycled) < needed:
            raise NoSpace(
                f"filesystem full: need {needed} more blocks, "
                f"{len(self._recycled)} recycled available")
        out.extend(self._recycled[:needed])
        del self._recycled[:needed]
        return out

    def release_blocks(self, lpns: List[int]) -> None:
        """Return LPNs to the free pool (truncate/unlink path)."""
        self._recycled.extend(lpns)

    @property
    def free_blocks(self) -> int:
        return (self.ssd.logical_pages - self._alloc_cursor
                + len(self._recycled))

    # ---------------------------------------------------------- metadata

    def _commit_metadata(self) -> None:
        """Write one ordered-mode journal transaction (descriptor +
        commit) to the journal area."""
        with self.telemetry.tracer.span("host.journal_commit"):
            for _ in range(self.config.metadata_pages_per_commit):
                lpn = self._journal_base + self._journal_cursor
                self._journal_cursor = (self._journal_cursor + 1) % self.config.journal_blocks
                self.ssd.write(lpn, ("fsmeta", self.metadata_commits))
            self.ssd.flush()
        self.metadata_commits += 1
        self._m_meta_commits.inc()

    def fsync_file(self, handle: File) -> None:
        """Durability point for one file: device flush plus a metadata
        journal commit when the file's metadata changed."""
        with self.telemetry.tracer.span(
                "host.fsync", path=handle.path,
                metadata=handle._metadata_dirty):
            self.ssd.flush()
            if handle._metadata_dirty:
                self._commit_metadata()
                handle._metadata_dirty = False
        self._m_fsyncs.inc()


def _runs(blocks: List[int]) -> List[tuple]:
    """Compress an LPN list into (start, count) runs for ranged TRIM."""
    if not blocks:
        return []
    ordered = sorted(blocks)
    runs = []
    start = prev = ordered[0]
    for lpn in ordered[1:]:
        if lpn == prev + 1:
            prev = lpn
            continue
        runs.append((start, prev - start + 1))
        start = prev = lpn
    runs.append((start, prev - start + 1))
    return runs
