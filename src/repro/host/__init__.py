"""Host storage stack: extent-based filesystem and the share ioctl path."""

from repro.host.file import File
from repro.host.filesystem import FsConfig, HostFs
from repro.host.ioctl import share_file_ranges, share_ioctl

__all__ = ["File", "FsConfig", "HostFs", "share_file_ranges", "share_ioctl"]
