"""Host storage stack: extent-based filesystem, the share ioctl path,
and the resilience layer (retry, circuit breaker) engines use to
survive SHARE command failures."""

from repro.host.file import File
from repro.host.filesystem import FsConfig, HostFs
from repro.host.ioctl import share_file_ranges, share_ioctl
from repro.host.resilience import (CircuitBreaker, GuardStats, RetryPolicy,
                                   ShareGuard)

__all__ = ["File", "FsConfig", "HostFs", "share_file_ranges", "share_ioctl",
           "RetryPolicy", "CircuitBreaker", "ShareGuard", "GuardStats"]
