"""File handle: block-granular I/O over the extent filesystem.

All offsets are in filesystem blocks (= device pages), mirroring the
O_DIRECT page I/O the paper's databases perform.  A file is an ordered list
of device LPNs; ``block_lpn`` exposes the mapping so the share ioctl can
translate file offsets to device addresses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Sequence

from repro.errors import FileSystemError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.filesystem import HostFs


class File:
    """An open file.  Created via :meth:`HostFs.create` / :meth:`HostFs.open`."""

    def __init__(self, fs: "HostFs", path: str) -> None:
        self.fs = fs
        self.path = path
        self._blocks: List[int] = []
        self._metadata_dirty = False
        self._unlinked = False

    # ---------------------------------------------------------- geometry

    @property
    def block_count(self) -> int:
        """Current size in blocks."""
        return len(self._blocks)

    @property
    def size_bytes(self) -> int:
        return len(self._blocks) * self.fs.block_size

    def block_lpn(self, index: int) -> int:
        """Device LPN backing file block ``index``."""
        self._check_open()
        if not 0 <= index < len(self._blocks):
            raise FileSystemError(
                f"block index {index} outside file of {len(self._blocks)} blocks")
        return self._blocks[index]

    def _check_open(self) -> None:
        if self._unlinked:
            raise FileSystemError(f"file {self.path!r} was unlinked")

    # ---------------------------------------------------------------- IO

    def fallocate(self, block_count: int) -> None:
        """Grow the file to at least ``block_count`` blocks without
        writing data — reserves LPNs only (Figure 3, step 1 of SHARE
        compaction)."""
        self._check_open()
        grow = block_count - len(self._blocks)
        if grow <= 0:
            return
        self._blocks.extend(self.fs.allocate_blocks(grow))
        self._metadata_dirty = True

    def append_block(self, data: Any) -> int:
        """Append one block; returns its file block index."""
        self._check_open()
        index = len(self._blocks)
        self._blocks.extend(self.fs.allocate_blocks(1))
        self.fs.ssd.write(self._blocks[index], data)
        self._metadata_dirty = True
        return index

    def pwrite_block(self, index: int, data: Any) -> None:
        """Write one existing block in place (from the file's view; the
        device still writes out of place internally)."""
        tracer = self.fs.telemetry.tracer
        if tracer.enabled:
            with tracer.span("host.pwrite", path=self.path, blocks=1):
                self.fs.ssd.write(self.block_lpn(index), data)
        else:
            self.fs.ssd.write(self.block_lpn(index), data)

    def pwrite_blocks(self, index: int, pages: Sequence[Any]) -> None:
        """Write consecutive blocks with one device command per contiguous
        LPN run."""
        self._check_open()
        if not pages:
            return
        lpns = [self.block_lpn(index + i) for i in range(len(pages))]
        tracer = self.fs.telemetry.tracer
        if tracer.enabled:
            with tracer.span("host.pwrite", path=self.path,
                             blocks=len(pages)):
                self._pwrite_runs(lpns, pages)
        else:
            self._pwrite_runs(lpns, pages)

    def _pwrite_runs(self, lpns: List[int], pages: Sequence[Any]) -> None:
        """One ``write_multi`` per contiguous LPN run."""
        run_start = 0
        for i in range(1, len(lpns) + 1):
            contiguous = i < len(lpns) and lpns[i] == lpns[i - 1] + 1
            if not contiguous:
                self.fs.ssd.write_multi(lpns[run_start],
                                        list(pages[run_start:i]))
                run_start = i

    def pread_block(self, index: int) -> Any:
        """Read one block."""
        return self.fs.ssd.read(self.block_lpn(index))

    def truncate_blocks(self, block_count: int) -> None:
        """Shrink the file, trimming and recycling the dropped blocks."""
        self._check_open()
        if block_count < 0:
            raise ValueError(f"negative size: {block_count}")
        if block_count >= len(self._blocks):
            return
        dropped = self._blocks[block_count:]
        self._blocks = self._blocks[:block_count]
        for lpn in dropped:
            self.fs.ssd.trim(lpn)
        self.fs.release_blocks(dropped)
        self._metadata_dirty = True

    def fsync(self) -> None:
        """Force durability of data and (if changed) metadata."""
        self._check_open()
        self.fs.fsync_file(self)
