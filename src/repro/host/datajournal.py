"""Full (data=journal) filesystem journaling, with and without SHARE.

Section 6.3 relates SHARE to JFTL: under ext4's ``data=journal`` mode
every data page is written twice — once into the journal, once at its
home location during checkpoint — and JFTL showed the second write can be
replaced by a remap inside the FTL.  SHARE expresses the same
optimisation through a public interface: the journal *is* the staged
copy, and checkpointing becomes a SHARE batch.

``DataJournalingFs`` wraps a :class:`HostFs` with transactional
journaled writes:

* ``CLASSIC`` checkpoint — copy each journaled page to its home block,
* ``SHARE`` checkpoint — remap each home block onto its journal copy.

Checkpoints run when the journal fills (or explicitly), exactly like the
kernel's journal-space-driven checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FileSystemError, ResilienceError
from repro.host.file import File
from repro.host.filesystem import HostFs
from repro.host.resilience import ShareGuard


class CheckpointMode(Enum):
    """How journaled pages reach their home locations."""

    CLASSIC = "classic"
    SHARE = "share"


@dataclass
class JournalStats:
    """Write accounting for the JFTL comparison."""

    transactions: int = 0
    journaled_pages: int = 0
    journal_block_writes: int = 0
    checkpoint_writes: int = 0
    checkpoint_share_pairs: int = 0
    checkpoints: int = 0


class DataJournalingFs:
    """data=journal semantics over a HostFs."""

    def __init__(self, fs: HostFs, mode: CheckpointMode,
                 journal_blocks: int = 256,
                 resilience: Optional[ShareGuard] = None) -> None:
        if journal_blocks < 8:
            raise ValueError(
                f"data journal needs >= 8 blocks: {journal_blocks}")
        self.fs = fs
        self.mode = mode
        self.faults = fs.ssd.faults
        self.resilience = resilience or ShareGuard(fs.ssd,
                                                   engine="datajournal")
        self.journal = fs.create("/.datajournal")
        self.journal.fallocate(journal_blocks)
        self.journal_blocks = journal_blocks
        self._cursor = 0
        # Checkpoint epoch: block 0 holds a ("jepoch", n) marker once the
        # first checkpoint completes.  Commit records are tagged with the
        # epoch they were written in, so post-crash replay can ignore
        # commits from before the last checkpoint — their journal images
        # may already be overwritten.
        self._epoch = 0
        self._txn: Optional[List[Tuple[File, int, Any]]] = None
        # Journal entries awaiting checkpoint: (file, home block) -> the
        # journal block holding the newest copy.
        self._unckpt: Dict[Tuple[int, int], Tuple[File, int, int]] = {}
        self.stats = JournalStats()

    # -------------------------------------------------------------- write

    def begin(self) -> None:
        if self._txn is not None:
            raise FileSystemError("journal transaction already open")
        self._txn = []

    def journaled_write(self, file: File, block: int, data: Any) -> None:
        """Stage one page write into the open transaction."""
        if self._txn is None:
            raise FileSystemError("journaled write outside a transaction")
        self._txn.append((file, block, data))

    def commit(self) -> None:
        """Write the transaction's pages + commit record to the journal
        (the durability point), deferring home-location propagation to
        the next checkpoint."""
        if self._txn is None:
            raise FileSystemError("no journal transaction to commit")
        txn, self._txn = self._txn, None
        if not txn:
            return
        needed = len(txn) + 1  # data blocks + commit record
        if needed > self.journal_blocks - 1:
            raise FileSystemError(
                f"transaction of {len(txn)} pages exceeds the journal")
        if self._cursor + needed > self.journal_blocks:
            self.checkpoint()
        start = self._cursor
        with self.faults.operation(
                "datajournal.commit",
                tuple(self.journal.block_lpn(start + i)
                      for i in range(needed))):
            self.faults.checkpoint("datajournal.commit_begin")
            # Journal data blocks hold the RAW page images — that is what
            # makes the SHARE checkpoint possible: remapping a home block
            # onto a journal block must expose the page content itself.
            # The descriptor (which home block each image belongs to)
            # rides in the commit record, as in ext4's descriptor blocks;
            # it also carries the epoch and start cursor so replay can
            # rebuild the un-checkpointed set.
            records: List[Any] = [data for __, __, data in txn]
            records.append(("jcommit", self._epoch, start,
                            tuple((file.path, block)
                                  for file, block, __ in txn)))
            self.journal.pwrite_blocks(start, records)
            self.journal.fsync()
            self.faults.checkpoint("datajournal.commit_durable")
            for offset, (file, block, data) in enumerate(txn):
                self._unckpt[(id(file), block)] = (file, block,
                                                   start + offset)
            self._cursor += needed
            self.stats.transactions += 1
            self.stats.journaled_pages += len(txn)
            self.stats.journal_block_writes += needed

    # ------------------------------------------------------------- reads

    def read(self, file: File, block: int) -> Any:
        """Read through the journal: the newest un-checkpointed copy wins."""
        entry = self._unckpt.get((id(file), block))
        if entry is not None:
            return self.journal.pread_block(entry[2])
        return file.pread_block(block)

    # --------------------------------------------------------- checkpoint

    def checkpoint(self) -> None:
        """Propagate every journaled page to its home location, bump the
        epoch marker, and free the journal space."""
        self.faults.checkpoint("datajournal.ckpt_begin")
        if self._unckpt:
            if self.mode is CheckpointMode.CLASSIC:
                self._checkpoint_classic()
            else:
                self._checkpoint_share()
        self._unckpt.clear()
        # The marker makes the checkpoint durable *as an event*: replay
        # only trusts jcommit records from the marker's epoch, because a
        # later partial commit may overwrite older epochs' journal images.
        self._epoch += 1
        self.journal.pwrite_block(0, ("jepoch", self._epoch))
        self.journal.fsync()
        self._cursor = 1
        self.stats.checkpoints += 1
        self.faults.checkpoint("datajournal.ckpt_end")

    def _checkpoint_classic(self) -> None:
        """ext4's way: read each journal copy, write it home."""
        for file, block, journal_block in self._unckpt.values():
            image = self.journal.pread_block(journal_block)
            file.pwrite_block(block, image)
            self.stats.checkpoint_writes += 1
        self.fs.ssd.flush()

    def _checkpoint_share(self) -> None:
        """The JFTL/SHARE way: remap home blocks onto journal copies.

        A file whose SHARE batch fails past the retry budget is
        checkpointed the CLASSIC way instead (copy journal image home).
        The journal images stay durable until the epoch bump at the end
        of :meth:`checkpoint`, so a crash anywhere inside the fallback
        replays the same commits — nothing is lost either way."""
        by_file: Dict[int, Tuple[File, List[Tuple[int, int, int]]]] = {}
        for file, block, journal_block in self._unckpt.values():
            entry = by_file.setdefault(id(file), (file, []))
            entry[1].append((block, journal_block, 1))
        degraded = False
        for file, ranges in by_file.values():
            try:
                self.resilience.share_file_ranges(file, self.journal, ranges)
            except ResilienceError:
                self.faults.checkpoint("datajournal.share_fallback")
                self.resilience.record_fallback()
                for block, journal_block, __ in ranges:
                    image = self.journal.pread_block(journal_block)
                    file.pwrite_block(block, image)
                    self.stats.checkpoint_writes += 1
                degraded = True
            else:
                self.stats.checkpoint_share_pairs += len(ranges)
        if degraded:
            self.fs.ssd.flush()

    # ----------------------------------------------------------- recovery

    def rescan(self) -> int:
        """Post-crash journal replay: rebuild the un-checkpointed set
        from the persisted journal.

        Scans every mapped journal block, finds the newest ``jepoch``
        marker, and replays (in write order) the ``jcommit`` records of
        that epoch — those are the acknowledged transactions whose pages
        have not yet reached their home locations.  Older epochs are
        ignored: their images may have been overwritten, and checkpoint
        already propagated them.  Returns the number of replayed
        transactions."""
        self._txn = None
        self._unckpt.clear()
        ssd = self.fs.ssd
        epoch = 0
        commits: List[Tuple[int, Tuple[Tuple[str, int], ...]]] = []
        for jblock in range(self.journal_blocks):
            if not ssd.ftl.is_mapped(self.journal.block_lpn(jblock)):
                continue
            record = self.journal.pread_block(jblock)
            if not isinstance(record, tuple) or not record:
                continue
            if record[0] == "jepoch":
                epoch = max(epoch, record[1])
            elif record[0] == "jcommit" and len(record) == 4:
                commits.append((record[2], record))
        replayed = 0
        end = 1 if epoch else 0
        for start, (__, rec_epoch, __start, targets) in sorted(commits):
            if rec_epoch != epoch:
                continue
            for offset, (path, block) in enumerate(targets):
                file = self.fs.open(path)
                self._unckpt[(id(file), block)] = (file, block,
                                                   start + offset)
            end = max(end, start + len(targets) + 1)
            replayed += 1
        self._epoch = epoch
        self._cursor = end
        return replayed
