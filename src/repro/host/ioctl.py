"""The share ioctl: file-level entry point of the SHARE command.

Applications address file blocks; the filesystem resolves them to device
LPNs and forwards batches of :class:`SharePair` to the device, exactly the
ioctl plumbing of Section 4 ("a user-level library that implements a
protocol for the new commands via the ioctl system call").

Batches larger than the device's atomic limit are split: each sub-batch is
atomic on its own, and the helpers return the number of device commands so
callers can reason about (and the stats can count) the round trips that
Section 3.2's batching argument is about.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import IoctlError
from repro.ftl.share_ext import SharePair
from repro.host.file import File


def share_ioctl(dst_file: File, dst_block: int, src_file: File,
                src_block: int, length: int = 1) -> int:
    """Remap ``length`` blocks of ``dst_file`` (starting at ``dst_block``)
    onto the physical pages of ``src_file``'s blocks.

    Returns the number of SHARE commands issued to the device.
    """
    if length < 1:
        raise IoctlError(f"length must be >= 1: {length}")
    if dst_file.fs is not src_file.fs:
        raise IoctlError("share across filesystems is impossible")
    pairs = [(dst_file.block_lpn(dst_block + i),
              src_file.block_lpn(src_block + i))
             for i in range(length)]
    return _issue(dst_file, pairs)


def share_file_ranges(dst_file: File, src_file: File,
                      ranges: Sequence[Tuple[int, int, int]]) -> int:
    """Batch form: each range is (dst_block, src_block, length).

    Used by the SHARE-based Couchbase compaction, which shares every valid
    document of the old file into the new file with as few round trips as
    possible.  Returns the number of device commands issued.
    """
    pairs: List[Tuple[int, int]] = []
    for dst_block, src_block, length in ranges:
        if length < 1:
            raise IoctlError(f"length must be >= 1: {length}")
        pairs.extend((dst_file.block_lpn(dst_block + i),
                      src_file.block_lpn(src_block + i))
                     for i in range(length))
    if not pairs:
        raise IoctlError("no ranges to share")
    return _issue(dst_file, pairs)


def atomic_write_ioctl(file: File, items: Sequence[Tuple[int, object]]) -> int:
    """Atomic multi-page write through the file layer: each item is
    (file block index, page image).  Used by the atomic-write baseline
    mode (Section 6.1); returns the number of device commands issued."""
    if not items:
        raise IoctlError("no pages to write atomically")
    ssd = file.fs.ssd
    limit = ssd.max_share_batch
    resolved = [(file.block_lpn(block), data) for block, data in items]
    commands = 0
    with ssd.telemetry.tracer.span("host.atomic_write_ioctl",
                                   pages=len(resolved)) as span:
        for start in range(0, len(resolved), limit):
            ssd.write_atomic(resolved[start:start + limit])
            commands += 1
        span.set(commands=commands)
    return commands


def _issue(any_file: File, lpn_pairs: Sequence[Tuple[int, int]]) -> int:
    ssd = any_file.fs.ssd
    if not ssd.supports_share:
        raise IoctlError("device does not support the SHARE command")
    limit = ssd.max_share_batch
    commands = 0
    with ssd.telemetry.tracer.span("host.share_ioctl",
                                   pairs=len(lpn_pairs)) as span:
        for start in range(0, len(lpn_pairs), limit):
            chunk = lpn_pairs[start:start + limit]
            ssd.share_batch([SharePair(dst, src) for dst, src in chunk])
            commands += 1
        span.set(commands=commands)
        ssd.telemetry.metrics.counter("host.ioctl.share_commands").inc(commands)
    return commands
