"""YCSB workloads A and F over the couchstore engine.

Section 5.3.2's setup: a database of key-value records (the paper used
250,000 x 4 KiB = 1 GB), a scrambled-zipfian key chooser, and two
workloads —

* **Workload A**: 50 % reads, 50 % updates,
* **Workload F**: 100 % read-modify-write.

The driver batches commits by ``batch_size`` (the engine's fsync
frequency knob the paper sweeps from 1 to 256 in Figures 7 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from repro.couchstore.engine import CouchStore
from repro.sim.clock import SimClock
from repro.sim.rng import ScrambledZipfian, ZipfianGenerator, make_rng
from repro.sim.stats import Histogram


class YcsbWorkload(Enum):
    """The full YCSB core workload suite.

    The paper evaluates only A and F ("all the workloads except for
    workload-A and workload-F are read-intensive"); B–E are implemented
    for completeness so the reproduction doubles as a general YCSB
    harness over the couch engine.
    """

    A = "workload-a"   # 50 % read / 50 % update
    B = "workload-b"   # 95 % read /  5 % update
    C = "workload-c"   # 100 % read
    D = "workload-d"   # 95 % read (latest) / 5 % insert
    E = "workload-e"   # 95 % scan / 5 % insert
    F = "workload-f"   # 100 % read-modify-write


@dataclass(frozen=True)
class YcsbConfig:
    """Workload shape.  ``record_count`` scales the database; the body
    filler makes each record one file block, matching the paper's 4 KiB
    average record."""

    record_count: int = 50_000
    zipf_theta: float = 0.99
    seed: int = 7


@dataclass
class YcsbResult:
    """One run's outcome for one (workload, batch size, mode) cell.

    ``completion_times_us`` (one entry per operation, virtual time at
    completion) supports throughput-over-time analysis; ``compactions``
    records each mid-run compaction as (start_us, elapsed_seconds).
    """

    workload: str
    batch_size: int
    operations: int
    elapsed_seconds: float
    reads: int
    writes: int
    commit_count: int
    latency_ms: Histogram
    completion_times_us: list = None
    compactions: list = None

    @property
    def throughput_ops(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.operations / self.elapsed_seconds

    def windowed_throughput(self, window_seconds: float) -> list:
        """Operations per second in consecutive windows of virtual time —
        the jitter view (stalls show up as low-throughput windows)."""
        if not self.completion_times_us:
            raise ValueError("run was executed without a timeline")
        window_us = window_seconds * 1e6
        if window_us <= 0:
            raise ValueError("window must be positive")
        end = self.completion_times_us[-1]
        counts = []
        boundary = self.completion_times_us[0] + window_us
        count = 0
        for t in self.completion_times_us:
            while t > boundary:
                counts.append(count / window_seconds)
                count = 0
                boundary += window_us
            count += 1
        counts.append(count / window_seconds)
        return counts


class YcsbDriver:
    """Loads the record set and runs a workload with commit batching."""

    #: Scan length for workload E (uniform in [1, MAX_SCAN]).
    MAX_SCAN = 50

    def __init__(self, store: CouchStore, clock: SimClock,
                 config: YcsbConfig = YcsbConfig()) -> None:
        self.store = store
        self.clock = clock
        self.config = config
        self._chooser = ScrambledZipfian(config.record_count,
                                         theta=config.zipf_theta,
                                         seed=config.seed)
        self._rng = make_rng(config.seed + 1)
        # Workload D's "latest" distribution needs an UNscrambled zipfian:
        # small draws must mean small offsets from the newest key.
        self._offset_chooser = ZipfianGenerator(
            config.record_count, theta=config.zipf_theta,
            rng=make_rng(config.seed + 2))
        self._versions = 0
        self._next_insert_key = config.record_count

    # ---------------------------------------------------------------- load

    def load(self, commit_every: int = 1000) -> None:
        """Insert every record (excluded from measurement by callers)."""
        for key in range(self.config.record_count):
            self.store.set(key, self._body(key, 0))
            if (key + 1) % commit_every == 0:
                self.store.commit()
        self.store.commit()

    @staticmethod
    def _body(key: int, version: int) -> tuple:
        return ("ycsb-record", key, version)

    # ----------------------------------------------------------------- run

    def run(self, workload: YcsbWorkload, operations: int,
            batch_size: int, auto_compact: bool = False,
            record_timeline: bool = False,
            concurrency: int = 1, sampler=None) -> YcsbResult:
        """Execute the workload; one "operation" is one YCSB op (a
        read-modify-write counts as one op, as YCSB reports it).

        With ``auto_compact``, the store compacts whenever its stale
        ratio crosses the configured threshold — mid-run, stalling the
        foreground operations exactly as Couchbase's background
        compaction stalls write transactions (Section 3.3's motivation
        for finishing compaction fast).  ``record_timeline`` captures
        per-op completion times for throughput-over-time analysis.

        With ``concurrency`` > 1, that many closed-loop clients issue
        operations through the device's real command queue (each client
        carries a :class:`~repro.ssd.ncq.DeviceSession`), so recorded
        latencies include queueing behind other clients.  Commits and
        compactions are shared barriers: the device drains and they run
        synchronously, stalling every client — matching the store's
        single-writer commit model.

        ``sampler`` (an :class:`repro.obs.Sampler`, optional) gates the
        per-operation latency recording: 1-in-N latencies land in the
        histogram while the read/write/throughput counts stay exact.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {batch_size}")
        from repro.ssd.ncq import DeviceSession, issuing
        reads = writes = 0
        latency = Histogram()
        start_us = self.clock.now_us
        pending = 0
        timeline = [] if record_timeline else None
        compactions = []
        device = self.store.fs.ssd   # survives mid-run compaction
        sessions = ([DeviceSession(client, start_us)
                     for client in range(concurrency)]
                    if concurrency > 1 else None)
        for index in range(operations):
            if sessions is not None:
                session = sessions[index % concurrency]
                # A shared barrier may have advanced the clock past this
                # client's cursor; it cannot issue into the past.
                if session.now_us < self.clock.now_us:
                    session.now_us = self.clock.now_us
                op_start = session.now_us
                with issuing(session, device):
                    reads_delta, writes_delta = self._one_op(workload)
                op_end = session.now_us
                device.poll(session.now_us)
            else:
                op_start = self.clock.now_us
                reads_delta, writes_delta = self._one_op(workload)
                op_end = self.clock.now_us
            reads += reads_delta
            writes += writes_delta
            pending += writes_delta
            if pending >= batch_size:
                if sessions is not None:
                    device.drain()
                self.store.commit()
                pending = 0
                if auto_compact and self.store.needs_compaction():
                    compactions.append(self._compact_inline())
            if sampler is None or sampler.hit():
                latency.record((op_end - op_start) / 1000.0)
            if timeline is not None:
                timeline.append(op_end)
        if sessions is not None:
            device.drain()
        if pending:
            self.store.commit()
        elapsed = (self.clock.now_us - start_us) / 1e6
        return YcsbResult(workload=workload.value, batch_size=batch_size,
                          operations=operations, elapsed_seconds=elapsed,
                          reads=reads, writes=writes,
                          commit_count=self.store.stats.commits,
                          latency_ms=latency,
                          completion_times_us=timeline,
                          compactions=compactions)

    def _compact_inline(self):
        from repro.couchstore.compaction import compact
        start_us = self.clock.now_us
        self.store, result = compact(self.store, self.clock)
        return (start_us, result.elapsed_seconds)

    # --------------------------------------------------------- op mixes

    def _one_op(self, workload: YcsbWorkload) -> Tuple[int, int]:
        """Execute one operation of the mix; returns (reads, writes)."""
        if workload is YcsbWorkload.F:
            key = self._chooser.next()
            self.store.get(key)
            self._update(key)
            return (1, 1)  # a read-modify-write does both
        if workload is YcsbWorkload.A:
            return self._read_or_update(update_fraction=0.5)
        if workload is YcsbWorkload.B:
            return self._read_or_update(update_fraction=0.05)
        if workload is YcsbWorkload.C:
            self.store.get(self._chooser.next())
            return (1, 0)
        if workload is YcsbWorkload.D:
            if self._rng.random() < 0.05:
                self._insert()
                return (0, 1)
            self.store.get(self._latest_key())
            return (1, 0)
        if workload is YcsbWorkload.E:
            if self._rng.random() < 0.05:
                self._insert()
                return (0, 1)
            start = self._chooser.next()
            self.store.scan(start, 1 + self._rng.randrange(self.MAX_SCAN))
            return (1, 0)
        raise ValueError(f"unknown workload: {workload}")

    def _read_or_update(self, update_fraction: float) -> Tuple[int, int]:
        key = self._chooser.next()
        if self._rng.random() < update_fraction:
            self._update(key)
            return (0, 1)
        self.store.get(key)
        return (1, 0)

    def _update(self, key: int) -> None:
        self._versions += 1
        self.store.set(key, self._body(key, self._versions))

    def _insert(self) -> None:
        key = self._next_insert_key
        self._next_insert_key += 1
        self._versions += 1
        self.store.set(key, self._body(key, self._versions))

    def _latest_key(self) -> int:
        """Workload D's 'latest' distribution: reads skew toward the most
        recently inserted keys."""
        span = self._next_insert_key
        offset = self._offset_chooser.next() % span
        return span - 1 - offset
