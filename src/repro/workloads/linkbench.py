"""LinkBench-style social-graph workload over the InnoDB engine.

LinkBench (Armstrong et al., SIGMOD'13) models Facebook's social graph:
nodes, typed directed links, and per-(node, type) link counts, driven by a
read-mostly mix (~70/30) of ten operation types.  This driver reproduces
the operation mix, the zipfian access skew, and — the part Table 1 needs —
per-operation latency recording with the paper's exact operation names.

The graph lives in three InnoDB tables:

* ``node``  — id -> payload,
* ``link``  — (id1, link_type, id2) -> payload,
* ``count`` — (id1, link_type) -> link count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.innodb.engine import InnoDBEngine
from repro.sim.clock import SimClock
from repro.sim.rng import ZipfianGenerator, make_rng
from repro.sim.stats import LatencyRecorder

#: Operation mix in percent — LinkBench's default workload distribution.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("Get_Node", 12.9),
    ("Update_Node", 7.4),
    ("Delete_Node", 1.0),
    ("ADD_Node", 2.6),
    ("Get_Link_List", 51.2),
    ("Count_Link", 4.9),
    ("Multiget_Link", 0.5),
    ("Add_Link", 9.0),
    ("Delete_Link", 3.0),
    ("Update_Link", 8.0),
)

READ_OPS = frozenset({"Get_Node", "Get_Link_List", "Count_Link",
                      "Multiget_Link"})
WRITE_OPS = frozenset({"Update_Node", "Delete_Node", "ADD_Node", "Add_Link",
                       "Delete_Link", "Update_Link"})

MAX_ID2 = 1 << 62
LINK_TYPES = 2


@dataclass(frozen=True)
class LinkBenchConfig:
    """Workload shape.

    ``node_count`` scales the database (the paper used a 1.5 GB database;
    the reproduction scales the page counts down, keeping the
    buffer-pool-to-database ratio).  ``links_per_node`` is the mean
    out-degree seeded at load time.
    """

    node_count: int = 10_000
    links_per_node: int = 5
    zipf_theta: float = 0.8
    link_list_limit: int = 20
    multiget_size: int = 4
    seed: int = 42


@dataclass
class LinkBenchResult:
    """One benchmark run's outcome."""

    transactions: int
    elapsed_seconds: float
    latencies: LatencyRecorder
    op_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_tps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.transactions / self.elapsed_seconds


class LinkBenchDriver:
    """Loads the graph and runs the timed operation stream."""

    def __init__(self, engine: InnoDBEngine, clock: SimClock,
                 config: LinkBenchConfig = LinkBenchConfig()) -> None:
        self.engine = engine
        self.clock = clock
        self.config = config
        self._rng = make_rng(config.seed)
        self._id_chooser = ZipfianGenerator(
            config.node_count, theta=config.zipf_theta,
            rng=make_rng(config.seed + 1))
        self._next_node_id = config.node_count
        self._ops: List[str] = [name for name, __ in DEFAULT_MIX]
        self._weights: List[float] = [weight for __, weight in DEFAULT_MIX]
        # Cumulative weights for the op draw: the run loop inlines what
        # random.choices(cum_weights=...) does — one random() scaled by
        # the total, then a bisect — so the drawn op sequence is
        # unchanged while the per-op choices() call (and its one-element
        # list) disappears.
        from itertools import accumulate
        self._cum_weights: List[float] = list(accumulate(self._weights))
        self._handlers = {name: getattr(self, "_op_" + name.lower())
                          for name in self._ops}

    # ---------------------------------------------------------------- load

    def load(self) -> None:
        """Populate the graph (excluded from measurement by the caller)."""
        engine = self.engine
        for table in ("node", "link", "count"):
            engine.create_table(table)
        config = self.config
        load_rng = make_rng(config.seed + 2)
        for node_id in range(config.node_count):
            with engine.transaction() as txn:
                txn.put("node", node_id, self._node_payload(node_id, 0))
                degree = load_rng.randrange(2 * config.links_per_node + 1)
                for __ in range(degree):
                    link_type = load_rng.randrange(LINK_TYPES)
                    id2 = load_rng.randrange(config.node_count)
                    txn.put("link", (node_id, link_type, id2),
                            self._link_payload(node_id, id2, 0))
                    key = (node_id, link_type)
                    current = txn.get("count", key) or 0
                    txn.put("count", key, current + 1)
        engine.checkpoint()

    @staticmethod
    def _node_payload(node_id: int, version: int) -> tuple:
        return ("node", node_id, version)

    @staticmethod
    def _link_payload(id1: int, id2: int, version: int) -> tuple:
        return ("link", id1, id2, version)

    # ----------------------------------------------------------------- run

    def run(self, transactions: int, concurrency: int = 1,
            sampler=None) -> LinkBenchResult:
        """Execute ``transactions`` operations, timing each one.

        ``sampler`` (an :class:`repro.obs.Sampler`, optional) gates the
        per-operation latency recording for low-overhead runs: with a
        1-in-N sampler only every Nth latency lands in the recorder,
        while ``op_counts`` and the throughput numbers stay exact.
        ``None`` (the default) records every operation, as before.

        With ``concurrency`` > 1 (the paper used 16 client threads), the
        stream is issued by that many closed-loop clients through the
        devices' real command queues: each client carries a
        :class:`~repro.ssd.ncq.DeviceSession` whose cursor is the time
        its next operation starts, so recorded latencies include the
        wait behind other clients' commands — the effect that makes
        SHARE's faster writes shorten read tails (Section 5.3.1,
        Table 1).  At the default device configuration (queue depth 1,
        one channel, a queue shared across the stack) admission fully
        serialises commands, and the recorded responses equal the old
        analytic :class:`~repro.sim.queueing.ClosedLoopQueue` replay
        exactly — ``tests/test_sim_queueing.py`` holds the two models
        to each other.  Deeper queues and more channels let commands
        overlap, which only this path can express.
        """
        from bisect import bisect_right
        from repro.ssd.ncq import DeviceSession
        recorder = LatencyRecorder()
        op_counts: Dict[str, int] = {}
        start_us = self.clock.now_us
        # Inline of random.choices(ops, cum_weights=..., k=1): one
        # random() scaled by the total, bisected against the cumulative
        # weights — bit-identical draw sequence, no per-op call.
        ops = self._ops
        cum_weights = self._cum_weights
        total_weight = cum_weights[-1] + 0.0
        hi = len(ops) - 1
        random_ = self._rng.random
        handlers = self._handlers
        record = recorder.record
        counts_get = op_counts.get
        if concurrency > 1:
            devices = self.engine.devices()
            sessions = [DeviceSession(client, start_us)
                        for client in range(concurrency)]
            # All of a stack's devices share one EventScheduler, so one
            # run_until per operation polls every device's completions;
            # keep a list in case a custom engine wires separate ones.
            schedulers = []
            for device in devices:
                if all(device.events is not ev for ev in schedulers):
                    schedulers.append(device.events)
            # Sessions are swapped by direct assignment (the issuing()
            # context manager costs ~7 calls per operation just to
            # attach/detach); the finally block restores synchronous
            # issue even if an operation raises.
            try:
                for index in range(transactions):
                    op = ops[bisect_right(cum_weights,
                                          random_() * total_weight, 0, hi)]
                    session = sessions[index % concurrency]
                    arrival = session.now_us
                    for device in devices:
                        device._session = session
                    handlers[op](index)
                    if sampler is None or sampler.hit():
                        record(op, (session.now_us - arrival) / 1000.0)
                    op_counts[op] = counts_get(op, 0) + 1
                    now = session.now_us
                    for scheduler in schedulers:
                        scheduler.run_until(now)
            finally:
                for device in devices:
                    device._session = None
            for device in devices:
                device.drain()
        else:
            clock = self.clock
            for index in range(transactions):
                op = ops[bisect_right(cum_weights,
                                      random_() * total_weight, 0, hi)]
                op_start = clock.now_us
                handlers[op](index)
                if sampler is None or sampler.hit():
                    record(op, (clock.now_us - op_start) / 1000.0)
                op_counts[op] = counts_get(op, 0) + 1
        elapsed = (self.clock.now_us - start_us) / 1e6
        return LinkBenchResult(transactions=transactions,
                               elapsed_seconds=elapsed,
                               latencies=recorder,
                               op_counts=op_counts)

    # ------------------------------------------------------------- op impl

    def _pick_id(self) -> int:
        return self._id_chooser.next()

    def _execute(self, op: str, index: int) -> None:
        self._handlers[op](index)

    def _op_get_node(self, index: int) -> None:
        with self.engine.transaction() as txn:
            txn.get("node", self._pick_id())

    def _op_update_node(self, index: int) -> None:
        node_id = self._pick_id()
        with self.engine.transaction() as txn:
            txn.put("node", node_id, self._node_payload(node_id, index))

    def _op_delete_node(self, index: int) -> None:
        node_id = self._pick_id()
        with self.engine.transaction() as txn:
            txn.delete("node", node_id)
            # LinkBench re-creates deleted ids lazily; keep the graph from
            # draining by reinserting a fresh shell row.
            txn.put("node", node_id, self._node_payload(node_id, -index))

    def _op_add_node(self, index: int) -> None:
        node_id = self._next_node_id
        self._next_node_id += 1
        with self.engine.transaction() as txn:
            txn.put("node", node_id, self._node_payload(node_id, index))

    def _op_get_link_list(self, index: int) -> None:
        id1 = self._pick_id()
        link_type = self._rng.randrange(LINK_TYPES)
        with self.engine.transaction() as txn:
            txn.range("link", (id1, link_type, -1),
                      (id1, link_type, MAX_ID2),
                      limit=self.config.link_list_limit)

    def _op_count_link(self, index: int) -> None:
        with self.engine.transaction() as txn:
            txn.get("count", (self._pick_id(), self._rng.randrange(LINK_TYPES)))

    def _op_multiget_link(self, index: int) -> None:
        id1 = self._pick_id()
        link_type = self._rng.randrange(LINK_TYPES)
        with self.engine.transaction() as txn:
            for __ in range(self.config.multiget_size):
                id2 = self._rng.randrange(self.config.node_count)
                txn.get("link", (id1, link_type, id2))

    def _op_add_link(self, index: int) -> None:
        id1 = self._pick_id()
        id2 = self._rng.randrange(self.config.node_count)
        link_type = self._rng.randrange(LINK_TYPES)
        with self.engine.transaction() as txn:
            was_new = txn.put("link", (id1, link_type, id2),
                              self._link_payload(id1, id2, index))
            if was_new:
                key = (id1, link_type)
                txn.put("count", key, (txn.get("count", key) or 0) + 1)

    def _op_delete_link(self, index: int) -> None:
        id1 = self._pick_id()
        link_type = self._rng.randrange(LINK_TYPES)
        with self.engine.transaction() as txn:
            links = txn.range("link", (id1, link_type, -1),
                              (id1, link_type, MAX_ID2), limit=1)
            if links:
                key = links[0][0]
                txn.delete("link", key)
                count_key = (id1, link_type)
                current = txn.get("count", count_key) or 1
                txn.put("count", count_key, max(0, current - 1))

    def _op_update_link(self, index: int) -> None:
        id1 = self._pick_id()
        link_type = self._rng.randrange(LINK_TYPES)
        with self.engine.transaction() as txn:
            links = txn.range("link", (id1, link_type, -1),
                              (id1, link_type, MAX_ID2), limit=1)
            if links:
                key = links[0][0]
                txn.put("link", key, self._link_payload(key[0], key[2], index))
            else:
                id2 = self._rng.randrange(self.config.node_count)
                txn.put("link", (id1, link_type, id2),
                        self._link_payload(id1, id2, index))

class ClusterLinkBenchDriver:
    """The LinkBench mix as a key-value stream over a sharded tier.

    Same ten-operation distribution, zipfian skew, and per-operation
    latency recording as :class:`LinkBenchDriver`, but issued against a
    :class:`~repro.cluster.router.ShardRouter` instead of one engine:
    nodes, links, and counts become KV pairs spread over the shards by
    consistent hashing, ``Get_Link_List``/``Multiget_Link`` become
    bounded multigets (a KV tier has no ordered range scan), and
    ``Update_Node`` periodically snapshots the node through the router's
    SHARE path so replication carries real remap records.

    ``concurrency`` closed-loop clients each carry a
    :class:`~repro.ssd.ncq.DeviceSession`; ops from different clients
    overlap in device time, and a shard's bounded queue backpressures
    only the clients that hash onto it.  Replication to the peer devices
    is pumped every ``pump_every`` operations (and once at the end), so
    the replicas trail the primaries by a bounded delta-log lag — the
    window failover replay has to cover.
    """

    #: Every this many Update_Node ops, refresh the node's SHARE snapshot.
    SNAPSHOT_EVERY = 4

    def __init__(self, router, clock: SimClock,
                 config: LinkBenchConfig = LinkBenchConfig(),
                 pump_every: int = 16) -> None:
        self.router = router
        self.clock = clock
        self.config = config
        self.pump_every = pump_every
        self._rng = make_rng(config.seed)
        self._id_chooser = ZipfianGenerator(
            config.node_count, theta=config.zipf_theta,
            rng=make_rng(config.seed + 1))
        self._next_node_id = config.node_count
        self._updates = 0
        self._ops: List[str] = [name for name, __ in DEFAULT_MIX]
        from itertools import accumulate
        self._cum_weights: List[float] = list(
            accumulate(weight for __, weight in DEFAULT_MIX))
        self._handlers = {name: getattr(self, "_op_" + name.lower())
                          for name in self._ops}

    # ---------------------------------------------------------------- load

    def load(self) -> None:
        """Seed nodes, links, and counts (excluded from measurement)."""
        router = self.router
        config = self.config
        load_rng = make_rng(config.seed + 2)
        for node_id in range(config.node_count):
            router.put(("node", node_id),
                       ("node", node_id, 0))
            degree = load_rng.randrange(2 * config.links_per_node + 1)
            counts: Dict[Tuple[int, int], int] = {}
            for __ in range(degree):
                link_type = load_rng.randrange(LINK_TYPES)
                id2 = load_rng.randrange(config.node_count)
                router.put(("link", node_id, link_type, id2),
                           ("link", node_id, id2, 0))
                key = (node_id, link_type)
                counts[key] = counts.get(key, 0) + 1
            for (id1, link_type), count in counts.items():
                router.put(("count", id1, link_type), count)
        router.pump_replication()
        router.drain()

    # ----------------------------------------------------------------- run

    def run(self, operations: int, concurrency: int = 1,
            sampler=None) -> LinkBenchResult:
        """Execute ``operations`` KV transactions, timing each one."""
        from bisect import bisect_right
        from repro.ssd.ncq import DeviceSession
        router = self.router
        recorder = LatencyRecorder()
        op_counts: Dict[str, int] = {}
        start_us = self.clock.now_us
        ops = self._ops
        cum_weights = self._cum_weights
        total_weight = cum_weights[-1] + 0.0
        hi = len(ops) - 1
        random_ = self._rng.random
        handlers = self._handlers
        record = recorder.record
        counts_get = op_counts.get
        pump_every = self.pump_every
        sessions = [DeviceSession(client, start_us)
                    for client in range(max(1, concurrency))]
        schedulers = []
        for device in router.devices:
            if all(device.events is not ev for ev in schedulers):
                schedulers.append(device.events)
        try:
            for index in range(operations):
                op = ops[bisect_right(cum_weights,
                                      random_() * total_weight, 0, hi)]
                session = sessions[index % len(sessions)]
                arrival = session.now_us
                router.use_session(session)
                handlers[op](index)
                if sampler is None or sampler.hit():
                    record(op, (session.now_us - arrival) / 1000.0)
                op_counts[op] = counts_get(op, 0) + 1
                now = session.now_us
                for scheduler in schedulers:
                    scheduler.run_until(now)
                if pump_every and (index + 1) % pump_every == 0:
                    router.use_session(None)
                    router.pump_replication()
        finally:
            router.use_session(None)
        router.pump_replication()
        router.drain()
        elapsed = (self.clock.now_us - start_us) / 1e6
        return LinkBenchResult(transactions=operations,
                               elapsed_seconds=elapsed,
                               latencies=recorder,
                               op_counts=op_counts)

    # ------------------------------------------------------------- op impl

    def _pick_id(self) -> int:
        return self._id_chooser.next()

    def _op_get_node(self, index: int) -> None:
        self.router.get(("node", self._pick_id()))

    def _op_update_node(self, index: int) -> None:
        node_id = self._pick_id()
        router = self.router
        router.put(("node", node_id), ("node", node_id, index))
        self._updates += 1
        if self._updates % self.SNAPSHOT_EVERY == 0:
            # Snapshot-by-remap: the couchstore trick at the KV tier.
            router.share(("snap", node_id), ("node", node_id))

    def _op_delete_node(self, index: int) -> None:
        node_id = self._pick_id()
        router = self.router
        router.delete(("node", node_id))
        router.put(("node", node_id), ("node", node_id, -index))

    def _op_add_node(self, index: int) -> None:
        node_id = self._next_node_id
        self._next_node_id += 1
        self.router.put(("node", node_id), ("node", node_id, index))

    def _op_get_link_list(self, index: int) -> None:
        id1 = self._pick_id()
        link_type = self._rng.randrange(LINK_TYPES)
        router = self.router
        router.get(("count", id1, link_type))
        for __ in range(min(4, self.config.link_list_limit)):
            id2 = self._rng.randrange(self.config.node_count)
            router.get(("link", id1, link_type, id2))

    def _op_count_link(self, index: int) -> None:
        self.router.get(("count", self._pick_id(),
                         self._rng.randrange(LINK_TYPES)))

    def _op_multiget_link(self, index: int) -> None:
        id1 = self._pick_id()
        link_type = self._rng.randrange(LINK_TYPES)
        for __ in range(self.config.multiget_size):
            id2 = self._rng.randrange(self.config.node_count)
            self.router.get(("link", id1, link_type, id2))

    def _op_add_link(self, index: int) -> None:
        id1 = self._pick_id()
        id2 = self._rng.randrange(self.config.node_count)
        link_type = self._rng.randrange(LINK_TYPES)
        router = self.router
        key = ("link", id1, link_type, id2)
        was_new = router.get(key) is None
        router.put(key, ("link", id1, id2, index))
        if was_new:
            count_key = ("count", id1, link_type)
            router.put(count_key, (router.get(count_key) or 0) + 1)

    def _op_delete_link(self, index: int) -> None:
        id1 = self._pick_id()
        id2 = self._rng.randrange(self.config.node_count)
        link_type = self._rng.randrange(LINK_TYPES)
        router = self.router
        if router.delete(("link", id1, link_type, id2)) is not None:
            count_key = ("count", id1, link_type)
            current = router.get(count_key) or 1
            router.put(count_key, max(0, current - 1))

    def _op_update_link(self, index: int) -> None:
        id1 = self._pick_id()
        id2 = self._rng.randrange(self.config.node_count)
        link_type = self._rng.randrange(LINK_TYPES)
        self.router.put(("link", id1, link_type, id2),
                        ("link", id1, id2, index))
