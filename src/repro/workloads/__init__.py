"""Benchmark workloads: LinkBench (MySQL/InnoDB), YCSB A/F (Couchbase),
and a pgbench-style TPC-B mix (PostgreSQL)."""

from repro.workloads.linkbench import LinkBenchConfig, LinkBenchDriver, LinkBenchResult
from repro.workloads.pgbench import PgBenchConfig, PgBenchResult, run_pgbench
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, YcsbResult, YcsbWorkload

__all__ = [
    "LinkBenchConfig",
    "LinkBenchDriver",
    "LinkBenchResult",
    "PgBenchConfig",
    "PgBenchResult",
    "run_pgbench",
    "YcsbConfig",
    "YcsbDriver",
    "YcsbResult",
    "YcsbWorkload",
]
