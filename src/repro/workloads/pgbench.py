"""pgbench-style TPC-B transaction mix for the PostgreSQL engine.

One transaction (pgbench's default script):

1. UPDATE one row of ``accounts`` (the large table, random row),
2. UPDATE one row of ``tellers``,
3. UPDATE one row of ``branches``,
4. INSERT one row into ``history``,
5. COMMIT (WAL fsync).

The paper's in-text experiment toggles ``full_page_writes`` and observes
~2x throughput and a WAL-volume reduction of roughly the data-page volume
the images occupied; :func:`run_pgbench` measures both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.postgres.engine import PostgresEngine
from repro.sim.clock import SimClock
from repro.sim.rng import make_rng

#: pgbench scale factor unit sizes.
ACCOUNTS_PER_BRANCH = 10_000
TELLERS_PER_BRANCH = 10


@dataclass(frozen=True)
class PgBenchConfig:
    """Scale and seed."""

    scale: int = 2
    seed: int = 9

    @property
    def accounts(self) -> int:
        return self.scale * ACCOUNTS_PER_BRANCH

    @property
    def tellers(self) -> int:
        return self.scale * TELLERS_PER_BRANCH

    @property
    def branches(self) -> int:
        return self.scale


@dataclass
class PgBenchResult:
    """One run's throughput and WAL accounting."""

    transactions: int
    elapsed_seconds: float
    wal_bytes: int
    wal_full_page_bytes: int
    wal_record_bytes: int
    full_page_writes: bool

    @property
    def throughput_tps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.transactions / self.elapsed_seconds


def setup_pgbench(engine: PostgresEngine, config: PgBenchConfig) -> None:
    """Create and fill the four pgbench tables."""
    engine.create_table("accounts", config.accounts)
    engine.create_table("tellers", config.tellers)
    engine.create_table("branches", config.branches)
    engine.create_table("history", config.accounts)  # generous headroom
    engine.checkpoint()


def run_pgbench(engine: PostgresEngine, clock: SimClock,
                transactions: int,
                config: PgBenchConfig = PgBenchConfig()) -> PgBenchResult:
    """Run the timed transaction stream (tables must exist)."""
    rng = make_rng(config.seed)
    wal_before = engine.wal_stats.total_bytes
    fpi_before = engine.wal_stats.full_page_bytes
    rec_before = engine.wal_stats.record_bytes
    start_us = clock.now_us
    history_cursor = 0
    for index in range(transactions):
        account = rng.randrange(config.accounts)
        teller = rng.randrange(config.tellers)
        branch = rng.randrange(config.branches)
        delta = rng.randrange(-5000, 5000)
        engine.update_row("accounts", account, ("bal", index, delta))
        engine.update_row("tellers", teller, ("tbal", index, delta))
        engine.update_row("branches", branch, ("bbal", index, delta))
        engine.insert_row("history", history_cursor % config.accounts,
                          ("hist", index, account, delta))
        history_cursor += 1
        engine.commit()
    elapsed = (clock.now_us - start_us) / 1e6
    stats = engine.wal_stats
    return PgBenchResult(
        transactions=transactions,
        elapsed_seconds=elapsed,
        wal_bytes=stats.total_bytes - wal_before,
        wal_full_page_bytes=stats.full_page_bytes - fpi_before,
        wal_record_bytes=stats.record_bytes - rec_before,
        full_page_writes=engine.config.full_page_writes,
    )
