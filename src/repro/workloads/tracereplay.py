"""Block-trace replay onto the simulated device.

Lets users drive the SHARE SSD with recorded or synthesized block traces
instead of the built-in benchmarks — the classic trace-driven-simulation
workflow.  The format is one operation per line::

    W <lpn> [count]      # write `count` pages starting at lpn
    R <lpn> [count]      # read
    T <lpn> [count]      # trim
    S <dst> <src> [len]  # share
    F                    # flush

``#`` starts a comment; blank lines are ignored.  :func:`replay` returns
the device-side accounting plus the virtual elapsed time, so two traces
(or one trace against two device configs) can be compared directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.errors import ReproError
from repro.ssd.device import Ssd


class TraceFormatError(ReproError):
    """Raised for unparsable trace lines."""


@dataclass(frozen=True)
class TraceOp:
    """One parsed trace operation."""

    kind: str                # "W" | "R" | "T" | "S" | "F"
    lpn: int = 0
    count: int = 1
    src_lpn: int = 0

    def format(self) -> str:
        if self.kind == "F":
            return "F"
        if self.kind == "S":
            return f"S {self.lpn} {self.src_lpn} {self.count}"
        return f"{self.kind} {self.lpn} {self.count}"


@dataclass
class ReplayResult:
    """Accounting of one replay."""

    operations: int
    elapsed_seconds: float
    host_write_pages: int
    host_read_pages: int
    share_pairs: int
    gc_events: int
    copyback_pages: int
    write_amplification: float


def parse_trace(lines: Iterable[str]) -> Iterator[TraceOp]:
    """Parse trace text into operations, validating as it goes."""
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        kind = fields[0].upper()
        try:
            if kind == "F":
                yield TraceOp("F")
            elif kind in ("W", "R", "T"):
                lpn = int(fields[1])
                count = int(fields[2]) if len(fields) > 2 else 1
                yield TraceOp(kind, lpn=lpn, count=count)
            elif kind == "S":
                dst = int(fields[1])
                src = int(fields[2])
                length = int(fields[3]) if len(fields) > 3 else 1
                yield TraceOp("S", lpn=dst, count=length, src_lpn=src)
            else:
                raise TraceFormatError(
                    f"line {line_number}: unknown op {kind!r}")
        except (IndexError, ValueError) as exc:
            raise TraceFormatError(
                f"line {line_number}: malformed {line!r}") from exc


def replay(ssd: Ssd, ops: Iterable[TraceOp],
           payload_tag: str = "trace") -> ReplayResult:
    """Execute operations against the device and report the accounting.

    Counters and the clock are reset at the start so the result covers
    exactly this trace.
    """
    ssd.reset_measurement()
    ssd.clock.reset()
    executed = 0
    for op in ops:
        if op.kind == "W":
            for offset in range(op.count):
                ssd.write(op.lpn + offset, (payload_tag, op.lpn + offset))
        elif op.kind == "R":
            for offset in range(op.count):
                ssd.read(op.lpn + offset)
        elif op.kind == "T":
            ssd.trim(op.lpn, op.count)
        elif op.kind == "S":
            ssd.share(op.lpn, op.src_lpn, op.count)
        elif op.kind == "F":
            ssd.flush()
        executed += 1
    stats = ssd.stats
    return ReplayResult(
        operations=executed,
        elapsed_seconds=ssd.clock.now_seconds,
        host_write_pages=stats.host_write_pages,
        host_read_pages=stats.host_read_pages,
        share_pairs=stats.share_pairs,
        gc_events=stats.gc_events,
        copyback_pages=stats.copyback_pages,
        write_amplification=stats.write_amplification)


def synthesize_trace(logical_pages: int, operations: int,
                     write_fraction: float = 0.7,
                     hot_fraction: float = 0.2,
                     hot_access_fraction: float = 0.8,
                     seed: int = 0) -> List[TraceOp]:
    """Generate a hot/cold random trace (the usual aging/GC-study shape).

    ``hot_fraction`` of the address space receives
    ``hot_access_fraction`` of the accesses.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"write_fraction must be in [0, 1]: {write_fraction}")
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError(f"hot_fraction must be in (0, 1): {hot_fraction}")
    if not 0.0 < hot_access_fraction < 1.0:
        raise ValueError(
            f"hot_access_fraction must be in (0, 1): {hot_access_fraction}")
    rng = random.Random(seed)
    hot_span = max(1, int(logical_pages * hot_fraction))
    ops: List[TraceOp] = []
    written = set()
    for __ in range(operations):
        if rng.random() < hot_access_fraction:
            lpn = rng.randrange(hot_span)
        else:
            lpn = hot_span + rng.randrange(max(1, logical_pages - hot_span))
        if rng.random() < write_fraction or lpn not in written:
            ops.append(TraceOp("W", lpn=lpn))
            written.add(lpn)
        else:
            ops.append(TraceOp("R", lpn=lpn))
    return ops


def dump_trace(ops: Iterable[TraceOp]) -> str:
    """Serialise operations back to the text format."""
    return "\n".join(op.format() for op in ops) + "\n"
