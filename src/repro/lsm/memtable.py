"""The in-memory write buffer of the LSM store."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.lsm.sstable import TOMBSTONE


class Memtable:
    """Mutable key-value buffer; deletes are tombstones so they shadow
    older on-disk versions until compaction drops them."""

    def __init__(self) -> None:
        self._entries: Dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = value

    def delete(self, key: Any) -> None:
        self._entries[key] = TOMBSTONE

    def get(self, key: Any) -> Optional[Any]:
        """The buffered value, TOMBSTONE, or None when absent."""
        return self._entries.get(key)

    def sorted_items(self) -> List[Tuple[Any, Any]]:
        return sorted(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self.sorted_items())
