"""LSM merge compaction: classic copy vs SHARE-assisted zero-copy.

The merge takes runs ordered newest-first, keeps the newest version of
each key, and drops tombstones (this is a full merge into the bottom
level).  In SHARE mode, a whole input data block is *reused* — remapped
into the output run with one SHARE range instead of being read and
rewritten — when the index fences prove that:

1. every remaining key of every other input is strictly greater than the
   block's last key (nothing interleaves or shadows it),
2. the block's first key is greater than the last key already emitted
   (nothing in it was superseded earlier in the merge),
3. the block contains no tombstones (those must be dropped).

Under skewed updates the bulk of the bottom level is cold and satisfies
these conditions, so most of the data "moves" without any I/O — the LSM
analogue of the paper's Couchbase compaction (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, List, Optional, Sequence, Tuple

from repro.host.filesystem import HostFs
from repro.host.ioctl import share_file_ranges
from repro.lsm.sstable import (
    _DATA_TAG,
    _FOOTER_TAG,
    TOMBSTONE,
    BlockMeta,
    SSTable,
)
from repro.sim.clock import SimClock


class CompactionMode(Enum):
    """How surviving data reaches the output run."""

    COPY = "copy"
    SHARE = "share"


@dataclass(frozen=True)
class LsmCompactionResult:
    """Accounting of one merge."""

    mode: str
    elapsed_seconds: float
    entries_out: int
    blocks_written: int
    blocks_shared: int
    share_commands: int

    @property
    def blocks_total(self) -> int:
        return self.blocks_written + self.blocks_shared


class _RunCursor:
    """Merge-side view of one input run: walks blocks and entries."""

    def __init__(self, table: SSTable, priority: int) -> None:
        self.table = table
        self.priority = priority          # lower = newer run
        self.block_number = 0
        self.entry_pos = 0
        self._entries: Optional[Tuple] = None

    def exhausted(self) -> bool:
        return self.block_number >= self.table.data_block_count

    def at_block_start(self) -> bool:
        return self.entry_pos == 0

    def current_meta(self) -> BlockMeta:
        return self.table.block_meta(self.block_number)

    def current_key(self) -> Any:
        """Smallest remaining key; from the fence when at a block start
        (no read), from the loaded block otherwise."""
        if self.at_block_start():
            return self.current_meta().first_key
        return self._load()[self.entry_pos][0]

    def _load(self) -> Tuple:
        if self._entries is None:
            self._entries = self.table._block_entries(self.block_number)
        return self._entries

    def pop_entry(self) -> Tuple[Any, Any]:
        entries = self._load()
        entry = entries[self.entry_pos]
        self.entry_pos += 1
        if self.entry_pos >= len(entries):
            self.block_number += 1
            self.entry_pos = 0
            self._entries = None
        return entry

    def skip_block(self) -> None:
        """Advance past the current (reused) block without reading it."""
        assert self.at_block_start()
        self.block_number += 1
        self._entries = None


def merge_compact(fs: HostFs, runs_newest_first: Sequence[SSTable],
                  out_path: str, mode: CompactionMode,
                  clock: SimClock,
                  block_capacity: Optional[int] = None
                  ) -> Tuple[SSTable, LsmCompactionResult]:
    """Merge ``runs_newest_first`` into a fresh bottom-level run."""
    start_us = clock.now_us
    if block_capacity is None:
        block_capacity = (runs_newest_first[0].block_capacity
                          if runs_newest_first else 16)
    cursors = [_RunCursor(table, priority)
               for priority, table in enumerate(runs_newest_first)]
    units: List[tuple] = []    # ("copy", entries) | ("reuse", cursor, block)
    buffer: List[Tuple[Any, Any]] = []
    last_emitted: Optional[Any] = None

    def flush_buffer() -> None:
        if buffer:
            units.append(("copy", tuple(buffer)))
            buffer.clear()

    def reusable_cursor() -> Optional[_RunCursor]:
        if mode is not CompactionMode.SHARE:
            return None
        live = [c for c in cursors if not c.exhausted()]
        for cursor in live:
            if not cursor.at_block_start():
                continue
            meta = cursor.current_meta()
            if meta.has_tombstone:
                continue
            if last_emitted is not None and not meta.first_key > last_emitted:
                continue
            others_clear = all(
                other is cursor or other.exhausted()
                or other.current_key() > meta.last_key
                for other in live)
            if others_clear:
                return cursor
        return None

    while any(not cursor.exhausted() for cursor in cursors):
        reuse = reusable_cursor()
        if reuse is not None:
            # Everything buffered precedes the reused block in key order.
            flush_buffer()
            meta = reuse.current_meta()
            units.append(("reuse", reuse, reuse.block_number))
            last_emitted = meta.last_key
            reuse.skip_block()
            continue
        # Entry-wise merge step: take the globally smallest key, newest
        # run wins ties; older duplicates are consumed and dropped.
        live = [c for c in cursors if not c.exhausted()]
        smallest = min(c.current_key() for c in live)
        winner = min((c for c in live if c.current_key() == smallest),
                     key=lambda c: c.priority)
        key, value = winner.pop_entry()
        for other in cursors:
            while (not other.exhausted() and other is not winner
                   and other.current_key() == key):
                other.pop_entry()
        last_emitted = key
        if value is TOMBSTONE:
            continue
        buffer.append((key, value))
        if len(buffer) >= block_capacity:
            flush_buffer()
    flush_buffer()

    table, written, shared, commands = _write_output(
        fs, out_path, units, block_capacity)
    elapsed = (clock.now_us - start_us) / 1e6
    return table, LsmCompactionResult(
        mode=mode.value, elapsed_seconds=elapsed,
        entries_out=table.entry_count, blocks_written=written,
        blocks_shared=shared, share_commands=commands)


def _write_output(fs: HostFs, out_path: str, units: List[tuple],
                  block_capacity: int) -> Tuple[SSTable, int, int, int]:
    """Materialise the merge plan: write fresh blocks, SHARE reused ones."""
    file = fs.create(out_path)
    file.fallocate(len(units) + 1)
    index: List[BlockMeta] = []
    entry_count = 0
    written = 0
    share_ranges: List[Tuple[int, SSTable, int]] = []
    for out_block, unit in enumerate(units):
        if unit[0] == "copy":
            entries = unit[1]
            file.pwrite_block(out_block, (_DATA_TAG, entries))
            written += 1
            index.append(BlockMeta(entries[0][0], entries[-1][0], False,
                                   len(entries)))
            entry_count += len(entries)
        else:
            __, cursor, block_number = unit
            meta = cursor.table.block_meta(block_number)
            share_ranges.append((out_block, cursor.table, block_number))
            index.append(BlockMeta(meta.first_key, meta.last_key, False,
                                   meta.entry_count))
            entry_count += meta.entry_count
    commands = 0
    if share_ranges:
        by_table: dict = {}
        for out_block, table, src_block in share_ranges:
            by_table.setdefault(table, []).append((out_block, src_block, 1))
        for table, ranges in by_table.items():
            commands += share_file_ranges(file, table.file, ranges)
    file.pwrite_block(len(units), (
        _FOOTER_TAG, tuple(meta.as_tuple() for meta in index),
        entry_count, block_capacity))
    file.fsync()
    table = SSTable(fs, file, index, entry_count, block_capacity)
    return table, written, len(share_ranges), commands
