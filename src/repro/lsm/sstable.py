"""Immutable sorted runs (SSTables) on the host filesystem.

An SSTable is one file: ``entry_count_blocks`` data blocks (each holding
up to ``block_capacity`` sorted entries) followed by one footer block
carrying the sparse index (first key of every data block).  The index is
cached in memory after open, like real SSTable index blocks; data blocks
are read from the device on every probe.

Data blocks are the unit SHARE-assisted compaction remaps: a block whose
entries all survive a merge unchanged moves to the output run without
being rewritten.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.host.file import File
from repro.host.filesystem import HostFs


class _Tombstone:
    """Sentinel marking a deleted key until compaction drops it."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<tombstone>"


TOMBSTONE = _Tombstone()

_DATA_TAG = "sst-data"
_FOOTER_TAG = "sst-footer"


class BlockMeta:
    """Per-data-block index entry: key fence, tombstone flag, and entry
    count, so SHARE compaction can prove a block reusable — and account
    for it — without reading it."""

    __slots__ = ("first_key", "last_key", "has_tombstone", "entry_count")

    def __init__(self, first_key: Any, last_key: Any,
                 has_tombstone: bool, entry_count: int) -> None:
        self.first_key = first_key
        self.last_key = last_key
        self.has_tombstone = has_tombstone
        self.entry_count = entry_count

    def as_tuple(self) -> tuple:
        return (self.first_key, self.last_key, self.has_tombstone,
                self.entry_count)


class SSTable:
    """One immutable sorted run."""

    def __init__(self, fs: HostFs, file: File, index: List[BlockMeta],
                 entry_count: int, block_capacity: int) -> None:
        self.fs = fs
        self.file = file
        self._index = index
        self._first_keys = [meta.first_key for meta in index]
        self.entry_count = entry_count
        self.block_capacity = block_capacity

    # ------------------------------------------------------------ create

    @classmethod
    def build(cls, fs: HostFs, path: str,
              sorted_entries: Sequence[Tuple[Any, Any]],
              block_capacity: int = 16) -> "SSTable":
        """Write a new run from already-sorted, de-duplicated entries."""
        if block_capacity < 1:
            raise ValueError(f"block_capacity must be >= 1: {block_capacity}")
        file = fs.create(path)
        index: List[BlockMeta] = []
        block_count = -(-len(sorted_entries) // block_capacity) \
            if sorted_entries else 0
        file.fallocate(block_count + 1)
        for block_number in range(block_count):
            chunk = tuple(sorted_entries[block_number * block_capacity:
                                         (block_number + 1) * block_capacity])
            index.append(BlockMeta(
                chunk[0][0], chunk[-1][0],
                any(value is TOMBSTONE for __, value in chunk),
                len(chunk)))
            file.pwrite_block(block_number, (_DATA_TAG, chunk))
        file.pwrite_block(block_count, (
            _FOOTER_TAG, tuple(meta.as_tuple() for meta in index),
            len(sorted_entries), block_capacity))
        file.fsync()
        return cls(fs, file, index, len(sorted_entries), block_capacity)

    @classmethod
    def open(cls, fs: HostFs, path: str) -> "SSTable":
        """Reopen a run: one footer read rebuilds the in-memory index."""
        file = fs.open(path)
        footer = file.pread_block(file.block_count - 1)
        if not (isinstance(footer, tuple) and footer[0] == _FOOTER_TAG):
            raise EngineError(f"{path}: last block is not an SSTable footer")
        __, raw_index, entry_count, block_capacity = footer
        index = [BlockMeta(*entry) for entry in raw_index]
        return cls(fs, file, index, entry_count, block_capacity)

    # ------------------------------------------------------------- reads

    @property
    def path(self) -> str:
        return self.file.path

    @property
    def data_block_count(self) -> int:
        return len(self._index)

    @property
    def min_key(self) -> Optional[Any]:
        return self._index[0].first_key if self._index else None

    @property
    def max_key(self) -> Optional[Any]:
        return self._index[-1].last_key if self._index else None

    def block_meta(self, block_number: int) -> BlockMeta:
        return self._index[block_number]

    def block_entry_count(self, block_number: int) -> int:
        return self._index[block_number].entry_count

    def _block_entries(self, block_number: int) -> Tuple:
        record = self.file.pread_block(block_number)
        if not (isinstance(record, tuple) and record[0] == _DATA_TAG):
            raise EngineError(
                f"{self.path}: block {block_number} is not a data block")
        return record[1]

    def get(self, key: Any) -> Optional[Any]:
        """Value for key (may be TOMBSTONE), or None when not in this run.

        Costs one data-block read when the sparse index says the key could
        be present.
        """
        if not self._index:
            return None
        block_number = bisect.bisect_right(self._first_keys, key) - 1
        if block_number < 0:
            return None
        if key > self._index[block_number].last_key:
            return None  # key falls in a fence gap: no read needed
        entries = self._block_entries(block_number)
        keys = [k for k, __ in entries]
        position = bisect.bisect_left(keys, key)
        if position < len(keys) and keys[position] == key:
            return entries[position][1]
        return None

    def block_items(self) -> Iterator[Tuple[int, Tuple]]:
        """(block number, entries) over every data block in key order."""
        for block_number in range(len(self._index)):
            yield block_number, self._block_entries(block_number)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for __, entries in self.block_items():
            for key, value in entries:
                yield key, value

    def key_range(self) -> Tuple[Any, Any]:
        """(min key, max key) of the run, straight from the index."""
        if not self._index:
            raise EngineError("empty SSTable has no key range")
        return self._index[0].first_key, self._index[-1].last_key
