"""The LSM store: memtable + WAL + L0 runs + one bottom (L1) run.

Writes buffer in the memtable and append to a write-ahead log (durable at
:meth:`commit`); a full memtable flushes to a fresh L0 SSTable; when L0
accumulates ``l0_limit`` runs they merge — together with the current L1
run — into a new L1 via :func:`repro.lsm.compaction.merge_compact`, in
either COPY or SHARE mode.  A single-block manifest records the live file
set so :meth:`reopen` can recover after a crash (manifest rewrite is a
single page write, atomic on the simulated device).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import EngineError
from repro.host.filesystem import HostFs
from repro.lsm.compaction import (
    CompactionMode,
    LsmCompactionResult,
    merge_compact,
)
from repro.lsm.memtable import Memtable
from repro.lsm.sstable import TOMBSTONE, SSTable
from repro.sim.clock import SimClock

_MANIFEST_TAG = "lsm-manifest"
_WAL_TAG = "lsm-wal"


@dataclass(frozen=True)
class LsmConfig:
    """Store shape."""

    memtable_limit: int = 512
    l0_limit: int = 4
    block_capacity: int = 16

    def __post_init__(self) -> None:
        if self.memtable_limit < 1:
            raise ValueError(f"memtable_limit must be >= 1: {self.memtable_limit}")
        if self.l0_limit < 1:
            raise ValueError(f"l0_limit must be >= 1: {self.l0_limit}")
        if self.block_capacity < 1:
            raise ValueError(f"block_capacity must be >= 1: {self.block_capacity}")


@dataclass
class LsmStats:
    flushes: int = 0
    compactions: int = 0
    wal_pages: int = 0
    compaction_results: List[LsmCompactionResult] = field(default_factory=list)


class LsmStore:
    """A two-level LSM key-value store."""

    def __init__(self, fs: HostFs, name: str, mode: CompactionMode,
                 clock: SimClock,
                 config: Optional[LsmConfig] = None) -> None:
        self.fs = fs
        self.name = name
        self.mode = mode
        self.clock = clock
        self.config = config or LsmConfig()
        self.memtable = Memtable()
        self.l0: List[SSTable] = []       # newest first
        self.l1: Optional[SSTable] = None
        self.stats = LsmStats()
        self._file_seq = 0
        self._pending_ops: List[Tuple[str, Any, Any]] = []
        self._manifest = fs.create(self._manifest_path())
        self._manifest.fallocate(1)
        self._wal = fs.create(self._wal_path())
        self._wal_cursor = 0
        self._write_manifest()

    # ------------------------------------------------------------- naming

    def _manifest_path(self) -> str:
        return f"/{self.name}.manifest"

    def _wal_path(self) -> str:
        return f"/{self.name}.wal"

    def _next_sst_path(self) -> str:
        self._file_seq += 1
        return f"/{self.name}.sst-{self._file_seq}"

    # -------------------------------------------------------------- reads

    def get(self, key: Any) -> Optional[Any]:
        """Newest value for key across memtable, L0 (newest first), L1."""
        value = self.memtable.get(key)
        if value is not None:
            return None if value is TOMBSTONE else value
        for table in self.l0:
            value = table.get(key)
            if value is not None:
                return None if value is TOMBSTONE else value
        if self.l1 is not None:
            value = self.l1.get(key)
            if value is not None:
                return None if value is TOMBSTONE else value
        return None

    # ------------------------------------------------------------- writes

    def put(self, key: Any, value: Any) -> None:
        if value is None:
            raise EngineError("None is not storable; use delete()")
        self.memtable.put(key, value)
        self._pending_ops.append(("put", key, value))
        self._maybe_flush()

    def delete(self, key: Any) -> None:
        self.memtable.delete(key)
        self._pending_ops.append(("del", key, None))
        self._maybe_flush()

    def commit(self) -> None:
        """Durability point: append pending operations to the WAL."""
        if not self._pending_ops:
            return
        if self._wal_cursor >= self._wal.block_count:
            self._wal.fallocate(self._wal.block_count + 64)
        self._wal.pwrite_block(self._wal_cursor,
                               (_WAL_TAG, tuple(self._pending_ops)))
        self._wal_cursor += 1
        self.stats.wal_pages += 1
        self._wal.fsync()
        self._pending_ops.clear()

    # ------------------------------------------------------------ flushes

    def _maybe_flush(self) -> None:
        if len(self.memtable) >= self.config.memtable_limit:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Freeze the memtable into a new L0 run and reset the WAL."""
        if len(self.memtable) == 0:
            return
        self.commit()
        table = SSTable.build(self.fs, self._next_sst_path(),
                              self.memtable.sorted_items(),
                              self.config.block_capacity)
        self.l0.insert(0, table)
        self.memtable.clear()
        self._reset_wal()
        self._write_manifest()
        self.stats.flushes += 1
        if len(self.l0) > self.config.l0_limit:
            self.compact()

    def _reset_wal(self) -> None:
        self._wal.truncate_blocks(0)
        self._wal_cursor = 0
        self._wal.fsync()

    # ---------------------------------------------------------- compaction

    def compact(self) -> LsmCompactionResult:
        """Merge every L0 run plus L1 into a fresh L1."""
        runs = list(self.l0)
        if self.l1 is not None:
            runs.append(self.l1)
        if not runs:
            raise EngineError("nothing to compact")
        out_path = self._next_sst_path()
        new_l1, result = merge_compact(self.fs, runs, out_path, self.mode,
                                       self.clock,
                                       self.config.block_capacity)
        old_files = [table.path for table in runs]
        self.l0 = []
        self.l1 = new_l1
        self._write_manifest()
        for path in old_files:
            self.fs.unlink(path)
        self.stats.compactions += 1
        self.stats.compaction_results.append(result)
        return result

    # ------------------------------------------------------------ manifest

    def _write_manifest(self) -> None:
        self._manifest.pwrite_block(0, (
            _MANIFEST_TAG, self._file_seq,
            tuple(table.path for table in self.l0),
            self.l1.path if self.l1 is not None else None))
        self._manifest.fsync()

    # ------------------------------------------------------------- reopen

    @classmethod
    def reopen(cls, fs: HostFs, name: str, mode: CompactionMode,
               clock: SimClock,
               config: Optional[LsmConfig] = None) -> "LsmStore":
        """Crash recovery: manifest names the live runs; the WAL replays
        into a fresh memtable."""
        store = cls.__new__(cls)
        store.fs = fs
        store.name = name
        store.mode = mode
        store.clock = clock
        store.config = config or LsmConfig()
        store.memtable = Memtable()
        store.stats = LsmStats()
        store._pending_ops = []
        store._manifest = fs.open(store._manifest_path())
        record = store._manifest.pread_block(0)
        if not (isinstance(record, tuple) and record[0] == _MANIFEST_TAG):
            raise EngineError(f"{name}: corrupt manifest")
        __, file_seq, l0_paths, l1_path = record
        store._file_seq = file_seq
        store.l0 = [SSTable.open(fs, path) for path in l0_paths]
        store.l1 = SSTable.open(fs, l1_path) if l1_path else None
        store._wal = fs.open(store._wal_path())
        store._wal_cursor = store._replay_wal()
        return store

    def _replay_wal(self) -> int:
        cursor = 0
        while cursor < self._wal.block_count:
            lpn = self._wal.block_lpn(cursor)
            if not self.fs.ssd.ftl.is_mapped(lpn):
                break
            record = self._wal.pread_block(cursor)
            if not (isinstance(record, tuple) and record[0] == _WAL_TAG):
                break
            for op, key, value in record[1]:
                if op == "put":
                    self.memtable.put(key, value)
                else:
                    self.memtable.delete(key)
            cursor += 1
        return cursor

    # -------------------------------------------------------------- debug

    def items(self) -> Dict[Any, Any]:
        """Materialised view of the whole store (tests only)."""
        merged: Dict[Any, Any] = {}
        if self.l1 is not None:
            merged.update(self.l1.items())
        for table in reversed(self.l0):
            merged.update(table.items())
        for key, value in self.memtable:
            merged[key] = value
        return {key: value for key, value in merged.items()
                if value is not TOMBSTONE}
