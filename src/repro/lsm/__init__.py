"""LSM-tree storage engine with SHARE-assisted compaction.

Section 2.2 of the paper points out that LSM-based stores (BigTable,
Cassandra, MongoDB/WiredTiger's LSM mode) share Couchbase's problem: the
merge compaction rewrites large volumes of data that did not change.
This package implements a two-level LSM store (memtable + L0 runs + one
L1 run per store) with a write-ahead log, and two compaction modes:

* ``COPY``  — the classic merge: every surviving entry is re-written.
* ``SHARE`` — data blocks whose entries all survive the merge unchanged
  are remapped into the output run with the SHARE command instead of
  being copied; only blocks whose content actually changes are written.
  Under skewed updates most of the cold key space moves for free.
"""

from repro.lsm.compaction import CompactionMode, LsmCompactionResult
from repro.lsm.memtable import Memtable
from repro.lsm.sstable import SSTable, TOMBSTONE
from repro.lsm.store import LsmConfig, LsmStore

__all__ = [
    "CompactionMode",
    "LsmCompactionResult",
    "Memtable",
    "SSTable",
    "TOMBSTONE",
    "LsmConfig",
    "LsmStore",
]
