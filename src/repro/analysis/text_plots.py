"""Plain-text histograms and CDFs."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.sim.stats import percentile


def ascii_histogram(values: Sequence[float], bins: int = 12,
                    width: int = 50, title: str = "",
                    log_bins: bool = True) -> str:
    """Render a histogram with ``#`` bars.

    ``log_bins`` spaces the bin edges geometrically, which suits latency
    data spanning orders of magnitude (buffer hits vs GC stalls).
    """
    if not values:
        raise ValueError("nothing to plot")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be positive")
    low = min(values)
    high = max(values)
    lines: List[str] = []
    if title:
        lines.append(title)
    if high <= low:
        lines.append(f"all {len(values)} samples = {low:.3g}")
        return "\n".join(lines)
    edges = _edges(low, high, bins, log_bins)
    counts = [0] * bins
    for value in values:
        index = _bin_of(value, edges)
        counts[index] += 1
    peak = max(counts)
    for index in range(bins):
        bar = "#" * max(0, round(counts[index] / peak * width))
        lines.append(f"{edges[index]:>10.3g} - {edges[index + 1]:<10.3g} "
                     f"|{bar:<{width}}| {counts[index]}")
    return "\n".join(lines)


def _edges(low: float, high: float, bins: int, log_bins: bool) -> List[float]:
    if log_bins and low > 0:
        log_low = math.log10(low)
        log_high = math.log10(high)
        return [10 ** (log_low + (log_high - log_low) * i / bins)
                for i in range(bins + 1)]
    return [low + (high - low) * i / bins for i in range(bins + 1)]


def _bin_of(value: float, edges: List[float]) -> int:
    for index in range(len(edges) - 2):
        if value < edges[index + 1]:
            return index
    return len(edges) - 2


def ascii_bars(labels: Sequence[str], values: Sequence[float],
               width: int = 50, title: str = "") -> str:
    """Render labelled quantities as a horizontal bar chart (the shape of
    Figure 6's per-activity breakdown)."""
    if not labels or len(labels) != len(values):
        raise ValueError("need one value per label")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = ("#" * max(0, round(value / peak * width))) if peak else ""
        lines.append(f"{label:<{label_width}} |{bar:<{width}}| {value:g}")
    return "\n".join(lines)


def ascii_cdf(values: Sequence[float],
              points: Sequence[float] = (25, 50, 75, 90, 95, 99, 99.9),
              width: int = 50, title: str = "") -> str:
    """Render percentile points of a distribution as a bar chart."""
    if not values:
        raise ValueError("nothing to plot")
    ordered = sorted(values)
    rows = [(p, percentile(ordered, p)) for p in points]
    peak = max(v for __, v in rows) or 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    for p, value in rows:
        bar = "#" * max(1, round(value / peak * width))
        lines.append(f"p{p:<5g} {value:>10.3g} |{bar}")
    return "\n".join(lines)


def compare_cdfs(named_values: Dict[str, Sequence[float]],
                 points: Sequence[float] = (50, 90, 99, 99.9),
                 title: str = "") -> str:
    """Percentile table across several distributions, plus the ratio of
    each to the first (the baseline)."""
    if not named_values:
        raise ValueError("nothing to compare")
    names = list(named_values)
    ordered = {name: sorted(values) for name, values in named_values.items()
               if values}
    if len(ordered) != len(named_values):
        raise ValueError("every series needs at least one sample")
    baseline = names[0]
    header = f"{'pct':>6}" + "".join(f"{name:>14}" for name in names)
    if len(names) > 1:
        header += f"{'ratio vs ' + baseline:>20}"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        row = f"{p:>6g}"
        base_value = percentile(ordered[baseline], p)
        for name in names:
            row += f"{percentile(ordered[name], p):>14.3g}"
        if len(names) > 1:
            last_value = percentile(ordered[names[-1]], p)
            ratio = base_value / last_value if last_value else float("inf")
            row += f"{ratio:>19.2f}x"
        lines.append(row)
    return "\n".join(lines)
