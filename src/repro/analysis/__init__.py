"""Result analysis helpers: text-mode distribution plots.

The paper presents latency *distributions* (Table 1) and argues about
tails and jitter; these helpers render histograms and CDFs as plain text
so examples and benchmark output can show the whole shape, not just the
summary percentiles.
"""

from repro.analysis.text_plots import (
    ascii_bars,
    ascii_cdf,
    ascii_histogram,
    compare_cdfs,
)

__all__ = ["ascii_bars", "ascii_cdf", "ascii_histogram", "compare_cdfs"]
