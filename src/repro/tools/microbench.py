"""fio-style micro-benchmark for the simulated SHARE SSD.

Patterns:

* ``seqwrite`` / ``randwrite`` — page writes over a span,
* ``randread`` — reads over previously written pages,
* ``share``   — SHARE remaps (one pair per op) against a written span,
* ``mixed``   — 70/30 random read/write.

Reports IOPS (virtual time), bandwidth, device WAF, and GC work — the
microscopic view of the macro effects in the paper's Figure 6.

Usage::

    python -m repro.tools.microbench --pattern randwrite --ops 20000
    python -m repro.tools.microbench --pattern share --utilization 0.8
"""

from __future__ import annotations

import argparse
import json
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.flash.geometry import FlashGeometry
from repro.flash.timing import MLC_TIMING
from repro.ftl.config import FtlConfig
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

PATTERNS = ("seqwrite", "randwrite", "randread", "share", "mixed")


@dataclass
class MicrobenchResult:
    """One run's numbers.

    ``elapsed_seconds``/``iops`` are *virtual* (modeled device time);
    ``wall_seconds``/``sim_ops_per_s`` measure the simulator itself —
    the wall-clock cost of producing those virtual seconds, which is
    what the ``BENCH_*.json`` regression gate tracks.
    """

    pattern: str
    operations: int
    elapsed_seconds: float
    iops: float
    bandwidth_mib_s: float
    waf: float
    gc_events: int
    copyback_pages: int
    wall_seconds: float = 0.0

    @property
    def sim_ops_per_s(self) -> float:
        """Simulator speed: operations simulated per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.operations / self.wall_seconds

    def to_bench_record(self) -> Dict[str, Any]:
        """The ``BENCH_*.json`` micro-entry schema (see
        ``repro.tools.benchspeed``)."""
        return {
            "name": f"micro.{self.pattern}",
            "operations": self.operations,
            "wall_s": self.wall_seconds,
            "sim_ops_per_s": self.sim_ops_per_s,
            "virtual_s": self.elapsed_seconds,
            "iops_virtual": self.iops,
            "waf": self.waf,
            "gc_events": self.gc_events,
        }

    def format(self) -> str:
        return (f"{self.pattern}: {self.operations} ops in "
                f"{self.elapsed_seconds:.3f}s virtual -> "
                f"{self.iops:,.0f} IOPS, {self.bandwidth_mib_s:.1f} MiB/s, "
                f"WAF {self.waf:.2f}, GC {self.gc_events} events / "
                f"{self.copyback_pages} copybacks "
                f"[{self.wall_seconds:.3f}s wall, "
                f"{self.sim_ops_per_s:,.0f} ops/s simulated]")


def run_microbench(pattern: str, ops: int = 10_000,
                   utilization: float = 0.6, seed: int = 1,
                   block_count: int = 256,
                   ssd: Optional[Ssd] = None) -> MicrobenchResult:
    """Run one pattern and return the measurements."""
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; pick from {PATTERNS}")
    if not 0.05 <= utilization <= 0.98:
        raise ValueError(f"utilization must be in [0.05, 0.98]: {utilization}")
    if ssd is None:
        clock = SimClock()
        geometry = FlashGeometry(page_size=4096, pages_per_block=128,
                                 block_count=block_count,
                                 overprovision_ratio=0.08)
        ssd = Ssd(clock, SsdConfig(geometry=geometry, timing=MLC_TIMING,
                                   ftl=FtlConfig(map_block_count=max(
                                       4, block_count // 24))))
    clock = ssd.clock
    rng = random.Random(seed)
    span = int(ssd.logical_pages * utilization)
    # Precondition: fill the working span so reads/shares/GC have targets.
    for lpn in range(span):
        ssd.ftl.write(lpn, ("precond", lpn))
    ssd.reset_measurement()
    clock.reset()
    wall_start = perf_counter()
    if pattern == "seqwrite":
        for i in range(ops):
            ssd.write(i % span, ("w", i))
    elif pattern == "randwrite":
        for i in range(ops):
            ssd.write(rng.randrange(span), ("w", i))
    elif pattern == "randread":
        for __ in range(ops):
            ssd.read(rng.randrange(span))
    elif pattern == "share":
        free_base = span
        free_span = ssd.logical_pages - span
        for i in range(ops):
            ssd.share(free_base + (i % free_span), rng.randrange(span))
    elif pattern == "mixed":
        for i in range(ops):
            if rng.random() < 0.7:
                ssd.read(rng.randrange(span))
            else:
                ssd.write(rng.randrange(span), ("w", i))
    wall_seconds = perf_counter() - wall_start
    elapsed = clock.now_seconds
    stats = ssd.stats
    moved_pages = stats.host_write_pages + stats.host_read_pages \
        + stats.share_pairs
    bandwidth = (moved_pages * ssd.page_size / 2**20 / elapsed
                 if elapsed > 0 else 0.0)
    return MicrobenchResult(
        pattern=pattern, operations=ops, elapsed_seconds=elapsed,
        iops=ops / elapsed if elapsed > 0 else 0.0,
        bandwidth_mib_s=bandwidth,
        waf=stats.write_amplification,
        gc_events=stats.gc_events,
        copyback_pages=stats.copyback_pages,
        wall_seconds=wall_seconds)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pattern", choices=PATTERNS + ("all",),
                        default="all")
    parser.add_argument("--ops", type=int, default=10_000)
    parser.add_argument("--utilization", type=float, default=0.6)
    parser.add_argument("--blocks", type=int, default=256)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the results as BENCH-schema JSON "
                             "records (one list under 'micro')")
    args = parser.parse_args(argv)
    patterns = PATTERNS if args.pattern == "all" else (args.pattern,)
    results = []
    for pattern in patterns:
        result = run_microbench(pattern, ops=args.ops,
                                utilization=args.utilization,
                                seed=args.seed, block_count=args.blocks)
        results.append(result)
        print(result.format())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"micro": [r.to_bench_record() for r in results]},
                      fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
