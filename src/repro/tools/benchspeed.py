"""Simulator speed benchmark and per-PR regression gate.

Measures the *wall-clock* cost of the simulator itself (how fast it
produces virtual seconds), not the modeled device performance — the
numbers the paper-facing experiments never show but every PR can
silently regress.  One invocation runs a fixed matrix:

* **linkbench.share** under three telemetry modes — ``off`` (the gate
  numbers), ``full`` (with a :class:`~repro.obs.PhaseProfiler` and span
  capture, from which ``trace.json`` is exported), and ``sampled`` —
  so the telemetry overhead and the sampled-mode saving are measured,
  not guessed;
* **ycsb.a** / **ycsb.f** with telemetry off;
* the ``repro.tools.microbench`` patterns.

Results land in a ``BENCH_<tag>.json`` artifact (wall seconds,
simulated ops/s, scheduler events/s, peak RSS, telemetry overhead %).
When a committed baseline ``BENCH_pr<N>.json`` exists next to the
output (or ``--baseline`` names one), the total gate wall time is
compared and the process exits 3 on a regression beyond
``--threshold`` (default 20 %) — the CI hook.

``--cluster`` runs a separate matrix instead: the sharded-tier
LinkBench cell healthy, again through a mid-run shard kill
(breaker-driven failover, tail replay), and once more with R=2 groups
acking at a write quorum of two, with the router's failover stats in a
``cluster`` section.  The cluster matrix has its own enforced baseline
family — ``BENCH_cluster_pr<N>.json`` — gated exactly like the main
matrix (exit 3 beyond ``--threshold``).

Usage::

    PYTHONPATH=src python -m repro.tools.benchspeed \\
        --out results/BENCH_pr6.json --trace-out results/trace.json
    REPRO_BENCH_SCALE=tiny python -m repro.tools.benchspeed --out /tmp/b.json
    python -m repro.tools.benchspeed --cluster --out results/BENCH_cluster.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import resource
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.experiments import LINKBENCH_CLIENTS, _estimate_db_pages
from repro.bench.harness import (SCALES, Scale, buffer_pages_for,
                                 build_cluster_stack, build_couch_stack,
                                 build_innodb_stack)
from repro.couchstore.engine import CommitMode
from repro.ftl.mapping import resolve_l2p_strategy
from repro.innodb.engine import FlushMode
from repro.obs import (DEFAULT_SAMPLE_EVERY, PhaseProfiler, Telemetry,
                       chrome_trace, export_chrome_trace, run_with_cprofile)
from repro.obs.sinks import MemorySink
from repro.sim.faults import FaultPlan, ShardKill
from repro.tools.microbench import run_microbench
from repro.workloads.linkbench import (ClusterLinkBenchDriver,
                                       LinkBenchConfig, LinkBenchDriver)
from repro.workloads.ycsb import YcsbConfig, YcsbDriver, YcsbWorkload

SCHEMA_VERSION = 1
PAGE_SIZE = 4096
PAPER_BUFFER_MIB = 100
QUEUE_DEPTH = 4
CHANNEL_COUNT = 2
YCSB_BATCH = 16
#: Bounds on the exported trace.json sample: keep it a committable,
#: loadable artifact (the in-memory capture is unbounded; raise these
#: when a deeper timeline is wanted).
TRACE_CAPACITY = 1024
TRACE_SPAN_LIMIT = 2048
CLUSTER_SHARDS = 3
CLUSTER_CLIENTS = 4
MICRO_PATTERNS = ("seqwrite", "randwrite", "randread", "share")
MICRO_OPS = {Scale.TINY: 2_000, Scale.QUICK: 10_000, Scale.FULL: 30_000}
_BASELINE_RE = re.compile(r"^BENCH_pr(\d+)\.json$")
_CLUSTER_BASELINE_RE = re.compile(r"^BENCH_cluster_pr(\d+)\.json$")


def bench_scale(default: Scale = Scale.TINY) -> Scale:
    """The matrix scale, from ``REPRO_BENCH_SCALE`` (tiny/quick/full)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower()
    return Scale(raw) if raw else default


def peak_rss_mib() -> float:
    """Peak resident set size of this process in MiB (ru_maxrss is KiB
    on Linux, bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":
        return peak / 2**20
    return peak / 1024


# --------------------------------------------------------------------------
# Workload cells
# --------------------------------------------------------------------------

def _bench_record(name: str, operations: int, wall_s: float,
                  virtual_tps: float, events_fired: int) -> Dict[str, Any]:
    return {
        "name": name,
        "operations": operations,
        "wall_s": wall_s,
        "sim_ops_per_s": operations / wall_s if wall_s > 0 else 0.0,
        "virtual_tps": virtual_tps,
        "events_fired": events_fired,
        "events_per_s": events_fired / wall_s if wall_s > 0 else 0.0,
    }


def run_linkbench_cell(scale: Scale, name: str, telemetry=None,
                       trace_capacity: int = 0,
                       interval_capacity: int = 0
                       ) -> Tuple[Dict[str, Any], Any]:
    """One SHARE-mode LinkBench run; mirrors the experiment driver's
    warm-up/reset/measure protocol so the gate times the same code the
    figures exercise.  Returns ``(record, stack)`` — the stack so the
    caller can pull trace/interval buffers for the Chrome exporter."""
    params = SCALES[scale]
    leaf_capacity = max(8, 32 * (PAGE_SIZE // 4096))
    db_pages = _estimate_db_pages(params.linkbench_nodes, leaf_capacity)
    buffer_pages = buffer_pages_for(PAPER_BUFFER_MIB, db_pages, PAGE_SIZE)
    stack = build_innodb_stack(
        FlushMode.SHARE, PAGE_SIZE, buffer_pages, db_pages,
        telemetry=telemetry, queue_depth=QUEUE_DEPTH,
        channel_count=CHANNEL_COUNT, trace_capacity=trace_capacity,
        trace_keep="newest", interval_capacity=interval_capacity)
    tel = stack.data_ssd.telemetry
    driver = LinkBenchDriver(stack.engine, stack.clock,
                             LinkBenchConfig(node_count=params.
                                             linkbench_nodes))
    tel.pause()
    driver.load()
    driver.run(max(500, params.linkbench_transactions // 8))
    stack.data_ssd.reset_measurement()
    stack.log_ssd.reset_measurement()
    stack.clock.reset()
    tel.resume()
    tel.reset_measurement()
    sampler = getattr(tel, "sampler", None) if getattr(
        tel, "mode", "off") == "sampled" else None
    fired_before = stack.data_ssd.events.fired
    wall_start = perf_counter()
    result = driver.run(params.linkbench_transactions,
                        concurrency=LINKBENCH_CLIENTS, sampler=sampler)
    wall_s = perf_counter() - wall_start
    events_fired = stack.data_ssd.events.fired - fired_before
    return _bench_record(name, result.transactions, wall_s,
                         result.throughput_tps, events_fired), stack


def run_ycsb_cell(scale: Scale, workload: YcsbWorkload,
                  name: str) -> Dict[str, Any]:
    """One SHARE-mode YCSB run with telemetry off (gate numbers)."""
    params = SCALES[scale]
    stack = build_couch_stack(CommitMode.SHARE, params.ycsb_records,
                              params.ycsb_operations)
    driver = YcsbDriver(stack.store, stack.clock,
                        YcsbConfig(record_count=params.ycsb_records))
    driver.load()
    stack.ssd.reset_measurement()
    fired_before = stack.ssd.events.fired
    wall_start = perf_counter()
    result = driver.run(workload, params.ycsb_operations,
                        batch_size=YCSB_BATCH)
    wall_s = perf_counter() - wall_start
    events_fired = stack.ssd.events.fired - fired_before
    return _bench_record(name, result.operations, wall_s,
                         result.throughput_ops, events_fired)


def run_cluster_cell(scale: Scale, name: str, kill: bool = False,
                     replicas: int = 1,
                     write_quorum: int = 1) -> Tuple[Dict[str, Any], Any]:
    """One sharded-tier LinkBench run over ``CLUSTER_SHARDS`` replicated
    groups, telemetry off.  With ``kill=True`` a :class:`ShardKill` is
    armed after warm-up so one primary dies about a third of the way
    into the measured run and the cell times the run *through* the
    breaker-driven failover (promotion, tail replay, re-replication).
    ``replicas``/``write_quorum`` shape the groups (the quorum cell pays
    for synchronous replica applies on every ack).  Returns
    ``(record, stack)`` — the stack so the caller can read the router's
    failover stats."""
    params = SCALES[scale]
    nodes = max(300, params.linkbench_nodes // 4)
    operations = max(500, params.linkbench_transactions // 2)
    faults = FaultPlan() if kill else None
    stack = build_cluster_stack(shards=CLUSTER_SHARDS,
                                keys_estimate=nodes * 6,
                                queue_depth=QUEUE_DEPTH,
                                channel_count=CHANNEL_COUNT,
                                faults=faults, replicas=replicas,
                                write_quorum=write_quorum)
    driver = ClusterLinkBenchDriver(stack.router, stack.clock,
                                    LinkBenchConfig(node_count=nodes,
                                                    links_per_node=2))
    driver.load()
    driver.run(max(200, operations // 8), concurrency=CLUSTER_CLIENTS)
    for device in stack.router.devices:
        device.reset_measurement()
    if kill:
        # Ack counting starts when the plan arms, so nth is relative to
        # the measured run; a third of the way in leaves replication lag
        # for the promotion to replay (pumps are every 16 driver ops).
        faults.arm_cluster(ShardKill(nth=max(8, operations // 3)))
    fired_before = stack.events.fired
    wall_start = perf_counter()
    result = driver.run(operations, concurrency=CLUSTER_CLIENTS)
    wall_s = perf_counter() - wall_start
    events_fired = stack.events.fired - fired_before
    return _bench_record(name, result.transactions, wall_s,
                         result.throughput_tps, events_fired), stack


def run_cluster_matrix(scale: Scale) -> Dict[str, Any]:
    """The ``--cluster`` document: healthy, failover, and R=2 quorum
    cells, gated against the ``BENCH_cluster_pr<N>.json`` baseline
    family (the cluster hot path — replication append, quorum sync,
    replica routing — regresses independently of the single-device
    matrix, so it gets its own enforced numbers)."""
    benchmarks: List[Dict[str, Any]] = []

    warm_record, __ = run_cluster_cell(Scale.TINY, "warmup.discarded")
    print(f"  warmup (discarded): {warm_record['wall_s']:.3f}s wall")

    healthy_record, healthy_stack = run_cluster_cell(
        scale, "cluster.linkbench.off")
    benchmarks.append(healthy_record)
    print(f"  {healthy_record['name']}: {healthy_record['wall_s']:.3f}s "
          f"wall, {healthy_record['events_per_s']:,.0f} events/s")

    failover_record, failover_stack = run_cluster_cell(
        scale, "cluster.failover", kill=True)
    benchmarks.append(failover_record)
    stats = failover_stack.router.stats
    print(f"  {failover_record['name']}: "
          f"{failover_record['wall_s']:.3f}s wall, "
          f"{stats.failovers} failover(s), "
          f"{stats.replayed_records} record(s) replayed")

    quorum_record, quorum_stack = run_cluster_cell(
        scale, "cluster.quorum2", replicas=2, write_quorum=2)
    benchmarks.append(quorum_record)
    quorum_stats = quorum_stack.router.stats
    print(f"  {quorum_record['name']}: {quorum_record['wall_s']:.3f}s "
          f"wall, {quorum_stats.acked_writes} quorum-acked writes")

    cluster_section = {
        "shards": CLUSTER_SHARDS,
        "clients": CLUSTER_CLIENTS,
        "healthy": {
            "acked_writes": healthy_stack.router.stats.acked_writes,
            "repl_applied": healthy_stack.router.stats.repl_applied,
            "backpressure_waits": sum(pair.backpressure_waits
                                      for pair in healthy_stack.pairs),
            "cross_shard_copies":
                healthy_stack.router.stats.cross_shard_copies,
        },
        "failover": {
            "kills": stats.kills,
            "failovers": stats.failovers,
            "failover_duration_us": stats.failover_duration_us,
            "replayed_records": stats.replayed_records,
            "repl_applied": stats.repl_applied,
            "acked_writes": stats.acked_writes,
            "epochs": {pair.name: pair.log.epoch
                       for pair in failover_stack.pairs},
        },
        "quorum2": {
            "replicas": 2,
            "write_quorum": 2,
            "acked_writes": quorum_stats.acked_writes,
            "repl_applied": quorum_stats.repl_applied,
            "quorum_syncs": sum(pair.quorum_syncs
                                for pair in quorum_stack.pairs),
            "quorum_degraded": sum(pair.quorum_degraded
                                   for pair in quorum_stack.pairs),
            "replica_reads": quorum_stats.replica_reads,
        },
    }

    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro.tools.benchspeed --cluster",
        "scale": scale.value,
        "l2p": resolve_l2p_strategy(),
        "warmup": {"cell": "cluster tiny x1 (discarded)",
                   "wall_s": warm_record["wall_s"]},
        "python": platform.python_version(),
        "total_wall_s": sum(b["wall_s"] for b in benchmarks),
        "peak_rss_mib": round(peak_rss_mib(), 1),
        "benchmarks": benchmarks,
        "cluster": cluster_section,
    }


# --------------------------------------------------------------------------
# Regression gate
# --------------------------------------------------------------------------

def find_baseline(out_path: str, results_dir: Optional[str] = None,
                  pattern: "re.Pattern" = _BASELINE_RE) -> Optional[str]:
    """The committed baseline to compare against: the highest-numbered
    ``BENCH_pr<N>.json`` (or, for the cluster matrix,
    ``BENCH_cluster_pr<N>.json``) in the output directory that is not
    the output file itself (so a re-run never gates against its own
    artifact)."""
    directory = results_dir or os.path.dirname(os.path.abspath(out_path))
    if not os.path.isdir(directory):
        return None
    out_abs = os.path.abspath(out_path)
    best: Optional[Tuple[int, str]] = None
    for entry in os.listdir(directory):
        match = pattern.match(entry)
        if not match:
            continue
        path = os.path.join(directory, entry)
        if os.path.abspath(path) == out_abs:
            continue
        number = int(match.group(1))
        if best is None or number > best[0]:
            best = (number, path)
    return best[1] if best else None


def compare_to_baseline(current: Dict[str, Any],
                        baseline: Optional[Dict[str, Any]],
                        threshold: float) -> Tuple[bool, List[str]]:
    """Gate decision: ``(ok, notes)``.  Wall-clock numbers only compare
    when the scales match; otherwise (or with no baseline) the gate
    passes with an explanatory note."""
    if baseline is None:
        return True, ["no baseline BENCH_*.json found; gate passes "
                      "(first run records the baseline)"]
    if baseline.get("scale") != current.get("scale"):
        return True, [f"baseline scale {baseline.get('scale')!r} != "
                      f"current {current.get('scale')!r}; wall-clock "
                      "comparison skipped"]
    if baseline.get("l2p", "flat") != current.get("l2p", "flat"):
        # A non-default mapping strategy trades raw speed for footprint
        # by design; only like-for-like backings gate each other.
        return True, [f"baseline L2P {baseline.get('l2p', 'flat')!r} != "
                      f"current {current.get('l2p', 'flat')!r}; wall-clock "
                      "comparison skipped"]
    notes: List[str] = []
    ok = True
    base_total = baseline.get("total_wall_s") or 0.0
    cur_total = current.get("total_wall_s") or 0.0
    if base_total > 0 and cur_total > 0:
        ratio = cur_total / base_total
        note = (f"gate wall {cur_total:.3f}s vs baseline "
                f"{base_total:.3f}s ({ratio:.2f}x)")
        if ratio > 1.0 + threshold:
            ok = False
            note += f" — REGRESSION beyond {threshold:.0%}"
        notes.append(note)
    else:
        notes.append("baseline lacks total_wall_s; comparison skipped")
    base_by_name = {b.get("name"): b
                    for b in baseline.get("benchmarks", [])}
    for bench in current.get("benchmarks", []):
        base = base_by_name.get(bench["name"])
        if base and base.get("wall_s"):
            notes.append(f"  {bench['name']}: {bench['wall_s']:.3f}s "
                         f"vs {base['wall_s']:.3f}s "
                         f"({bench['wall_s'] / base['wall_s']:.2f}x)")
    return ok, notes


# --------------------------------------------------------------------------
# Matrix
# --------------------------------------------------------------------------

def run_matrix(scale: Scale, trace_out: Optional[str] = None,
               cprofile_out: Optional[str] = None) -> Dict[str, Any]:
    """Run the full benchmark matrix and return the BENCH document."""
    benchmarks: List[Dict[str, Any]] = []

    # Steady-state warm-up: one discarded tiny cell before anything is
    # timed.  The first cell in a fresh process otherwise pays the
    # interpreter's adaptive-specialization and allocator warm-up, which
    # lands entirely on the off cell (it runs first) and skews the gate
    # ratio between PRs; a throwaway run moves every measured cell to
    # steady state.  Tiny regardless of --scale: the warm-up only has to
    # touch the hot code paths, not the measured working set.
    warm_record, __ = run_linkbench_cell(Scale.TINY, "warmup.discarded")
    print(f"  warmup (discarded): {warm_record['wall_s']:.3f}s wall")

    # Gate runs: telemetry fully off, the configuration CI must protect.
    off_record, __ = run_linkbench_cell(scale, "linkbench.share.off")
    benchmarks.append(off_record)
    print(f"  {off_record['name']}: {off_record['wall_s']:.3f}s wall, "
          f"{off_record['events_per_s']:,.0f} events/s")
    for workload, name in ((YcsbWorkload.A, "ycsb.a.off"),
                           (YcsbWorkload.F, "ycsb.f.off")):
        record = run_ycsb_cell(scale, workload, name)
        benchmarks.append(record)
        print(f"  {record['name']}: {record['wall_s']:.3f}s wall, "
              f"{record['sim_ops_per_s']:,.0f} ops/s simulated")

    # Overhead runs: the same linkbench cell with telemetry full (span
    # capture + profiler, feeding trace.json) and sampled.
    profiler = PhaseProfiler()
    sink = MemorySink()
    telemetry_full = Telemetry(sink=sink, mode="full", profiler=profiler)

    def full_run():
        return run_linkbench_cell(scale, "linkbench.share.full",
                                  telemetry=telemetry_full,
                                  trace_capacity=TRACE_CAPACITY,
                                  interval_capacity=TRACE_CAPACITY)

    if cprofile_out:
        full_record, full_stack = run_with_cprofile(full_run, cprofile_out)
        print(f"  wrote {cprofile_out} (pstats)")
    else:
        full_record, full_stack = full_run()
    print(f"  {full_record['name']}: {full_record['wall_s']:.3f}s wall")

    sampled_record, __ = run_linkbench_cell(
        scale, "linkbench.share.sampled", telemetry=Telemetry(mode="sampled"))
    print(f"  {sampled_record['name']}: {sampled_record['wall_s']:.3f}s wall")

    wall_off = off_record["wall_s"]
    wall_full = full_record["wall_s"]
    wall_sampled = sampled_record["wall_s"]
    overhead_full = wall_full - wall_off
    overhead_sampled = wall_sampled - wall_off
    telemetry_section = {
        "wall_off_s": wall_off,
        "wall_full_s": wall_full,
        "wall_sampled_s": wall_sampled,
        "overhead_full_pct": (100.0 * overhead_full / wall_off
                              if wall_off > 0 else 0.0),
        "overhead_sampled_pct": (100.0 * overhead_sampled / wall_off
                                 if wall_off > 0 else 0.0),
        "sampled_vs_full_overhead_ratio": (overhead_sampled / overhead_full
                                           if overhead_full > 0 else 0.0),
        "sample_every": DEFAULT_SAMPLE_EVERY,
        "note": ("full mode carries a MemorySink (span capture for "
                 "trace.json) and a PhaseProfiler; sampled mode uses the "
                 "default NullSink — the gate numbers come from the off "
                 "run only"),
    }

    if trace_out:
        # Tail of the span stream only: spans close children-first, so a
        # suffix never contains a child whose parent record is missing.
        trace = chrome_trace(
            span_records=sink.records[-TRACE_SPAN_LIMIT:],
            devices=[("data", full_stack.data_ssd.trace,
                      full_stack.data_ssd.intervals),
                     ("log", full_stack.log_ssd.trace,
                      full_stack.log_ssd.intervals)])
        export_chrome_trace(trace_out, trace)
        print(f"  wrote {trace_out} "
              f"({len(trace['traceEvents'])} trace events)")

    micro = []
    for pattern in MICRO_PATTERNS:
        result = run_microbench(pattern, ops=MICRO_OPS[scale],
                                block_count=128)
        micro.append(result.to_bench_record())
        print(f"  micro.{pattern}: {result.wall_seconds:.3f}s wall, "
              f"{result.sim_ops_per_s:,.0f} ops/s simulated")

    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro.tools.benchspeed",
        "scale": scale.value,
        "l2p": resolve_l2p_strategy(),
        "warmup": {"cell": "linkbench tiny x1 (discarded)",
                   "wall_s": warm_record["wall_s"]},
        "python": platform.python_version(),
        "total_wall_s": sum(b["wall_s"] for b in benchmarks),
        "peak_rss_mib": round(peak_rss_mib(), 1),
        "benchmarks": benchmarks,
        "micro": micro,
        "telemetry": telemetry_section,
        "profile": profiler.report(total_wall_s=wall_full),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="results/BENCH_local.json",
                        help="output BENCH JSON path (the default is "
                             "deliberately *not* a BENCH_pr<N>.json name: "
                             "ad-hoc runs must never collide with — or be "
                             "picked up as — a committed per-PR baseline)")
    parser.add_argument("--baseline", default=None,
                        help="baseline BENCH JSON to gate against "
                             "(default: highest BENCH_pr<N>.json next to "
                             "--out)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional wall-clock regression "
                             "(default 0.20)")
    parser.add_argument("--trace-out", default=None,
                        help="also export a Chrome trace.json from the "
                             "telemetry-full run")
    parser.add_argument("--cprofile", default=None, metavar="PATH",
                        help="dump a pstats profile of the telemetry-full "
                             "run")
    parser.add_argument("--scale", choices=[s.value for s in Scale],
                        default=None,
                        help="override REPRO_BENCH_SCALE")
    parser.add_argument("--cluster", action="store_true",
                        help="run the sharded-tier matrix instead "
                             "(healthy + failover + quorum cells), gated "
                             "against the BENCH_cluster_pr<N>.json "
                             "baseline family")
    args = parser.parse_args(argv)

    scale = Scale(args.scale) if args.scale else bench_scale()
    if args.cluster:
        print(f"benchspeed: scale={scale.value} (cluster matrix)")
        document = run_cluster_matrix(scale)
        baseline_path = args.baseline or find_baseline(
            args.out, pattern=_CLUSTER_BASELINE_RE)
        baseline = None
        if baseline_path and os.path.exists(baseline_path):
            with open(baseline_path, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        ok, notes = compare_to_baseline(document, baseline, args.threshold)
        document["gate"] = {
            "baseline": (os.path.basename(baseline_path)
                         if baseline else None),
            "threshold": args.threshold,
            "ok": ok,
            "notes": notes,
        }
        print(f"  total cluster wall: {document['total_wall_s']:.3f}s, "
              f"peak RSS {document['peak_rss_mib']:.1f} MiB")
        for note in notes:
            print(f"  {note}")
        out_dir = os.path.dirname(os.path.abspath(args.out))
        os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
        return 0 if ok else 3

    print(f"benchspeed: scale={scale.value}")
    document = run_matrix(scale, trace_out=args.trace_out,
                          cprofile_out=args.cprofile)
    print(f"  total gate wall: {document['total_wall_s']:.3f}s, "
          f"peak RSS {document['peak_rss_mib']:.1f} MiB, "
          f"telemetry overhead full "
          f"{document['telemetry']['overhead_full_pct']:.1f}% / sampled "
          f"{document['telemetry']['overhead_sampled_pct']:.1f}%")

    baseline_path = args.baseline or find_baseline(args.out)
    baseline = None
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    ok, notes = compare_to_baseline(document, baseline, args.threshold)
    document["gate"] = {
        "baseline": os.path.basename(baseline_path) if baseline else None,
        "threshold": args.threshold,
        "ok": ok,
        "notes": notes,
    }
    for note in notes:
        print(f"  {note}")

    out_dir = os.path.dirname(os.path.abspath(args.out))
    os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0 if ok else 3


if __name__ == "__main__":
    raise SystemExit(main())
