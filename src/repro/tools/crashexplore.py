"""Exhaustive crash-consistency sweeps from the command line.

Usage::

    python -m repro.tools.crashexplore --workload linkbench-small
    python -m repro.tools.crashexplore --workload ftl-basic \\
        --out report.jsonl --max-points 150
    python -m repro.tools.crashexplore --list

One run enumerates every fault point the chosen workload reaches, then
re-runs it once per occurrence with a power failure injected exactly
there, recovers from the persisted media, and checks the full invariant
set (see ``docs/crash-consistency.md``).  Each verdict is appended to the
JSONL report as a ``{"type": "crashcheck", ...}`` record — the same sink
format the telemetry subsystem uses — followed by one
``crashcheck-summary`` record.  Exit status is 1 when any invariant was
violated.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.crashcheck.explorer import enumerate_occurrences, explore
from repro.crashcheck.workloads import WORKLOADS
from repro.obs.sinks import JsonlSink


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.crashexplore",
        description="Systematic power-failure sweep over a workload's "
                    "fault points.")
    parser.add_argument("--workload", default="linkbench-small",
                        choices=sorted(WORKLOADS),
                        help="workload harness to sweep "
                             "(default: linkbench-small)")
    parser.add_argument("--out", default="crashexplore-report.jsonl",
                        help="JSONL report path "
                             "(default: crashexplore-report.jsonl)")
    parser.add_argument("--max-points", type=int, default=None,
                        metavar="N",
                        help="explore only the first N enumerated "
                             "occurrences (budget cap for CI smoke runs)")
    parser.add_argument("--list", action="store_true",
                        help="list available workloads and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-violation output")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(WORKLOADS):
            print(name)
        return 0

    factory = WORKLOADS[args.workload]
    occurrences = enumerate_occurrences(factory)
    distinct = sorted({occ.point for occ in occurrences})
    print(f"[crashexplore] workload {args.workload}: "
          f"{len(occurrences)} fault-point occurrences across "
          f"{len(distinct)} distinct points")
    if args.max_points is not None:
        print(f"[crashexplore] budget cap: exploring first "
              f"{min(args.max_points, len(occurrences))} occurrences")

    sink = JsonlSink(args.out)
    try:
        report = explore(factory, args.workload, occurrences=occurrences,
                         max_points=args.max_points, sink=sink)
    finally:
        sink.close()

    summary = report.summary()
    print(f"[crashexplore] explored {summary['explored']} sites: "
          f"{summary['crashed']} crashed, "
          f"{summary['violations']} invariant violations")
    print(f"[crashexplore] report written to {args.out}")
    if not report.ok:
        if not args.quiet:
            for result in report.failures:
                for violation in result.violations:
                    print(f"[crashexplore] FAIL at {result.point} "
                          f"#{result.nth}: {violation}", file=sys.stderr)
        return 1
    print("[crashexplore] all invariants held at every explored point")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
