"""Exhaustive crash-consistency sweeps from the command line.

Usage::

    python -m repro.tools.crashexplore --workload linkbench-small
    python -m repro.tools.crashexplore --workload ftl-basic \\
        --out report.jsonl --max-points 150
    python -m repro.tools.crashexplore --workload linkbench-small \\
        --media-faults
    python -m repro.tools.crashexplore --workload linkbench-small \\
        --chaos
    python -m repro.tools.crashexplore --cluster --max-points 40
    python -m repro.tools.crashexplore --cluster-media --max-points 12
    python -m repro.tools.crashexplore --cluster-chaos --seeds 3
    python -m repro.tools.crashexplore --workload ftl-basic --l2p runlength
    python -m repro.tools.crashexplore --list

``--l2p`` (or the ``REPRO_L2P`` env var) switches the forward-map
backing of every device the sweep builds — the same power/media/chaos
dimensions run against the grouped, run-length, or delta-compressed
L2P strategies (see :mod:`repro.ftl.mapping`).

The default sweep enumerates every power-failure point the chosen
workload reaches, then re-runs it once per occurrence with a power
failure injected exactly there, recovers from the persisted media, and
checks the full invariant set (see ``docs/crash-consistency.md``).

``--media-faults`` selects the second sweep dimension instead: every
read / program / erase operation the workload issues is targeted in turn
with a media fault — transient read errors healed by read-retry, program
failures forcing block retirement, erase failures, sticky dead pages,
and sampled power+read-fault combinations (see
``docs/fault-injection.md``).  ``--media-modes`` narrows the mode list.

``--chaos`` selects the third sweep dimension: every SHARE command the
workload issues is targeted in turn with a host-boundary command fault
— timeouts healed by retry, device-busy backpressure, sticky SHARE
outages every engine must survive through its classic two-phase
fallback, and outage+power-failure combinations checking the
``no_lost_fallback`` invariant at the fallback boundary (see
``docs/resilience.md``).  ``--chaos-modes`` narrows the mode list.
Only workloads whose harnesses route SHARE through the resilience
layer can be swept.

``--cluster`` selects the fourth sweep dimension: the sharded tier's
own harness (three replicated shard pairs under a linkbench-small KV
mix — ``--workload`` is ignored) with a single-shard kill injected at
every ack boundary in turn.  Each kill power-cycles the victim primary
and latches its breaker; the router must promote the replica, replay
the delta-log tail, and satisfy ``no_lost_acked_write`` — every
acknowledged write readable after recovery (see ``docs/resilience.md``).

``--cluster-media`` storms instead of kills: at each ack boundary the
victim primary's NAND starts failing (program/erase faults the FTL
absorbs onto spare blocks), and the media-health monitor must trip a
*proactive* promotion before the device gives out.  ``--cluster-chaos``
runs the seeded chaos scheduler: per seed, one deterministic randomized
interleaving of kills, storms, transient device-busy faults and a
mid-run ring resize (with a kill mid-migration) under multi-client
traffic, checking ``no_lost_acked_write``, ``read_your_writes`` and
``replica_convergence``.

Each verdict is appended to the JSONL report as a ``{"type":
"crashcheck", ...}``, ``{"type": "mediacheck", ...}``, ``{"type":
"chaoscheck", ...}`` or ``{"type": "clustercheck", ...}`` record — the same sink format the telemetry
subsystem uses — followed by one summary record.  Exit status is 1
when any invariant was violated.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.crashcheck.chaosfaults import (ALL_CHAOS_MODES,
                                          enumerate_chaos_occurrences,
                                          enumerate_share_commands,
                                          explore_chaos)
from repro.crashcheck.cluster import (ClusterChaosHarness, ClusterHarness,
                                      enumerate_acked_writes,
                                      explore_cluster, explore_cluster_chaos,
                                      explore_cluster_media,
                                      media_cluster_harness)
from repro.crashcheck.explorer import enumerate_occurrences, explore
from repro.crashcheck.mediafaults import (ALL_MODES, GENERIC_MODES,
                                          MODE_UNCORRECTABLE,
                                          enumerate_media_ops,
                                          enumerate_media_occurrences,
                                          explore_media)
from repro.crashcheck.workloads import WORKLOADS
from repro.ftl.mapping import STRATEGY_NAMES
from repro.obs.sinks import JsonlSink


def _power_sweep(args, factory, sink) -> int:
    occurrences = enumerate_occurrences(factory)
    distinct = sorted({occ.point for occ in occurrences})
    print(f"[crashexplore] workload {args.workload}: "
          f"{len(occurrences)} fault-point occurrences across "
          f"{len(distinct)} distinct points")
    if args.max_points is not None:
        print(f"[crashexplore] budget cap: exploring first "
              f"{min(args.max_points, len(occurrences))} occurrences")
    report = explore(factory, args.workload, occurrences=occurrences,
                     max_points=args.max_points, sink=sink)
    summary = report.summary()
    print(f"[crashexplore] explored {summary['explored']} sites: "
          f"{summary['crashed']} crashed, "
          f"{summary['violations']} invariant violations")
    print(f"[crashexplore] report written to {args.out}")
    if not report.ok:
        if not args.quiet:
            for result in report.failures:
                for violation in result.violations:
                    print(f"[crashexplore] FAIL at {result.point} "
                          f"#{result.nth}: {violation}", file=sys.stderr)
        return 1
    print("[crashexplore] all invariants held at every explored point")
    return 0


def _media_sweep(args, factory, sink) -> int:
    if args.media_modes:
        modes = tuple(args.media_modes.split(","))
        unknown = [mode for mode in modes if mode not in ALL_MODES]
        if unknown:
            print(f"[crashexplore] unknown media mode(s): "
                  f"{', '.join(unknown)} (choose from "
                  f"{', '.join(ALL_MODES)})", file=sys.stderr)
            return 2
    elif args.workload == "ftl-basic":
        modes = ALL_MODES   # the raw harness supports the dead-page mode
    else:
        modes = GENERIC_MODES
    if MODE_UNCORRECTABLE in modes and args.workload != "ftl-basic":
        print(f"[crashexplore] mode {MODE_UNCORRECTABLE!r} needs the "
              f"ftl-basic workload (its oracle tolerates typed read "
              f"errors)", file=sys.stderr)
        return 2
    op_counts = enumerate_media_ops(factory)
    occurrences = enumerate_media_occurrences(factory, modes,
                                              op_counts=op_counts)
    print(f"[crashexplore] workload {args.workload}: "
          f"{op_counts['read']} reads, {op_counts['program']} programs, "
          f"{op_counts['erase']} erases -> {len(occurrences)} media "
          f"injections across modes {', '.join(modes)}")
    if args.max_points is not None and len(occurrences) > args.max_points:
        print(f"[crashexplore] budget cap: sampling {args.max_points} "
              f"injections evenly across the sweep")
    report = explore_media(factory, args.workload, modes=modes,
                           occurrences=occurrences,
                           max_points=args.max_points, sink=sink)
    summary = report.summary()
    print(f"[crashexplore] explored {summary['explored']} injections: "
          f"{summary['fired']} fired, {summary['aborted']} typed aborts, "
          f"{summary['crashed']} crashed, "
          f"{summary['violations']} invariant violations")
    print(f"[crashexplore] report written to {args.out}")
    if not report.ok:
        if not args.quiet:
            for result in report.failures:
                for violation in result.violations:
                    print(f"[crashexplore] FAIL {result.mode} "
                          f"{result.op} #{result.nth}: {violation}",
                          file=sys.stderr)
        return 1
    print("[crashexplore] all invariants held at every explored injection")
    return 0


def _chaos_sweep(args, factory, sink) -> int:
    if not hasattr(factory, "guards"):
        print(f"[crashexplore] workload {args.workload!r} does not route "
              f"SHARE through the resilience layer (no guards()); the "
              f"chaos sweep has nothing to verify there", file=sys.stderr)
        return 2
    modes = ALL_CHAOS_MODES
    if args.chaos_modes:
        modes = tuple(args.chaos_modes.split(","))
        unknown = [mode for mode in modes if mode not in ALL_CHAOS_MODES]
        if unknown:
            print(f"[crashexplore] unknown chaos mode(s): "
                  f"{', '.join(unknown)} (choose from "
                  f"{', '.join(ALL_CHAOS_MODES)})", file=sys.stderr)
            return 2
    share_commands = enumerate_share_commands(factory)
    occurrences = enumerate_chaos_occurrences(
        factory, modes, share_commands=share_commands)
    print(f"[crashexplore] workload {args.workload}: "
          f"{share_commands} SHARE commands -> {len(occurrences)} chaos "
          f"injections across modes {', '.join(modes)}")
    if args.max_points is not None and len(occurrences) > args.max_points:
        print(f"[crashexplore] budget cap: sampling {args.max_points} "
              f"injections evenly across the sweep")
    report = explore_chaos(factory, args.workload, modes=modes,
                           occurrences=occurrences,
                           max_points=args.max_points, sink=sink)
    summary = report.summary()
    print(f"[crashexplore] explored {summary['explored']} injections: "
          f"{summary['fired']} fired, {summary['crashed']} crashed, "
          f"{summary['retries']} retries, {summary['fallbacks']} "
          f"fallbacks, {summary['violations']} invariant violations")
    print(f"[crashexplore] report written to {args.out}")
    if not report.ok:
        if not args.quiet:
            for result in report.failures:
                for violation in result.violations:
                    print(f"[crashexplore] FAIL {result.mode} "
                          f"#{result.nth}: {violation}", file=sys.stderr)
        return 1
    print("[crashexplore] all invariants held at every explored injection")
    return 0


def _cluster_sweep(args, sink) -> int:
    acked = enumerate_acked_writes(ClusterHarness)
    print(f"[crashexplore] workload {ClusterHarness.name}: "
          f"{acked} acked writes -> {acked} shard-kill boundaries")
    if args.max_points is not None and acked > args.max_points:
        print(f"[crashexplore] budget cap: sampling {args.max_points} "
              f"boundaries evenly across the sweep")
    report = explore_cluster(ClusterHarness, ClusterHarness.name,
                             max_points=args.max_points, sink=sink)
    summary = report.summary()
    print(f"[crashexplore] explored {summary['explored']} kills: "
          f"{summary['fired']} fired, {summary['failovers']} failovers, "
          f"{summary['replayed']} records replayed, "
          f"{summary['violations']} invariant violations")
    print(f"[crashexplore] report written to {args.out}")
    if not report.ok:
        if not args.quiet:
            for result in report.failures:
                for violation in result.violations:
                    print(f"[crashexplore] FAIL kill #{result.nth} "
                          f"({result.victim}): {violation}",
                          file=sys.stderr)
        return 1
    print("[crashexplore] no acked write was lost at any explored boundary")
    return 0


def _cluster_media_sweep(args, sink) -> int:
    acked = enumerate_acked_writes(media_cluster_harness)
    print(f"[crashexplore] workload cluster-media: {acked} acked writes "
          f"-> {acked} media-storm boundaries")
    if args.max_points is not None and acked > args.max_points:
        print(f"[crashexplore] budget cap: sampling {args.max_points} "
              f"boundaries evenly across the sweep")
    report = explore_cluster_media(media_cluster_harness,
                                   max_points=args.max_points, sink=sink)
    summary = report.summary()
    print(f"[crashexplore] explored {summary['explored']} storms: "
          f"{summary['fired']} fired, {summary['media_trips']} health "
          f"trips, {summary['proactive_promotions']} proactive "
          f"promotions, {summary['violations']} invariant violations")
    print(f"[crashexplore] report written to {args.out}")
    if not report.ok:
        if not args.quiet:
            for result in report.failures:
                for violation in result.violations:
                    print(f"[crashexplore] FAIL storm #{result.nth} "
                          f"({result.victim}): {violation}",
                          file=sys.stderr)
        return 1
    if report.proactive_promotions < 1:
        print("[crashexplore] FAIL: no storm tripped a proactive "
              "promotion — the health monitor never noticed the media "
              "degrading", file=sys.stderr)
        return 1
    print("[crashexplore] every storm was absorbed; health trips promoted "
          "proactively")
    return 0


def _cluster_chaos_sweep(args, sink) -> int:
    seeds = list(range(1, args.seeds + 1))
    print(f"[crashexplore] workload {ClusterChaosHarness.name}: "
          f"{len(seeds)} seeded randomized schedules "
          f"(kills + storms + busy faults + mid-rebalance kill)")
    report = explore_cluster_chaos(seeds=seeds, sink=sink)
    summary = report.summary()
    print(f"[crashexplore] ran {summary['seeds']} seeds: "
          f"{summary['kills']} kills ({summary['mid_rebalance_kills']} "
          f"mid-rebalance), {summary['storms']} storms, "
          f"{summary['busy_faults']} busy faults, "
          f"{summary['failovers']} failovers, "
          f"{summary['migrated_keys']} keys migrated, "
          f"{summary['ryw_checks']} read-your-writes checks, "
          f"{summary['violations']} invariant violations")
    print(f"[crashexplore] report written to {args.out}")
    if not report.ok:
        if not args.quiet:
            for result in report.failures:
                for violation in result.violations:
                    print(f"[crashexplore] FAIL seed {result.seed}: "
                          f"{violation}", file=sys.stderr)
        return 1
    print("[crashexplore] all three cluster invariants held on every seed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.crashexplore",
        description="Systematic power-failure and media-fault sweeps "
                    "over a workload's fault points.")
    parser.add_argument("--workload", default="linkbench-small",
                        choices=sorted(WORKLOADS),
                        help="workload harness to sweep "
                             "(default: linkbench-small)")
    parser.add_argument("--out", default="crashexplore-report.jsonl",
                        help="JSONL report path "
                             "(default: crashexplore-report.jsonl)")
    parser.add_argument("--max-points", type=int, default=None,
                        metavar="N",
                        help="explore only N occurrences (budget cap for "
                             "CI smoke runs; the media sweep samples "
                             "evenly, the power sweep takes the first N)")
    parser.add_argument("--media-faults", action="store_true",
                        help="sweep media faults (read/program/erase "
                             "failures) instead of power failures")
    parser.add_argument("--media-modes", default=None, metavar="M1,M2",
                        help="comma-separated media modes "
                             f"({', '.join(ALL_MODES)}; default: all "
                             f"generic modes, plus 'uncorrectable' on "
                             f"ftl-basic)")
    parser.add_argument("--chaos", action="store_true",
                        help="sweep host-boundary command faults (SHARE "
                             "timeouts, busy bursts, sticky outages, "
                             "outage+power) instead of power failures")
    parser.add_argument("--chaos-modes", default=None, metavar="M1,M2",
                        help="comma-separated chaos modes "
                             f"({', '.join(ALL_CHAOS_MODES)}; "
                             f"default: all)")
    parser.add_argument("--cluster", action="store_true",
                        help="sweep single-shard kills at every ack "
                             "boundary of the sharded-tier harness "
                             "(ignores --workload)")
    parser.add_argument("--cluster-media", action="store_true",
                        help="sweep NAND media storms (not kills) at every "
                             "ack boundary; the health monitor must trip "
                             "proactive promotions (ignores --workload)")
    parser.add_argument("--cluster-chaos", action="store_true",
                        help="run the seeded cluster chaos scheduler: "
                             "randomized kills, storms, busy faults and a "
                             "mid-run rebalance per seed "
                             "(ignores --workload)")
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="number of chaos seeds for --cluster-chaos "
                             "(default: 3)")
    parser.add_argument("--l2p", default=None, metavar="STRATEGY",
                        choices=sorted(STRATEGY_NAMES),
                        help="L2P mapping strategy for every device the "
                             f"sweep builds ({', '.join(STRATEGY_NAMES)}; "
                             "default: the REPRO_L2P env var, else flat)")
    parser.add_argument("--list", action="store_true",
                        help="list available workloads and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-violation output")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(WORKLOADS):
            print(name)
        return 0

    if sum((args.media_faults, args.chaos, args.cluster,
            args.cluster_media, args.cluster_chaos)) > 1:
        print("[crashexplore] --media-faults, --chaos, --cluster, "
              "--cluster-media and --cluster-chaos are separate sweep "
              "dimensions; pick one per run", file=sys.stderr)
        return 2
    if args.l2p is not None:
        # Workload harnesses resolve their FtlConfig through
        # resolve_l2p_strategy(), which reads this env var — setting it
        # here switches every device the sweep builds, enumeration and
        # injection runs alike.
        os.environ["REPRO_L2P"] = args.l2p
        print(f"[crashexplore] L2P strategy: {args.l2p}")
    factory = WORKLOADS[args.workload]
    sink = JsonlSink(args.out)
    try:
        if args.media_faults:
            return _media_sweep(args, factory, sink)
        if args.chaos:
            return _chaos_sweep(args, factory, sink)
        if args.cluster:
            return _cluster_sweep(args, sink)
        if args.cluster_media:
            return _cluster_media_sweep(args, sink)
        if args.cluster_chaos:
            return _cluster_chaos_sweep(args, sink)
        return _power_sweep(args, factory, sink)
    finally:
        sink.close()


if __name__ == "__main__":
    raise SystemExit(main())
