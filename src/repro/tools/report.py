"""Render a telemetry JSONL artifact as paper-shaped text reports.

Usage::

    python -m repro.tools.report results/linkbench_telemetry.jsonl
    python -m repro.tools.report out.jsonl --section activities

Sections:

* ``activities`` — Figure-6-style breakdown of I/O activity inside the
  device (host writes vs GC copybacks vs mapping traffic), drawn from the
  final metrics snapshot,
* ``latency``    — Table-1-style percentile rows for every latency
  histogram in the final snapshot,
* ``spans``      — per-span-name count / total / mean virtual duration,
* ``gc``         — GC attribution: each ``ftl.gc`` span walked up its
  parent chain to the host-level operation that triggered it,
* ``queue``      — the event-driven device's queueing picture: per-device
  queue-wait percentiles (time a command sat admitted-but-behind-others
  versus being serviced) and per-channel busy time / utilisation,
* ``cluster``    — the sharded tier: per-shard client latency percentiles
  with epoch and replication lag, plus tier-wide kill / failover /
  replication counters,
* ``mapping``    — the L2P layer: the ``ftl.l2p.*`` gauges (modeled
  footprint, fragment count, SHARE remap splits) from the final
  snapshot, plus per-strategy comparison rows when the artifact carries
  ``mapping_lab`` records (the committed
  ``results/mapping_lab.jsonl`` grid).

The artifact is whatever a :class:`repro.obs.JsonlSink` captured — metric
snapshots (``type: "metrics"``) and finished spans (``type: "span"``).
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.text_plots import ascii_bars
from repro.bench.report import format_table
from repro.obs.sinks import read_jsonl

#: Final-snapshot counters that make up the Figure-6-style breakdown,
#: as (label, dotted-name-suffix-or-name) pairs.  Device counters are
#: summed across device scopes (``device.<name>.<suffix>``).
ACTIVITY_DEVICE_COUNTERS = (
    ("host writes (pages)", "host_write_pages"),
    ("host reads (pages)", "host_read_pages"),
    ("flushes", "flush_commands"),
    ("share pairs", "share_pairs"),
    ("trims", "trim_commands"),
)
ACTIVITY_FTL_COUNTERS = (
    ("GC events", "ftl.gc.events"),
    ("GC copybacks (pages)", "ftl.gc.copyback_pages"),
    ("block erases", "ftl.gc.block_erases"),
    ("map page writes", "ftl.maplog.page_writes"),
    ("wear-level moves", "ftl.wear.level_moves"),
)


def load(path: str) -> List[Dict]:
    """Read every record of a telemetry JSONL artifact."""
    return read_jsonl(path)


def last_metrics(records: Sequence[Dict]) -> Dict:
    """The final metrics snapshot's name -> value mapping ({} if none)."""
    out: Dict = {}
    for record in records:
        if record.get("type") == "metrics":
            out = record.get("metrics", {})
    return out


def _sum_device_counter(metrics: Dict, suffix: str) -> float:
    total = 0.0
    for name, value in metrics.items():
        if name.startswith("device.") and name.endswith(f".{suffix}"):
            total += value
    return total


def activity_breakdown(metrics: Dict) -> Tuple[List[str], List[float]]:
    """Figure-6-style labels and values from a metrics snapshot."""
    labels: List[str] = []
    values: List[float] = []
    for label, suffix in ACTIVITY_DEVICE_COUNTERS:
        labels.append(label)
        values.append(_sum_device_counter(metrics, suffix))
    for label, name in ACTIVITY_FTL_COUNTERS:
        labels.append(label)
        values.append(float(metrics.get(name, 0)))
    return labels, values


def render_activities(metrics: Dict, width: int = 50) -> str:
    if not metrics:
        return "no metrics snapshots in artifact"
    labels, values = activity_breakdown(metrics)
    return ascii_bars(labels, values, width=width,
                      title="I/O activities (Figure 6 shape)")


def latency_table(metrics: Dict) -> str:
    """Table-1-shaped rows for every histogram summary in the snapshot."""
    rows = []
    for name in sorted(metrics):
        value = metrics[name]
        if not isinstance(value, dict) or not value.get("count"):
            continue
        if not all(f"p{p}" in value for p in (25, 50, 75, 99)):
            continue
        rows.append([name, value["count"], value["mean"], value["p25"],
                     value["p50"], value["p75"], value["p99"], value["max"]])
    if not rows:
        return "no latency histograms in artifact"
    return format_table(
        ["histogram", "count", "mean", "P25", "P50", "P75", "P99", "max"],
        rows, title="Latency distributions (Table 1 shape)")


def span_summary(records: Sequence[Dict]) -> str:
    """Count / total / mean virtual duration per span name."""
    agg: Dict[str, List[float]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        entry = agg.setdefault(record["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += record.get("duration_us", 0)
    if not agg:
        return "no spans in artifact"
    rows = [[name, int(count), total_us, total_us / count]
            for name, (count, total_us) in sorted(agg.items())]
    return format_table(
        ["span", "count", "total_us", "mean_us"], rows,
        title="Spans by name (virtual time)")


def gc_attribution(records: Sequence[Dict]) -> Dict[str, int]:
    """For every ``ftl.gc`` span, walk the parent chain to its root span
    and count GC events per root name — answering 'which host operation
    triggered the garbage collection?'."""
    by_id = {record["span_id"]: record for record in records
             if record.get("type") == "span"}
    out: Dict[str, int] = {}
    for record in by_id.values():
        if record["name"] != "ftl.gc":
            continue
        root = record
        while root.get("parent_id") is not None:
            parent = by_id.get(root["parent_id"])
            if parent is None:
                break  # parent fell outside the capture window
            root = parent
        out[root["name"]] = out.get(root["name"], 0) + 1
    return out


def render_gc_attribution(records: Sequence[Dict]) -> str:
    counts = gc_attribution(records)
    if not counts:
        return "no ftl.gc spans in artifact"
    rows = [[name, count] for name, count in
            sorted(counts.items(), key=lambda item: -item[1])]
    return format_table(["root span", "gc events"], rows,
                        title="GC attribution (root operation -> GC runs)")


def queue_summary(metrics: Dict) -> Tuple[List[List], List[List]]:
    """Queue-wait percentile rows and per-channel utilisation rows from
    a metrics snapshot.

    Returns ``(wait_rows, channel_rows)`` where wait rows are
    ``[device, count, mean, p50, p75, p99, max]`` (microseconds) and
    channel rows are ``[device, channel, busy_us, utilisation]``.
    """
    wait_rows: List[List] = []
    channel_rows: List[List] = []
    for name in sorted(metrics):
        if name.startswith("device.") and name.endswith(".queue.wait_us"):
            value = metrics[name]
            if isinstance(value, dict) and value.get("count"):
                device = name.split(".")[1]
                wait_rows.append([device, value["count"], value["mean"],
                                  value["p50"], value["p75"], value["p99"],
                                  value["max"]])
        if name.startswith("device.") and ".chan." in name \
                and name.endswith(".busy_us"):
            parts = name.split(".")
            device, channel = parts[1], int(parts[3])
            util = metrics.get(
                f"device.{device}.chan.{channel}.util", 0.0)
            channel_rows.append([device, channel, metrics[name], util])
    channel_rows.sort()
    return wait_rows, channel_rows


def render_queueing(metrics: Dict) -> str:
    wait_rows, channel_rows = queue_summary(metrics)
    parts = []
    if wait_rows:
        parts.append(format_table(
            ["device", "count", "mean", "P50", "P75", "P99", "max"],
            wait_rows, title="Queue wait (us, admitted -> service start)"))
    if channel_rows:
        parts.append(format_table(
            ["device", "channel", "busy_us", "utilisation"],
            channel_rows, title="Channel occupancy"))
    if not parts:
        return ("no queueing telemetry in artifact "
                "(single-channel QD1 runs stay on the serial fast path)")
    return "\n\n".join(parts)


#: Scalar ``cluster.*`` counters shown in the tier health table, as
#: (label, name-suffix) pairs.
CLUSTER_COUNTERS = (
    ("operations", "ops"),
    ("acked writes", "acked_writes"),
    ("reads", "reads"),
    ("shard kills", "shard_kills"),
    ("failovers", "failovers"),
    ("failover duration (us)", "failover_duration_us"),
    ("records replayed at promotion", "replayed_records"),
    ("replication records applied", "repl_applied"),
    ("backpressure waits", "backpressure_waits"),
    ("cross-shard copies", "cross_shard_copies"),
    ("replica reads", "replica_reads"),
    ("replica read fallbacks", "replica_read_fallbacks"),
    ("media health trips", "media_trips"),
    ("media storms injected", "media_storms"),
    ("proactive promotions", "proactive_promotions"),
    ("rebalances", "rebalances"),
    ("keys migrated", "migrated_keys"),
    ("migrations via SHARE remap", "shared_migrations"),
)

#: Tier-wide ``cluster.*`` histograms shown as distribution rows, as
#: (label, name-suffix) pairs.  ``replica_lag`` is sampled once per
#: ``pump_replication`` round per group; ``convergence_us`` records the
#: wall time from a replica rejoin/lag event to full catch-up.
CLUSTER_DISTRIBUTIONS = (
    ("replica lag at pump (records)", "replica_lag"),
    ("replica convergence time (us)", "convergence_us"),
)


def cluster_summary(metrics: Dict) -> Tuple[List[List], List[List],
                                            List[List]]:
    """Per-shard rows, tier-wide counter rows, and distribution rows
    from a snapshot.

    Shard rows are ``[shard, epoch, repl_lag, count, p50, p99, max]``
    (client-visible latency, microseconds); counter rows are
    ``[label, value]`` for every nonzero ``cluster.*`` scalar;
    distribution rows are ``[label, count, mean, p50, p99, max]`` for
    each populated histogram in :data:`CLUSTER_DISTRIBUTIONS`.
    """
    shard_rows: List[List] = []
    for name in sorted(metrics):
        if not name.startswith("cluster.latency_us."):
            continue
        value = metrics[name]
        if not isinstance(value, dict) or not value.get("count"):
            continue
        shard = name[len("cluster.latency_us."):]
        epoch = metrics.get(f"cluster.epoch.{shard}", 0)
        lag = metrics.get(f"cluster.repl_lag.{shard}", 0)
        shard_rows.append([shard, epoch, lag, value["count"], value["p50"],
                           value["p99"], value["max"]])
    counter_rows: List[List] = []
    for label, suffix in CLUSTER_COUNTERS:
        value = metrics.get(f"cluster.{suffix}")
        if value:
            counter_rows.append([label, value])
    dist_rows: List[List] = []
    for label, suffix in CLUSTER_DISTRIBUTIONS:
        value = metrics.get(f"cluster.{suffix}")
        if isinstance(value, dict) and value.get("count"):
            dist_rows.append([label, value["count"], value["mean"],
                              value["p50"], value["p99"], value["max"]])
    return shard_rows, counter_rows, dist_rows


def render_cluster(metrics: Dict) -> str:
    shard_rows, counter_rows, dist_rows = cluster_summary(metrics)
    parts = []
    if shard_rows:
        parts.append(format_table(
            ["shard", "epoch", "repl_lag", "count", "P50", "P99", "max"],
            shard_rows, title="Cluster shards (client latency, us)"))
    if counter_rows:
        parts.append(format_table(
            ["counter", "value"], counter_rows,
            title="Cluster tier (kills, failovers, replication)"))
    if dist_rows:
        parts.append(format_table(
            ["distribution", "count", "mean", "P50", "P99", "max"],
            dist_rows, title="Replica lag / convergence"))
    if not parts:
        return "no cluster telemetry in artifact"
    return "\n\n".join(parts)


#: ``ftl.l2p.*`` gauges shown in the mapping table, as (label,
#: name-suffix) pairs.  Names are matched bare and with any scope
#: prefix (``device.data.ftl.l2p.…``), summing across devices.
L2P_GAUGES = (
    ("L2P footprint (modeled bytes)", "ftl.l2p.footprint_bytes"),
    ("L2P fragments (runs/groups/deltas)", "ftl.l2p.runs"),
    ("SHARE remap splits", "ftl.l2p.remap_splits"),
)


def mapping_summary(records: Sequence[Dict],
                    metrics: Dict) -> Tuple[List[List], List[List]]:
    """Gauge rows from the final snapshot and per-strategy rows from any
    ``mapping_lab`` records in the artifact.

    Gauge rows are ``[label, value]``; strategy rows are
    ``[strategy, workload, footprint, fragments, splits, splits/pair,
    waf, kops/s]`` — the shape of ``results/mapping_lab.jsonl``.
    """
    gauge_rows: List[List] = []
    for label, suffix in L2P_GAUGES:
        total = 0.0
        found = False
        for name, value in metrics.items():
            if name == suffix or name.endswith(f".{suffix}"):
                if isinstance(value, (int, float)):
                    total += value
                    found = True
        if found:
            gauge_rows.append([label, total])
    lab_rows: List[List] = []
    for record in records:
        if record.get("type") != "mapping_lab":
            continue
        lab_rows.append([
            record.get("strategy", "?"),
            record.get("workload", "?"),
            record.get("footprint_bytes", 0),
            record.get("fragments", 0),
            record.get("remap_splits", 0),
            round(record.get("splits_per_pair", 0.0), 3),
            round(record.get("waf", 0.0), 3),
            round(record.get("wall_kops_per_s", 0.0), 1),
        ])
    lab_rows.sort(key=lambda row: (row[1], row[0]))
    return gauge_rows, lab_rows


def render_mapping(records: Sequence[Dict], metrics: Dict) -> str:
    gauge_rows, lab_rows = mapping_summary(records, metrics)
    parts = []
    if gauge_rows:
        parts.append(format_table(
            ["gauge", "value"], gauge_rows,
            title="L2P mapping layer (final snapshot)"))
    if lab_rows:
        parts.append(format_table(
            ["strategy", "workload", "footprint_B", "fragments",
             "remap_splits", "splits/pair", "WAF", "kops/s"],
            lab_rows, title="Mapping-strategy lab (footprint vs WAF vs "
                            "throughput vs SHARE fragmentation)"))
    if not parts:
        return ("no L2P telemetry in artifact (ftl.l2p.* gauges are "
                "refreshed at init, SHARE batches, flush, and recovery)")
    return "\n\n".join(parts)


SECTIONS = ("activities", "latency", "spans", "gc", "queue", "cluster",
            "mapping")


def render(records: Sequence[Dict], section: str = "all") -> str:
    metrics = last_metrics(records)
    parts = []
    if section in ("all", "activities"):
        parts.append(render_activities(metrics))
    if section in ("all", "latency"):
        parts.append(latency_table(metrics))
    if section in ("all", "spans"):
        parts.append(span_summary(records))
    if section in ("all", "gc"):
        parts.append(render_gc_attribution(records))
    if section in ("all", "queue"):
        parts.append(render_queueing(metrics))
    if section in ("all", "cluster"):
        parts.append(render_cluster(metrics))
    if section in ("all", "mapping"):
        parts.append(render_mapping(records, metrics))
    return "\n\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="Render a telemetry JSONL artifact")
    parser.add_argument("path", help="JSONL artifact written by JsonlSink")
    parser.add_argument("--section", choices=("all",) + SECTIONS,
                        default="all")
    args = parser.parse_args(argv)
    try:
        records = load(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render(records, args.section))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
