"""Command-line utilities for exploring the simulated device.

* ``python -m repro.tools.microbench`` — fio-style micro-benchmark
  (sequential/random read/write/share patterns, IOPS/bandwidth/WAF).
* ``python -m repro.tools.inspect`` — run a canned scenario and dump the
  device's internal state (mapping pressure, GC stats, wear histogram).
* ``python -m repro.tools.report`` — render a telemetry JSONL artifact
  (Figure-6-style activity breakdown, Table-1-style latency rows, span
  summaries, GC attribution).
"""
