"""Device inspector: dump the FTL's internal state after a scenario.

Shows what firmware engineers would pull off a debug UART: mapping
pressure (mapped LPNs, shared pages, log-backed mappings), free-space and
GC state, wear histogram, and the share-table occupancy the paper sizes
at 250 entries.

Usage::

    python -m repro.tools.inspect                 # canned mixed scenario
    python -m repro.tools.inspect --scenario share-heavy
"""

from __future__ import annotations

import argparse
import random
from typing import Dict, List, Optional

from repro.flash.geometry import FlashGeometry
from repro.ftl.config import FtlConfig
from repro.ftl.mapping import resolve_l2p_strategy
from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

SCENARIOS = ("mixed", "share-heavy", "overwrite")


def build_device(block_count: int = 128) -> Ssd:
    geometry = FlashGeometry(page_size=4096, pages_per_block=64,
                             block_count=block_count,
                             overprovision_ratio=0.1)
    return Ssd(SimClock(), SsdConfig(
        geometry=geometry,
        ftl=FtlConfig(map_block_count=6,
                      l2p_strategy=resolve_l2p_strategy())))


def run_scenario(ssd: Ssd, scenario: str, seed: int = 3) -> None:
    rng = random.Random(seed)
    span = int(ssd.logical_pages * 0.6)
    for lpn in range(span):
        ssd.write(lpn, ("base", lpn))
    if scenario == "mixed":
        for i in range(span):
            action = rng.random()
            if action < 0.5:
                ssd.write(rng.randrange(span), ("w", i))
            elif action < 0.8:
                ssd.read(rng.randrange(span))
            else:
                ssd.share(span + (i % (ssd.logical_pages - span - 1)),
                          rng.randrange(span))
    elif scenario == "share-heavy":
        free_span = ssd.logical_pages - span
        for i in range(span * 2):
            ssd.share(span + (i % free_span), rng.randrange(span))
    elif scenario == "overwrite":
        for i in range(span * 3):
            ssd.write(rng.randrange(span), ("w", i))
    else:
        raise ValueError(f"unknown scenario {scenario!r}")


def gather_report(ssd: Ssd) -> Dict[str, object]:
    """Collect the inspector's numbers as a dict (tests use this)."""
    ftl = ssd.ftl
    erase_counts = ssd.nand.erase_counts
    histogram: Dict[int, int] = {}
    for count in erase_counts:
        histogram[count] = histogram.get(count, 0) + 1
    shared_pages = sum(1 for ppn in list(ftl.rev._refs)
                       if ftl.rev.ref_count(ppn) > 1)
    return {
        "logical_pages": ftl.logical_pages,
        "mapped_lpns": ftl.fwd.mapped_count,
        "utilization": ftl.fwd.mapped_count / ftl.logical_pages,
        "l2p_strategy": ftl.fwd.name,
        "l2p_footprint_bytes": ftl.fwd.footprint_bytes(),
        "l2p_fragments": ftl.fwd.fragment_count(),
        "l2p_remap_splits": ftl.fwd.remap_splits,
        "free_blocks": ftl.free_block_count,
        "shared_physical_pages": shared_pages,
        "share_table_used": ftl.rev.extra_entries,
        "share_table_capacity": ftl.rev.capacity,
        "share_table_spilled": ftl.rev.spilled_entries,
        "share_table_spill_peak": ftl.rev.spilled_peak,
        "log_backed_mappings": len(ftl._share_backed),
        "trim_tombstones": len(ftl._trim_tombstones),
        "map_page_writes": ftl.map_page_writes,
        "gc_events": ftl.stats.gc_events,
        "copyback_pages": ftl.stats.copyback_pages,
        "wear_histogram": dict(sorted(histogram.items())),
        "waf": ssd.stats.write_amplification,
    }


def format_report(report: Dict[str, object]) -> str:
    lines = ["device state", "-" * 40]
    for key, value in report.items():
        if key == "wear_histogram":
            continue
        if isinstance(value, float):
            lines.append(f"{key:>24}: {value:.3f}")
        else:
            lines.append(f"{key:>24}: {value}")
    lines.append(f"{'wear histogram':>24}: erase-count -> blocks")
    for count, blocks in report["wear_histogram"].items():
        lines.append(f"{'':>26}{count:>3} -> {'#' * min(60, blocks)} "
                     f"({blocks})")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=SCENARIOS, default="mixed")
    parser.add_argument("--blocks", type=int, default=128)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)
    ssd = build_device(args.blocks)
    run_scenario(ssd, args.scenario, args.seed)
    ssd.ftl.check_invariants()
    print(format_report(gather_report(ssd)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
