"""SSD block device: latency-charging, stat-counting facade over the FTL."""

from repro.ssd.device import Ssd, SsdConfig
from repro.ssd.stats import DeviceStats
from repro.ssd.trace import IoTrace, TraceEvent

__all__ = ["Ssd", "SsdConfig", "DeviceStats", "IoTrace", "TraceEvent"]
