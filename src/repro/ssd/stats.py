"""Host-visible device counters.

These are the numbers Figure 6 plots: page writes requested by the host,
garbage-collection events inside the device, and copyback pages moved by
GC.  Write amplification factor (WAF) is derived as
``(host programs + GC copybacks + map/spill programs) / host programs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


def _waf(host_writes: float, total_programs: float) -> float:
    if host_writes <= 0:
        return 0.0
    return total_programs / host_writes


@dataclass
class DeviceStats:
    """Cumulative counters maintained by the :class:`repro.ssd.device.Ssd`
    facade.  All byte counts use the device page size."""

    page_size: int = 4096
    host_write_pages: int = 0
    host_read_pages: int = 0
    share_commands: int = 0
    share_pairs: int = 0
    trim_commands: int = 0
    flush_commands: int = 0
    gc_events: int = 0
    copyback_pages: int = 0
    block_erases: int = 0
    map_page_writes: int = 0
    share_spill_pages: int = 0
    share_log_spills: int = 0
    spill_lookups: int = 0
    wear_level_moves: int = 0
    busy_us: float = 0.0
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def host_written_bytes(self) -> int:
        return self.host_write_pages * self.page_size

    @property
    def host_read_bytes(self) -> int:
        return self.host_read_pages * self.page_size

    @property
    def total_nand_programs(self) -> int:
        """Every page program the media absorbed."""
        return (self.host_write_pages + self.copyback_pages
                + self.map_page_writes + self.share_spill_pages)

    @property
    def write_amplification(self) -> float:
        """Device-internal WAF relative to host page writes.  A fresh
        device (no host writes yet — e.g. internal map traffic only)
        reports 0.0 rather than dividing by zero."""
        return _waf(self.host_write_pages, self.total_nand_programs)

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "host_write_pages": self.host_write_pages,
            "host_read_pages": self.host_read_pages,
            "share_commands": self.share_commands,
            "share_pairs": self.share_pairs,
            "trim_commands": self.trim_commands,
            "flush_commands": self.flush_commands,
            "gc_events": self.gc_events,
            "copyback_pages": self.copyback_pages,
            "block_erases": self.block_erases,
            "map_page_writes": self.map_page_writes,
            "share_spill_pages": self.share_spill_pages,
            "share_log_spills": self.share_log_spills,
            "spill_lookups": self.spill_lookups,
            "wear_level_moves": self.wear_level_moves,
            "write_amplification": self.write_amplification,
            "busy_us": self.busy_us,
        }
        out.update(self.extra)
        return out

    def delta_since(self, before: "DeviceStats") -> Dict[str, float]:
        """Difference of the numeric counters against an earlier copy.

        ``write_amplification`` is a ratio, so its delta is recomputed
        from the interval's own counters (guarded against a write-free
        interval) rather than subtracting two cumulative ratios, which
        would be meaningless.
        """
        now = self.snapshot()
        past = before.snapshot()
        delta = {key: now[key] - past.get(key, 0) for key in now}
        host = delta["host_write_pages"]
        programs = (host + delta["copyback_pages"]
                    + delta["map_page_writes"] + delta["share_spill_pages"])
        delta["write_amplification"] = _waf(host, programs)
        return delta

    def copy(self) -> "DeviceStats":
        clone = DeviceStats(page_size=self.page_size)
        clone.__dict__.update({k: (dict(v) if isinstance(v, dict) else v)
                               for k, v in self.__dict__.items()})
        return clone
