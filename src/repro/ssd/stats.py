"""Host-visible device counters.

These are the numbers Figure 6 plots: page writes requested by the host,
garbage-collection events inside the device, and copyback pages moved by
GC.  Write amplification factor (WAF) is derived as
``(host programs + GC copybacks + map/spill programs) / host programs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class DeviceStats:
    """Cumulative counters maintained by the :class:`repro.ssd.device.Ssd`
    facade.  All byte counts use the device page size."""

    page_size: int = 4096
    host_write_pages: int = 0
    host_read_pages: int = 0
    share_commands: int = 0
    share_pairs: int = 0
    trim_commands: int = 0
    flush_commands: int = 0
    gc_events: int = 0
    copyback_pages: int = 0
    block_erases: int = 0
    map_page_writes: int = 0
    share_spill_pages: int = 0
    busy_us: float = 0.0
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def host_written_bytes(self) -> int:
        return self.host_write_pages * self.page_size

    @property
    def host_read_bytes(self) -> int:
        return self.host_read_pages * self.page_size

    @property
    def total_nand_programs(self) -> int:
        """Every page program the media absorbed."""
        return (self.host_write_pages + self.copyback_pages
                + self.map_page_writes + self.share_spill_pages)

    @property
    def write_amplification(self) -> float:
        """Device-internal WAF relative to host page writes."""
        if self.host_write_pages == 0:
            return 0.0
        return self.total_nand_programs / self.host_write_pages

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "host_write_pages": self.host_write_pages,
            "host_read_pages": self.host_read_pages,
            "share_commands": self.share_commands,
            "share_pairs": self.share_pairs,
            "trim_commands": self.trim_commands,
            "flush_commands": self.flush_commands,
            "gc_events": self.gc_events,
            "copyback_pages": self.copyback_pages,
            "block_erases": self.block_erases,
            "map_page_writes": self.map_page_writes,
            "share_spill_pages": self.share_spill_pages,
            "write_amplification": self.write_amplification,
            "busy_us": self.busy_us,
        }
        out.update(self.extra)
        return out

    def delta_since(self, before: "DeviceStats") -> Dict[str, float]:
        """Difference of the numeric counters against an earlier copy."""
        now = self.snapshot()
        past = before.snapshot()
        return {key: now[key] - past.get(key, 0) for key in now}

    def copy(self) -> "DeviceStats":
        clone = DeviceStats(page_size=self.page_size)
        clone.__dict__.update({k: (dict(v) if isinstance(v, dict) else v)
                               for k, v in self.__dict__.items()})
        return clone
