"""Native command queue and host submission sessions.

The event-driven device admits commands through a bounded
:class:`NativeCommandQueue` (NCQ-style): a command *arrives* when the
host issues it, is *admitted* once a queue slot is free, occupies its
NAND channels after a front DRAM/firmware phase, and *completes* when
the last channel piece finishes.  At ``depth=1`` admission fully
serialises commands, which is exactly the old caller-advances-the-clock
model — the default everywhere, so existing results are reproduced
bit-for-bit.

A :class:`DeviceSession` is one closed-loop submission context (a host
thread / benchmark client).  It carries a virtual *cursor*: the time at
which its next command arrives.  Attaching a session to a device turns
the synchronous command methods into submissions — they queue the
command, advance the session cursor to the command's completion time
and return without blocking the simulated clock; the workload driver
``poll()``s completions and ``drain()``s at the end.  One session may
be attached to several devices (data + log SSD) so a client's
cross-device command chain stays ordered.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple


class CommandTicket:
    """One in-flight device command: timing plus completion bookkeeping.

    Everything the completion event needs is captured at submission so
    the event callback is self-contained: the priced latency (float, for
    the latency histograms), its integer service time, arrival and
    completion instants, and the deferred ack-journal record.
    """

    __slots__ = ("kind", "lpn", "count", "latency_us", "service_us",
                 "arrival_us", "completion_us", "gc_events",
                 "copyback_pages", "op_kind", "op_record", "gate_kind",
                 "gate_lpns")

    def __init__(self, kind: str, lpn: int, count: int, latency_us: float,
                 service_us: int, arrival_us: int, completion_us: int,
                 gc_events: int = 0, copyback_pages: int = 0,
                 op_kind: Optional[str] = None, op_record: Any = None,
                 gate_kind: Optional[str] = None,
                 gate_lpns: Optional[Tuple[int, ...]] = None) -> None:
        self.kind = kind
        self.lpn = lpn
        self.count = count
        self.latency_us = latency_us
        self.service_us = service_us
        self.arrival_us = arrival_us
        self.completion_us = completion_us
        self.gc_events = gc_events
        self.copyback_pages = copyback_pages
        self.op_kind = op_kind
        self.op_record = op_record
        self.gate_kind = gate_kind
        self.gate_lpns = gate_lpns

    @property
    def wait_us(self) -> int:
        """Time spent queued rather than serviced."""
        return max(0, (self.completion_us - self.arrival_us)
                   - self.service_us)

    def __repr__(self) -> str:
        return (f"CommandTicket({self.kind!r}, lpn={self.lpn}, "
                f"arrival={self.arrival_us}, "
                f"completion={self.completion_us})")


class NativeCommandQueue:
    """Bounded command admission: at most ``depth`` commands between
    admission and completion.

    The queue tracks outstanding completion times in a heap.  Admitting
    a command first retires every completion at or before its arrival;
    if the queue is still full, the command waits for the earliest
    outstanding completion — FIFO admission against a bounded tag set,
    the shape of SATA/NVMe native command queueing.  ``depth=1``
    degenerates to a single server: each command starts when the
    previous one completes, reproducing the serial device model.
    """

    __slots__ = ("depth", "_completions")

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1: {depth}")
        self.depth = depth
        self._completions: List[int] = []

    def admit(self, arrival_us: int) -> int:
        """Admit a command arriving at ``arrival_us``; returns the time
        its queue slot frees (= earliest possible service start).

        Timestamps are integer microseconds throughout the simulator, so
        no defensive conversion here — this runs once per command."""
        heap = self._completions
        while heap and heap[0] <= arrival_us:
            heapq.heappop(heap)
        admit = arrival_us
        while len(heap) >= self.depth:
            freed = heapq.heappop(heap)
            if freed > admit:
                admit = freed
        return admit

    def commit(self, completion_us: int) -> None:
        """Record an admitted command's completion time."""
        heapq.heappush(self._completions, completion_us)

    @property
    def inflight(self) -> int:
        """Outstanding commands not yet retired by an admission."""
        return len(self._completions)

    def reset(self) -> None:
        """Forget all outstanding commands (power cycle)."""
        self._completions = []


class DeviceSession:
    """One closed-loop submission context (a host thread).

    ``now_us`` is the session cursor: when the session is attached to a
    device, each command arrives at the cursor and the cursor jumps to
    the command's completion — so a client's commands chain in order
    while other clients' commands overlap with them in device time.
    """

    __slots__ = ("client", "now_us")

    def __init__(self, client: int = 0, now_us: int = 0) -> None:
        self.client = client
        self.now_us = int(now_us)

    def begin(self, arrival_us: int) -> "DeviceSession":
        """Position the cursor at the next operation's arrival."""
        self.now_us = int(arrival_us)
        return self

    def __repr__(self) -> str:
        return f"DeviceSession(client={self.client}, now_us={self.now_us})"


class issuing:
    """Attach ``session`` to every device for the duration of one
    operation::

        with issuing(session, data_ssd, log_ssd):
            engine.do_one_op()

    A plain class-based context manager (not ``@contextmanager``): the
    workload drivers enter it once per operation, and the generator
    machinery costs roughly 3x a slotted instance on that path.
    """

    __slots__ = ("session", "devices")

    def __init__(self, session: DeviceSession, *devices) -> None:
        self.session = session
        self.devices = devices

    def __enter__(self) -> DeviceSession:
        for device in self.devices:
            device.attach_session(self.session)
        return self.session

    def __exit__(self, exc_type, exc, tb) -> None:
        for device in self.devices:
            device.detach_session()
