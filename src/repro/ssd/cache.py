"""Controller DRAM read cache.

Section 4.2.1: most of the SSD's DRAM holds the forward mapping table;
"the remaining space is used for I/O buffers and cache", and the SHARE
prototype trades a portion of that cache for the reverse-mapping table.
This module is that cache: an LRU of recently read/written logical pages
served at DRAM speed instead of a NAND read.

The DRAM-budget ablation benchmark splits a fixed byte budget between
this cache and the share table to quantify the paper's trade.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

#: Unique miss sentinel so a cached ``None`` payload stays a hit.
_MISS = object()


class DramReadCache:
    """LRU cache of LPN -> page image."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError(
                f"capacity must be non-negative: {capacity_pages}")
        self.capacity_pages = capacity_pages
        # Plain attribute, not a property: lookup/insert run once per
        # host command and a property costs a Python call each time.
        self.enabled = capacity_pages > 0
        self._entries: "OrderedDict[int, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, lpn: int) -> Optional[tuple]:
        """Return (data,) on a hit, None on a miss.  The tuple wrapper
        distinguishes a cached None payload from a miss."""
        if not self.enabled:
            return None
        entries = self._entries
        data = entries.get(lpn, _MISS)
        if data is not _MISS:
            entries.move_to_end(lpn)
            self.hits += 1
            return (data,)
        self.misses += 1
        return None

    def insert(self, lpn: int, data: Any) -> None:
        """Install or refresh an entry, evicting LRU on overflow."""
        if not self.enabled:
            return
        self._entries[lpn] = data
        self._entries.move_to_end(lpn)
        while len(self._entries) > self.capacity_pages:
            self._entries.popitem(last=False)

    def invalidate(self, lpn: int, count: int = 1) -> None:
        """Drop entries for a logical range (on write/trim/share)."""
        if not self.enabled:
            return
        if count == 1:
            self._entries.pop(lpn, None)
            return
        for current in range(lpn, lpn + count):
            self._entries.pop(current, None)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
