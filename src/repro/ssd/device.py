"""The SSD block device.

``Ssd`` is what the host stack talks to: a page-addressed block device with
``read``/``write``/``trim``/``flush`` plus the paper's vendor-unique
``share`` command.  It wraps a :class:`PageMappingFtl`, charges every
command's latency (including GC work the command triggered) to the shared
:class:`SimClock`, and maintains the :class:`DeviceStats` counters Figure 6
reports.

A second, plain :class:`Ssd` without SHARE enabled stands in for the
Samsung PM853T log device of the experimental setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import DeviceError, ShareError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.flash.timing import MLC_TIMING, FlashTiming
from repro.ftl.config import FtlConfig
from repro.ftl.pagemap import PageMappingFtl
from repro.ftl.share_ext import SharePair
from repro.obs import NULL_TELEMETRY
from repro.sim.clock import SimClock
from repro.sim.faults import NO_FAULTS, FaultPlan
from repro.ssd.stats import DeviceStats
from repro.ssd.trace import IoTrace, TraceEvent


@dataclass(frozen=True)
class SsdConfig:
    """Device assembly options.

    ``dram_cache_pages`` models the controller's I/O read cache — the
    DRAM that Section 4.2.1 says the reverse-mapping share table is
    traded against ("we trade a portion of cache space for the reverse
    mapping").  0 disables it.
    """

    geometry: FlashGeometry = FlashGeometry()
    timing: FlashTiming = MLC_TIMING
    ftl: FtlConfig = FtlConfig()
    share_enabled: bool = True
    trace_capacity: int = 0
    trace_keep: str = "oldest"
    dram_cache_pages: int = 0


@dataclass
class _WorkSnapshot:
    copybacks: int
    erases: int
    map_writes: int
    spills: int
    log_spills: int
    spill_lookups: int
    gc_events: int
    wear_moves: int


class Ssd:
    """Page-addressed block device with the SHARE extension."""

    def __init__(self, clock: SimClock, config: Optional[SsdConfig] = None,
                 faults: FaultPlan = NO_FAULTS, telemetry=None,
                 name: str = "ssd") -> None:
        self.config = config or SsdConfig()
        self.clock = clock
        self.faults = faults
        self.name = name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.telemetry.bind_clock(clock)
        self.nand = NandArray(self.config.geometry, faults=faults)
        self.ftl = PageMappingFtl(self.nand, self.config.ftl, faults,
                                  telemetry=self.telemetry)
        self.timing = self.config.timing
        self.stats = DeviceStats(page_size=self.config.geometry.page_size)
        self.trace = IoTrace(self.config.trace_capacity,
                             keep=self.config.trace_keep)
        from repro.ssd.cache import DramReadCache
        self.cache = DramReadCache(self.config.dram_cache_pages)
        # Telemetry handles, resolved once (no-op singletons when the
        # telemetry is NULL_TELEMETRY, so the hot path stays free).
        metrics = self.telemetry.metrics.scope(f"device.{name}")
        self._m_commands = {kind: metrics.counter(f"{kind}_commands")
                            for kind in ("read", "write", "trim", "share",
                                         "flush")}
        self._m_pages = {"read": metrics.counter("host_read_pages"),
                         "write": metrics.counter("host_write_pages"),
                         "trim": metrics.counter("trim_pages"),
                         "share": metrics.counter("share_pairs"),
                         "flush": metrics.counter("flush_pages")}
        self._m_latency = {kind: metrics.histogram(f"latency_us.{kind}")
                           for kind in ("read", "write", "trim", "share",
                                        "flush")}
        self._m_busy_us = metrics.counter("busy_us")

    # ---------------------------------------------------------- properties

    @property
    def page_size(self) -> int:
        return self.config.geometry.page_size

    @property
    def logical_pages(self) -> int:
        return self.ftl.logical_pages

    @property
    def capacity_bytes(self) -> int:
        return self.logical_pages * self.page_size

    @property
    def max_share_batch(self) -> int:
        return self.ftl.max_share_batch

    @property
    def supports_share(self) -> bool:
        return self.config.share_enabled

    # ------------------------------------------------------------ commands

    def _gate(self, kind: str, lpns: Sequence[int],
              phase: str = "submit") -> None:
        """Command-fault gate at the host→device boundary.

        Consulted at submission (before any media work) and completion
        (after the work, modelling a lost completion).  Latency-spike
        delays are charged to the clock; error faults raise typed
        :class:`DeviceError` subclasses the host resilience layer
        handles.  Disarmed cost: one attribute check."""
        commands = self.faults.commands
        if not commands.active:
            return
        delay_us = commands.on_command(kind, lpns, phase)
        if delay_us:
            self.stats.busy_us += delay_us
            self.clock.advance(delay_us)

    def read(self, lpn: int) -> Any:
        """Read one page (through the controller DRAM cache if enabled)."""
        self._gate("read", (lpn,))
        with self.telemetry.tracer.span("device.read"):
            before = self._work_snapshot()
            cached = self.cache.lookup(lpn)
            if cached is not None:
                self.stats.host_read_pages += 1
                self._finish("read", lpn, 1, before, 0.0)  # DRAM-speed hit
                return cached[0]
            data = self.ftl.read(lpn)
            self.cache.insert(lpn, data)
            self.stats.host_read_pages += 1
            self._finish("read", lpn, 1, before,
                         self.timing.read_latency(self.page_size))
            return data

    def write(self, lpn: int, data: Any) -> None:
        """Write one page (out-of-place inside the device)."""
        self._gate("write", (lpn,))
        with self.faults.operation("device.write", (lpn,)), \
                self.telemetry.tracer.span("device.write"):
            before = self._work_snapshot()
            self.ftl.write(lpn, data)
            self.cache.insert(lpn, data)
            self.stats.host_write_pages += 1
            self._finish("write", lpn, 1, before,
                         self.timing.program_latency(self.page_size))

    def write_multi(self, lpn: int, pages: Sequence[Any]) -> None:
        """Write consecutive pages in one host command (one command
        overhead, per-page programs)."""
        if not pages:
            raise DeviceError("write_multi with no pages")
        self._gate("write", tuple(range(lpn, lpn + len(pages))))
        with self.faults.operation("device.write_multi",
                                   tuple(range(lpn, lpn + len(pages)))), \
                self.telemetry.tracer.span("device.write"):
            before = self._work_snapshot()
            for index, page in enumerate(pages):
                self.ftl.write(lpn + index, page)
                self.cache.insert(lpn + index, page)
            self.stats.host_write_pages += len(pages)
            self._finish("write", lpn, len(pages), before,
                         len(pages)
                         * self.timing.program_latency(self.page_size))

    def write_atomic(self, items: Sequence) -> None:
        """Atomic multi-page write (the Section 6.1 baseline command:
        Park et al. / FusionIO-style).  All pages land or none do."""
        if not items:
            raise DeviceError("write_atomic with no pages")
        lpns = tuple(lpn for lpn, __ in items)
        self._gate("awrite", lpns)
        with self.faults.operation("device.awrite", lpns), \
                self.telemetry.tracer.span("device.write", atomic=True):
            before = self._work_snapshot()
            self.ftl.write_atomic(items)
            for item_lpn, data in items:
                self.cache.insert(item_lpn, data)
            self.stats.host_write_pages += len(items)
            self.stats.extra["atomic_write_commands"] = (
                self.stats.extra.get("atomic_write_commands", 0) + 1)
            self._finish("write", items[0][0], len(items), before,
                         len(items)
                         * self.timing.program_latency(self.page_size))
            self._gate("awrite", lpns, "complete")

    # X-FTL transactional interface (Section 6.2 baseline) --------------

    def begin_txn(self) -> int:
        """Open an X-FTL transaction."""
        return self.ftl.begin_txn()

    def write_txn(self, txn_id: int, lpn: int, data: Any) -> None:
        """Stage one in-place page write under a transaction."""
        with self.telemetry.tracer.span("device.write", txn=txn_id):
            before = self._work_snapshot()
            self.ftl.write_txn(txn_id, lpn, data)
            self.stats.host_write_pages += 1
            self._finish("write", lpn, 1, before,
                         self.timing.program_latency(self.page_size))

    def commit_txn(self, txn_id: int) -> None:
        """Atomically publish a transaction's staged pages."""
        with self.faults.operation(
                "device.xcommit", tuple(self.ftl._txn_shadow.get(txn_id, ()))), \
                self.telemetry.tracer.span("device.flush", txn=txn_id):
            before = self._work_snapshot()
            staged_lpns = list(self.ftl._txn_shadow.get(txn_id, ()))
            self.ftl.commit_txn(txn_id)
            for lpn in staged_lpns:
                self.cache.invalidate(lpn)
            self._finish("flush", 0, 0, before, 0.0)

    def abort_txn(self, txn_id: int) -> None:
        """Discard a transaction's staged pages."""
        with self.telemetry.tracer.span("device.trim", txn=txn_id):
            before = self._work_snapshot()
            self.ftl.abort_txn(txn_id)
            self._finish("trim", 0, 0, before, 0.0)

    def trim(self, lpn: int, count: int = 1) -> None:
        """Invalidate a logical range."""
        self._gate("trim", tuple(range(lpn, lpn + max(count, 1))))
        with self.faults.operation("device.trim",
                                   tuple(range(lpn, lpn + max(count, 1)))), \
                self.telemetry.tracer.span("device.trim"):
            before = self._work_snapshot()
            self.ftl.trim(lpn, count)
            self.cache.invalidate(lpn, count)
            self.stats.trim_commands += 1
            self._finish("trim", lpn, count, before,
                         count * self.timing.map_update_us)

    def idle_gc(self, max_blocks: int = 1,
                min_invalid_fraction: float = 0.5) -> int:
        """Host-initiated background GC (run during think time).  The
        reclaim work is charged to the clock like any other command, but
        it happens when no foreground request is waiting — trading idle
        time for smaller foreground stalls."""
        with self.telemetry.tracer.span("device.idle_gc"):
            before = self._work_snapshot()
            reclaimed = self.ftl.idle_gc(max_blocks, min_invalid_fraction)
            self._finish("trim", 0, reclaimed, before, 0.0)
            return reclaimed

    def flush(self) -> None:
        """Barrier: persist pending mapping changes.  Data-page writes are
        durable at command completion already (no volatile write cache is
        modelled), matching the paper's O_DIRECT setup."""
        self._gate("flush", ())
        with self.faults.operation("device.flush"), \
                self.telemetry.tracer.span("device.flush"):
            before = self._work_snapshot()
            self.ftl.flush()
            self.stats.flush_commands += 1
            self._finish("flush", 0, 0, before, 0.0)

    def share(self, dst_lpn: int, src_lpn: int, length: int = 1) -> None:
        """Vendor-unique SHARE command (ranged form)."""
        if not self.config.share_enabled:
            raise ShareError("device does not support the SHARE command")
        lpns = tuple(range(dst_lpn, dst_lpn + length))
        self._gate("share", lpns)
        with self.faults.operation("device.share", lpns), \
                self.telemetry.tracer.span("device.share"):
            before = self._work_snapshot()
            self.ftl.share(dst_lpn, src_lpn, length)
            self.cache.invalidate(dst_lpn, length)
            self.stats.share_commands += 1
            self.stats.share_pairs += length
            self._finish("share", dst_lpn, length, before,
                         length * self.timing.map_update_us)
            self._gate("share", lpns, "complete")

    def share_batch(self, pairs: Sequence[SharePair]) -> None:
        """Vendor-unique SHARE command (batched pair form)."""
        if not self.config.share_enabled:
            raise ShareError("device does not support the SHARE command")
        lpns = tuple(pair.dst_lpn for pair in pairs)
        self._gate("share", lpns)
        with self.faults.operation("device.share", lpns), \
                self.telemetry.tracer.span("device.share"):
            before = self._work_snapshot()
            self.ftl.share_batch(pairs)
            for pair in pairs:
                self.cache.invalidate(pair.dst_lpn)
            self.stats.share_commands += 1
            self.stats.share_pairs += len(pairs)
            self._finish("share", pairs[0].dst_lpn, len(pairs), before,
                         len(pairs) * self.timing.map_update_us)
            self._gate("share", lpns, "complete")

    # ----------------------------------------------------------- internals

    def _work_snapshot(self) -> _WorkSnapshot:
        ftl_stats = self.ftl.stats
        return _WorkSnapshot(
            copybacks=ftl_stats.copyback_pages,
            erases=ftl_stats.block_erases,
            map_writes=self.ftl.map_page_writes,
            spills=ftl_stats.share_spills,
            log_spills=ftl_stats.share_log_spills,
            spill_lookups=ftl_stats.spill_lookups,
            gc_events=ftl_stats.gc_events,
            wear_moves=ftl_stats.wear_level_moves,
        )

    def _finish(self, kind: str, lpn: int, count: int,
                before: _WorkSnapshot, base_latency_us: float) -> None:
        """Charge latency for the command plus the internal work (GC
        copybacks, erases, mapping-page programs, spills) it triggered."""
        ftl_stats = self.ftl.stats
        copybacks = ftl_stats.copyback_pages - before.copybacks
        erases = ftl_stats.block_erases - before.erases
        map_writes = self.ftl.map_page_writes - before.map_writes
        spills = ftl_stats.share_spills - before.spills
        spill_lookups = ftl_stats.spill_lookups - before.spill_lookups
        gc_events = ftl_stats.gc_events - before.gc_events
        latency = (base_latency_us
                   + self.timing.command_overhead_us
                   + copybacks * self.timing.copyback_us
                   + erases * self.timing.erase_us
                   + map_writes * self.timing.program_us
                   + spills * (self.timing.read_us + self.timing.program_us)
                   + spill_lookups * self.timing.read_us)
        self.stats.copyback_pages += copybacks
        self.stats.block_erases += erases
        self.stats.map_page_writes += map_writes
        self.stats.share_spill_pages += spills
        self.stats.share_log_spills += \
            ftl_stats.share_log_spills - before.log_spills
        self.stats.spill_lookups += spill_lookups
        self.stats.gc_events += gc_events
        self.stats.wear_level_moves += \
            ftl_stats.wear_level_moves - before.wear_moves
        self.stats.busy_us += latency
        self.clock.advance(latency)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.tracer.current.set(
                kind=kind, lpn=lpn, count=count, latency_us=latency,
                gc_events=gc_events, copyback_pages=copybacks)
            self._m_commands[kind].inc()
            self._m_pages[kind].inc(count)
            self._m_latency[kind].record(latency)
            self._m_busy_us.inc(latency)
            telemetry.maybe_snapshot(self.clock.now_us)
        if self.trace is not None and self.trace.capacity:
            self.trace.record(TraceEvent(
                timestamp_us=self.clock.now_us, kind=kind, lpn=lpn,
                count=count, latency_us=latency, gc_events=gc_events,
                copyback_pages=copybacks))

    def media_report(self) -> dict:
        """The FTL's ``media.*`` degradation counters plus the raw chip
        failure counts — how hard the medium fought and how the firmware
        coped."""
        report = self.ftl.media_report()
        report["nand_failed_reads"] = self.nand.failed_reads
        report["nand_failed_programs"] = self.nand.failed_programs
        report["nand_failed_erases"] = self.nand.failed_erases
        return report

    # ------------------------------------------------------------ recovery

    def power_cycle(self) -> None:
        """Simulate power loss + reboot: drop all volatile state and run
        the FTL recovery scan over the surviving media."""
        self.ftl = PageMappingFtl.recover(self.nand, self.config.ftl,
                                          self.faults,
                                          telemetry=self.telemetry)
        self.cache.clear()

    # --------------------------------------------------------------- aging

    def age(self, fill_fraction: float, rewrite_fraction: float,
            seed: int = 17) -> None:
        """Pre-condition the device as in Section 5.1's aging pre-run.

        Fills ``fill_fraction`` of the logical space sequentially, then
        rewrites ``rewrite_fraction`` of it at random so blocks hold a mix
        of valid and stale pages and GC is active during measurement.
        Aging I/O is excluded from stats and virtual time.
        """
        if not 0.0 <= fill_fraction <= 1.0:
            raise ValueError(f"fill_fraction must be in [0, 1]: {fill_fraction}")
        if not 0.0 <= rewrite_fraction <= 1.0:
            raise ValueError(
                f"rewrite_fraction must be in [0, 1]: {rewrite_fraction}")
        import random
        rng = random.Random(seed)
        pages = int(self.logical_pages * fill_fraction)
        for lpn in range(pages):
            self.ftl.write(lpn, ("age", lpn))
        for _ in range(int(pages * rewrite_fraction)):
            lpn = rng.randrange(pages)
            self.ftl.write(lpn, ("age2", lpn))
        self.reset_measurement()

    def reset_measurement(self) -> None:
        """Zero the host-visible counters (keep media state) so the
        measured interval starts clean, as after the paper's warm-up."""
        self.stats = DeviceStats(page_size=self.page_size)
        ftl_stats = self.ftl.stats
        for name in list(ftl_stats.__dict__):
            setattr(ftl_stats, name, 0)
        self.trace.clear()
        self.telemetry.reset_measurement()
