"""The SSD block device.

``Ssd`` is what the host stack talks to: a page-addressed block device with
``read``/``write``/``trim``/``flush`` plus the paper's vendor-unique
``share`` command.  It wraps a :class:`PageMappingFtl`, prices every
command's latency (including GC work the command triggered), and maintains
the :class:`DeviceStats` counters Figure 6 reports.

Timing is event-driven.  Each command is *submitted*: it is admitted
through a bounded :class:`NativeCommandQueue`, spends a DRAM/firmware
phase, occupies the NAND channels its pages live on (per-channel busy
resources, so work on different channels overlaps), and *completes* at a
scheduled :class:`~repro.sim.events.EventScheduler` event which delivers
telemetry, the I/O trace record, completion-phase command faults and the
deferred ack-boundary journal entry — in global completion order across
every device sharing the scheduler.

With no session attached (the default), each command method submits and
immediately waits for its own completion, which at ``queue_depth=1`` and
one channel reproduces the old caller-advances-the-clock model
bit-for-bit.  Attaching a :class:`DeviceSession` turns the same methods
into non-blocking submissions whose arrival time is the session cursor —
that is how N closed-loop benchmark clients drive one device
concurrently.

A second, plain :class:`Ssd` without SHARE enabled stands in for the
Samsung PM853T log device of the experimental setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from time import perf_counter_ns
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DeviceError, ShareError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.flash.timing import MLC_TIMING, ChannelSet, FlashTiming
from repro.ftl.config import FtlConfig
from repro.ftl.pagemap import PageMappingFtl
from repro.ftl.share_ext import SharePair
from repro.obs import NULL_TELEMETRY, hot_timer
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.sim.faults import NO_FAULTS, FaultPlan
from repro.ssd.ncq import CommandTicket, DeviceSession, NativeCommandQueue
from repro.ssd.stats import DeviceStats
from repro.ssd.trace import IntervalTrace, IoTrace


@dataclass(frozen=True)
class SsdConfig:
    """Device assembly options.

    ``dram_cache_pages`` models the controller's I/O read cache — the
    DRAM that Section 4.2.1 says the reverse-mapping share table is
    traded against ("we trade a portion of cache space for the reverse
    mapping").  0 disables it.

    ``queue_depth`` bounds the native command queue: how many commands
    may be outstanding between admission and completion.  1 (the
    default) serialises commands exactly like the old synchronous
    model.  ``plane_ways`` is the number of interleave units per NAND
    channel (plane pairs); operations on different ways of one channel
    overlap.

    ``interval_capacity`` bounds the per-channel busy-interval ring
    (:class:`~repro.ssd.trace.IntervalTrace`) the Chrome-trace exporter
    draws channel lanes from.  0 (default) disables capture.
    """

    geometry: FlashGeometry = FlashGeometry()
    timing: FlashTiming = MLC_TIMING
    ftl: FtlConfig = FtlConfig()
    share_enabled: bool = True
    trace_capacity: int = 0
    trace_keep: str = "oldest"
    dram_cache_pages: int = 0
    queue_depth: int = 1
    plane_ways: int = 1
    interval_capacity: int = 0


class Ssd:
    """Page-addressed block device with the SHARE extension."""

    def __init__(self, clock: SimClock, config: Optional[SsdConfig] = None,
                 faults: FaultPlan = NO_FAULTS, telemetry=None,
                 name: str = "ssd",
                 events: Optional[EventScheduler] = None,
                 ncq: Optional[NativeCommandQueue] = None) -> None:
        self.config = config or SsdConfig()
        self.clock = clock
        self.faults = faults
        self.name = name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.telemetry.bind_clock(clock)
        self.nand = NandArray(self.config.geometry, faults=faults)
        self.ftl = PageMappingFtl(self.nand, self.config.ftl, faults,
                                  telemetry=self.telemetry)
        self.timing = self.config.timing
        self.stats = DeviceStats(page_size=self.config.geometry.page_size)
        self.trace = IoTrace(self.config.trace_capacity,
                             keep=self.config.trace_keep)
        self.intervals = IntervalTrace(self.config.interval_capacity)
        from repro.ssd.cache import DramReadCache
        self.cache = DramReadCache(self.config.dram_cache_pages)
        # Event-driven execution core.  Devices of one stack (data + log
        # SSD) share a scheduler so completions fire in global order.
        self.events = events if events is not None else EventScheduler(
            clock, profiler=getattr(self.telemetry, "profiler", None))
        self.channels = ChannelSet(self.config.geometry.channel_count,
                                   ways=self.config.plane_ways)
        # A stack may pass one shared NCQ to several devices: at depth 1
        # that models a host doing synchronous I/O (one outstanding
        # command across the whole stack), which is what the serial
        # model's equivalence requires.
        self.ncq = ncq if ncq is not None \
            else NativeCommandQueue(self.config.queue_depth)
        self._session: Optional[DeviceSession] = None
        # In-flight commands as a min-heap of (completion_us, cmd_seq,
        # ticket).  One scheduler event per *timestamp frame* (the
        # earliest pending completion) drains every due ticket in
        # (completion_us, cmd_seq) order — a burst of N same-time
        # completions costs one heap pop and one dispatched callback in
        # the scheduler instead of N scheduled closures.  ``cmd_seq``
        # is the per-device submission order, so same-timestamp
        # completions fire in the order the host issued them.
        self._inflight: List[Tuple[int, int, CommandTicket]] = []
        self._cmd_seq = 0
        self._drain_event = None
        self._drain_label = f"{name}.drain"
        # Media cost per work-ledger kind, resolved once (replaces a
        # per-entry if-chain on the pricing path).
        timing = self.timing
        page_size = self.config.geometry.page_size
        self._work_cost: Dict[str, float] = {
            "host_read": timing.read_latency(page_size),
            "host_program": timing.program_latency(page_size),
            "copyback": timing.copyback_us,
            "erase": timing.erase_us,
            "map_write": timing.program_us,
            "spill": timing.read_us + timing.program_us,
            "spill_lookup": timing.read_us,
        }
        # Host command base latencies, resolved once for the read/write
        # fast paths (same values as the host_read/host_program entries).
        self._read_latency_us = self._work_cost["host_read"]
        self._program_latency_us = self._work_cost["host_program"]
        self._overhead_us = timing.command_overhead_us
        self._measure_start_us = clock.now_us
        clock.on_reset(self._on_clock_reset)
        # Telemetry handles, resolved once (no-op singletons when the
        # telemetry is NULL_TELEMETRY, so the hot path stays free).
        metrics = self.telemetry.metrics.scope(f"device.{name}")
        self._m_commands = {kind: metrics.counter(f"{kind}_commands")
                            for kind in ("read", "write", "trim", "share",
                                         "flush")}
        self._m_pages = {"read": metrics.counter("host_read_pages"),
                         "write": metrics.counter("host_write_pages"),
                         "trim": metrics.counter("trim_pages"),
                         "share": metrics.counter("share_pairs"),
                         "flush": metrics.counter("flush_pages")}
        self._m_latency = {kind: metrics.histogram(f"latency_us.{kind}")
                           for kind in ("read", "write", "trim", "share",
                                        "flush")}
        self._m_busy_us = metrics.counter("busy_us")
        self._m_queue_wait = metrics.histogram("queue.wait_us")
        self._m_queue_depth = metrics.gauge("queue.depth")
        channel_count = self.config.geometry.channel_count
        self._m_chan_busy = [metrics.counter(f"chan.{ch}.busy_us")
                             for ch in range(channel_count)]
        self._m_chan_util = [metrics.gauge(f"chan.{ch}.util")
                             for ch in range(channel_count)]
        # Sampled-mode gate for per-completion histogram/gauge recording
        # (always-hit in full mode, never-hit when telemetry is off).
        self._sampler = getattr(self.telemetry, "sampler", None)
        # Wall-clock phase timers (None when no profiler is attached, so
        # the hot path pays one load + branch).
        profiler = getattr(self.telemetry, "profiler", None)
        self._pt_issue = hot_timer(profiler, "ncq.admit")
        self._pt_complete = hot_timer(profiler, "device.complete")
        self._pt_emit = hot_timer(profiler, "obs.emit")

    # ---------------------------------------------------------- properties

    @property
    def page_size(self) -> int:
        return self.config.geometry.page_size

    @property
    def logical_pages(self) -> int:
        return self.ftl.logical_pages

    @property
    def capacity_bytes(self) -> int:
        return self.logical_pages * self.page_size

    @property
    def max_share_batch(self) -> int:
        return self.ftl.max_share_batch

    @property
    def supports_share(self) -> bool:
        return self.config.share_enabled

    # ----------------------------------------------------- submission API

    def attach_session(self, session: DeviceSession) -> None:
        """Issue the following commands from ``session``: they arrive at
        the session cursor and return without waiting for completion."""
        if self._session is not None and self._session is not session:
            raise DeviceError(
                f"device {self.name!r} already has a session attached")
        self._session = session

    def detach_session(self) -> None:
        """Return to synchronous (submit-and-wait) issue."""
        self._session = None

    _SUBMITTABLE = ("read", "write", "write_multi", "write_atomic", "trim",
                    "flush", "share", "share_batch", "idle_gc")

    def submit(self, kind: str, *args, **kwargs):
        """Submit one command by kind.  With a session attached this
        queues the command and returns immediately; without one it
        degenerates to the synchronous call."""
        if kind not in self._SUBMITTABLE:
            raise DeviceError(f"unknown command kind {kind!r} "
                              f"(choose from {', '.join(self._SUBMITTABLE)})")
        return getattr(self, kind)(*args, **kwargs)

    def poll(self, now_us: Optional[int] = None) -> int:
        """Fire every completion due at or before ``now_us`` (default:
        the session cursor, else the clock); returns how many commands
        are still in flight."""
        if now_us is None:
            now_us = (self._session.now_us if self._session is not None
                      else self.clock.now_us)
        self.events.run_until(now_us)
        return len(self._inflight)

    def drain(self) -> None:
        """Complete every in-flight command, advancing the clock to the
        device's completion horizon."""
        while self._inflight:
            horizon = max(item[0] for item in self._inflight)
            self.events.run_until(horizon)

    # ------------------------------------------------------------ commands

    def _gate(self, kind: str, lpns: Sequence[int],
              phase: str = "submit") -> None:
        """Command-fault gate at the host→device boundary.

        Consulted at submission (before any media work) and completion
        (after the work, modelling a lost completion).  Latency-spike
        delays are charged to the issuing session's cursor (or the
        clock, when synchronous); error faults raise typed
        :class:`DeviceError` subclasses the host resilience layer
        handles.  Disarmed cost: one attribute check."""
        commands = self.faults.commands
        if not commands.active:
            return
        delay_us = commands.on_command(kind, lpns, phase)
        if delay_us:
            self.stats.busy_us += delay_us
            if self._session is not None:
                self._session.now_us += delay_us
            else:
                self.clock.advance(delay_us)

    def read(self, lpn: int) -> Any:
        """Read one page (through the controller DRAM cache if enabled)."""
        if self.faults.commands.active:
            self._gate("read", (lpn,))
        tracer = self.telemetry.tracer
        if tracer.enabled:
            with tracer.span("device.read"):
                return self._read_cmd(lpn)
        return self._read_cmd(lpn)

    def _read_cmd(self, lpn: int) -> Any:
        self.ftl.take_work()   # discard stale work from direct FTL use
        cached = self.cache.lookup(lpn)
        if cached is not None:
            self.stats.host_read_pages += 1
            data = cached[0]
            ticket = self._issue("read", lpn, 1,
                                 0.0)   # DRAM-speed hit
        else:
            data = self.ftl.read(lpn)
            self.cache.insert(lpn, data)
            self.stats.host_read_pages += 1
            ticket = self._issue("read", lpn, 1,
                                 self._read_latency_us)
        if self._session is None:
            self.events.run_until(ticket.completion_us)
        return data

    def write(self, lpn: int, data: Any) -> None:
        """Write one page (out-of-place inside the device)."""
        if self.faults.commands.active:
            self._gate("write", (lpn,))
        tracer = self.telemetry.tracer
        if tracer.enabled:
            with self.faults.operation("device.write", (lpn,),
                                       deferred=True) as op, \
                    tracer.span("device.write"):
                ticket = self._write_cmd(lpn, data, op)
        else:
            with self.faults.operation("device.write", (lpn,),
                                       deferred=True) as op:
                ticket = self._write_cmd(lpn, data, op)
        if self._session is None:
            self.events.run_until(ticket.completion_us)

    def _write_cmd(self, lpn: int, data: Any, op: Any) -> "CommandTicket":
        self.ftl.take_work()   # discard stale work from direct FTL use
        self.ftl.write(lpn, data)
        self.cache.insert(lpn, data)
        self.stats.host_write_pages += 1
        return self._issue(
            "write", lpn, 1,
            self._program_latency_us,
            op_kind="device.write", op_record=op)

    def write_multi(self, lpn: int, pages: Sequence[Any]) -> None:
        """Write consecutive pages in one host command (one command
        overhead, per-page programs)."""
        if not pages:
            raise DeviceError("write_multi with no pages")
        if self.faults.commands.active:
            self._gate("write", tuple(range(lpn, lpn + len(pages))))
        with self.faults.operation("device.write_multi",
                                   tuple(range(lpn, lpn + len(pages))),
                                   deferred=True) as op, \
                self.telemetry.tracer.span("device.write"):
            self.ftl.take_work()   # discard stale work from direct FTL use
            for index, page in enumerate(pages):
                self.ftl.write(lpn + index, page)
                self.cache.insert(lpn + index, page)
            self.stats.host_write_pages += len(pages)
            ticket = self._issue(
                "write", lpn, len(pages),
                len(pages) * self.timing.program_latency(self.page_size),
                op_kind="device.write_multi", op_record=op)
        self._wait(ticket)

    def write_atomic(self, items: Sequence) -> None:
        """Atomic multi-page write (the Section 6.1 baseline command:
        Park et al. / FusionIO-style).  All pages land or none do."""
        if not items:
            raise DeviceError("write_atomic with no pages")
        lpns = tuple(lpn for lpn, __ in items)
        if self.faults.commands.active:
            self._gate("awrite", lpns)
        with self.faults.operation("device.awrite", lpns,
                                   deferred=True) as op, \
                self.telemetry.tracer.span("device.write", atomic=True):
            self.ftl.take_work()   # discard stale work from direct FTL use
            self.ftl.write_atomic(items)
            for item_lpn, data in items:
                self.cache.insert(item_lpn, data)
            self.stats.host_write_pages += len(items)
            self.stats.extra["atomic_write_commands"] = (
                self.stats.extra.get("atomic_write_commands", 0) + 1)
            ticket = self._issue(
                "write", items[0][0], len(items),
                len(items) * self.timing.program_latency(self.page_size),
                op_kind="device.awrite", op_record=op,
                gate_kind="awrite", gate_lpns=lpns)
        self._wait(ticket)

    # X-FTL transactional interface (Section 6.2 baseline) --------------

    def begin_txn(self) -> int:
        """Open an X-FTL transaction."""
        return self.ftl.begin_txn()

    def write_txn(self, txn_id: int, lpn: int, data: Any) -> None:
        """Stage one in-place page write under a transaction."""
        with self.telemetry.tracer.span("device.write", txn=txn_id):
            self.ftl.take_work()   # discard stale work from direct FTL use
            self.ftl.write_txn(txn_id, lpn, data)
            self.stats.host_write_pages += 1
            ticket = self._issue(
                "write", lpn, 1,
                self.timing.program_latency(self.page_size))
        self._wait(ticket)

    def commit_txn(self, txn_id: int) -> None:
        """Atomically publish a transaction's staged pages."""
        with self.faults.operation(
                "device.xcommit", tuple(self.ftl._txn_shadow.get(txn_id, ())),
                deferred=True) as op, \
                self.telemetry.tracer.span("device.flush", txn=txn_id):
            self.ftl.take_work()   # discard stale work from direct FTL use
            staged_lpns = list(self.ftl._txn_shadow.get(txn_id, ()))
            self.ftl.commit_txn(txn_id)
            for lpn in staged_lpns:
                self.cache.invalidate(lpn)
            ticket = self._issue("flush", 0, 0, 0.0,
                                 op_kind="device.xcommit", op_record=op)
        self._wait(ticket)

    def abort_txn(self, txn_id: int) -> None:
        """Discard a transaction's staged pages."""
        with self.telemetry.tracer.span("device.trim", txn=txn_id):
            self.ftl.take_work()   # discard stale work from direct FTL use
            self.ftl.abort_txn(txn_id)
            ticket = self._issue("trim", 0, 0, 0.0)
        self._wait(ticket)

    def trim(self, lpn: int, count: int = 1) -> None:
        """Invalidate a logical range."""
        if self.faults.commands.active:
            self._gate("trim", tuple(range(lpn, lpn + max(count, 1))))
        with self.faults.operation("device.trim",
                                   tuple(range(lpn, lpn + max(count, 1))),
                                   deferred=True) as op, \
                self.telemetry.tracer.span("device.trim"):
            self.ftl.take_work()   # discard stale work from direct FTL use
            self.ftl.trim(lpn, count)
            self.cache.invalidate(lpn, count)
            self.stats.trim_commands += 1
            ticket = self._issue("trim", lpn, count,
                                 count * self.timing.map_update_us,
                                 op_kind="device.trim", op_record=op)
        self._wait(ticket)

    def idle_gc(self, max_blocks: int = 1,
                min_invalid_fraction: float = 0.5) -> int:
        """Host-initiated background GC (run during think time).  The
        reclaim work is charged like any other command, but it happens
        when no foreground request is waiting — trading idle time for
        smaller foreground stalls."""
        with self.telemetry.tracer.span("device.idle_gc"):
            self.ftl.take_work()   # discard stale work from direct FTL use
            reclaimed = self.ftl.idle_gc(max_blocks, min_invalid_fraction)
            ticket = self._issue("trim", 0, reclaimed, 0.0)
        self._wait(ticket)
        return reclaimed

    def flush(self) -> None:
        """Barrier: persist pending mapping changes.  Data-page writes are
        durable at command completion already (no volatile write cache is
        modelled), matching the paper's O_DIRECT setup."""
        if self.faults.commands.active:
            self._gate("flush", ())
        tracer = self.telemetry.tracer
        if tracer.enabled:
            with self.faults.operation("device.flush", deferred=True) as op, \
                    tracer.span("device.flush"):
                ticket = self._flush_cmd(op)
        else:
            with self.faults.operation("device.flush", deferred=True) as op:
                ticket = self._flush_cmd(op)
        if self._session is None:
            self.events.run_until(ticket.completion_us)

    def _flush_cmd(self, op: Any) -> "CommandTicket":
        self.ftl.take_work()   # discard stale work from direct FTL use
        self.ftl.flush()
        self.stats.flush_commands += 1
        return self._issue("flush", 0, 0, 0.0,
                           op_kind="device.flush", op_record=op)

    def share(self, dst_lpn: int, src_lpn: int, length: int = 1) -> None:
        """Vendor-unique SHARE command (ranged form).

        SHARE is a mapping-only command: it occupies no NAND channel,
        only the firmware/DRAM phase — the heart of the paper's claim
        that remapping replaces page writes."""
        if not self.config.share_enabled:
            raise ShareError("device does not support the SHARE command")
        lpns = tuple(range(dst_lpn, dst_lpn + length))
        if self.faults.commands.active:
            self._gate("share", lpns)
        with self.faults.operation("device.share", lpns,
                                   deferred=True) as op, \
                self.telemetry.tracer.span("device.share"):
            self.ftl.take_work()   # discard stale work from direct FTL use
            self.ftl.share(dst_lpn, src_lpn, length)
            self.cache.invalidate(dst_lpn, length)
            self.stats.share_commands += 1
            self.stats.share_pairs += length
            ticket = self._issue("share", dst_lpn, length,
                                 length * self.timing.map_update_us,
                                 op_kind="device.share", op_record=op,
                                 gate_kind="share", gate_lpns=lpns)
        self._wait(ticket)

    def share_batch(self, pairs: Sequence[SharePair]) -> None:
        """Vendor-unique SHARE command (batched pair form)."""
        if not self.config.share_enabled:
            raise ShareError("device does not support the SHARE command")
        lpns = tuple(pair.dst_lpn for pair in pairs)
        if self.faults.commands.active:
            self._gate("share", lpns)
        with self.faults.operation("device.share", lpns,
                                   deferred=True) as op, \
                self.telemetry.tracer.span("device.share"):
            self.ftl.take_work()   # discard stale work from direct FTL use
            self.ftl.share_batch(pairs)
            for pair in pairs:
                self.cache.invalidate(pair.dst_lpn)
            self.stats.share_commands += 1
            self.stats.share_pairs += len(pairs)
            ticket = self._issue(
                "share", pairs[0].dst_lpn, len(pairs),
                len(pairs) * self.timing.map_update_us,
                op_kind="device.share", op_record=op,
                gate_kind="share", gate_lpns=lpns)
        self._wait(ticket)

    # ----------------------------------------------------------- internals

    def _work_cost_us(self, kind: str) -> float:
        """Media time of one work-ledger entry (used for *placement* of
        busy time onto channels; the authoritative command total is the
        analytic formula in :meth:`_issue`)."""
        return self._work_cost.get(kind, 0.0)

    def _price_media(self, latency_us: float,
                     work: Sequence[Tuple[str, int]]) -> Tuple[int, Dict[int, int]]:
        """Split one command's total latency into a front DRAM/firmware
        part and integer per-channel media occupancies.

        Conservation rule: the pieces always sum to
        ``int(round(latency_us))`` — the same rounding the serial model
        applied per command — so the work ledger only decides *where*
        busy time lands, never how much there is.  At one channel the
        split is exact and the completion time equals the serial model's.
        """
        total_int = int(round(latency_us))
        if not work:
            return total_int, {}
        work_cost = self._work_cost
        if len(work) == 1:
            # One ledger entry (a lone mapping-page program is the most
            # common internal work): skip the per-channel dict entirely.
            kind, channel = work[0]
            cost = work_cost.get(kind, 0.0)
            if cost <= 0.0:
                return total_int, {}
            dur = int(round(cost))
            if dur > total_int:
                dur = total_int
            if dur <= 0:
                return total_int, {}
            return total_int - dur, {channel: dur}
        per_channel: Dict[int, float] = {}
        for kind, channel in work:
            cost = work_cost.get(kind, 0.0)
            if cost > 0.0:
                if channel in per_channel:
                    per_channel[channel] += cost
                else:
                    per_channel[channel] = cost
        if not per_channel:
            return total_int, {}
        if len(per_channel) == 1:
            # Single-channel fast path (every 1ch stack, and most
            # commands on wider stacks): exactly the general algorithm
            # below with the shave step folded into a clamp.
            (channel, us), = per_channel.items()
            dur = int(round(us))
            if dur > total_int:
                dur = total_int
            if dur <= 0:
                return total_int, {}
            return total_int - dur, {channel: dur}
        pieces = {channel: int(round(us))
                  for channel, us in per_channel.items()}
        pieces = {channel: dur for channel, dur in pieces.items() if dur > 0}
        dram_us = total_int - sum(pieces.values())
        if dram_us < 0:
            # Per-channel rounding overshot the authoritative total
            # (only possible with 2+ channels): shave the largest piece.
            largest = max(pieces, key=lambda channel: pieces[channel])
            pieces[largest] = max(0, pieces[largest] + dram_us)
            if pieces[largest] == 0:
                del pieces[largest]
            dram_us = total_int - sum(pieces.values())
            if dram_us < 0:
                # Pathological: collapse to a pure firmware phase.
                pieces = {}
                dram_us = total_int
        return dram_us, pieces

    def _issue(self, kind: str, lpn: int, count: int,
               base_latency_us: float,
               op_kind: Optional[str] = None, op_record: Any = None,
               gate_kind: Optional[str] = None,
               gate_lpns: Optional[Tuple[int, ...]] = None) -> CommandTicket:
        """Price the command (base latency plus the internal work — GC
        copybacks, erases, mapping-page programs, spills — it
        triggered), admit it through the NCQ, occupy its channels, and
        queue its completion for the device drain event.

        Per-command work deltas come from the FTL's work ledger: every
        internal-work counter increment leaves a ledger entry (some,
        like ``gc_event``, at zero media cost), so counting entries
        reproduces the old before/after counter diff exactly — and the
        common no-internal-work command skips the accounting entirely.
        The caller drains stale ledger entries (direct FTL use between
        commands: aging, recovery) before mutating the FTL."""
        pt_issue = self._pt_issue
        t0 = perf_counter_ns() if pt_issue is not None else 0
        stats = self.stats
        work = self.ftl.take_work()
        gc_events = 0
        copybacks = 0
        if work:
            timing = self.timing
            erases = map_writes = spills = 0
            log_spills = spill_lookups = wear_moves = 0
            for work_kind, __ in work:
                if work_kind == "map_write":
                    map_writes += 1
                elif work_kind == "copyback":
                    copybacks += 1
                elif work_kind == "erase":
                    erases += 1
                elif work_kind == "gc_event":
                    gc_events += 1
                elif work_kind == "spill":
                    spills += 1
                elif work_kind == "spill_lookup":
                    spill_lookups += 1
                elif work_kind == "log_spill":
                    log_spills += 1
                elif work_kind == "wear_move":
                    wear_moves += 1
            # NOTE: this expression (terms and their order) is the
            # authoritative command latency the serial oracle reproduces
            # — the no-work branch below is its exact value when every
            # delta is zero (x + 0.0*c == x for these non-negative
            # latencies).
            latency = (base_latency_us
                       + timing.command_overhead_us
                       + copybacks * timing.copyback_us
                       + erases * timing.erase_us
                       + map_writes * timing.program_us
                       + spills * (timing.read_us + timing.program_us)
                       + spill_lookups * timing.read_us)
            stats.copyback_pages += copybacks
            stats.block_erases += erases
            stats.map_page_writes += map_writes
            stats.share_spill_pages += spills
            stats.share_log_spills += log_spills
            stats.spill_lookups += spill_lookups
            stats.gc_events += gc_events
            stats.wear_level_moves += wear_moves
            dram_us, pieces = self._price_media(latency, work)
        else:
            latency = base_latency_us + self._overhead_us
            dram_us = int(round(latency))
            pieces = None
        stats.busy_us += latency

        # Timing: admission through the bounded queue, a DRAM/firmware
        # phase, then per-channel media occupancy.
        service_us = dram_us
        session = self._session
        arrival = (session.now_us if session is not None
                   else self.clock.now_us)
        admit = self.ncq.admit(arrival)
        dram_end = admit + dram_us
        completion = dram_end
        telemetry = self.telemetry
        if pieces:
            intervals = self.intervals
            emit = telemetry.enabled
            for channel, duration in pieces.items():
                service_us += duration
                start, end = self.channels.acquire(channel, dram_end,
                                                   duration)
                if emit:
                    self._m_chan_busy[channel].inc(duration)
                if intervals.capacity:
                    intervals.record(channel, start, end)
                if end > completion:
                    completion = end
        self.ncq.commit(completion)
        if pt_issue is not None:
            pt_issue.add(perf_counter_ns() - t0)

        ticket = CommandTicket(
            kind, lpn, count, latency, service_us, arrival, completion,
            gc_events, copybacks, op_kind, op_record, gate_kind, gate_lpns)
        self._cmd_seq += 1
        heappush(self._inflight, (completion, self._cmd_seq, ticket))
        # One drain event covers every queued completion: (re)schedule
        # only when this command completes before the current head.
        drain = self._drain_event
        if drain is None:
            self._drain_event = self.events.at(
                completion, self._drain_due, label=self._drain_label)
        elif completion < drain.time_us:
            self.events.cancel(drain)
            self._drain_event = self.events.at(
                completion, self._drain_due, label=self._drain_label)

        if telemetry.enabled:
            telemetry.tracer.current.set(
                kind=kind, lpn=lpn, count=count, latency_us=latency,
                gc_events=gc_events, copyback_pages=copybacks)
            self._m_queue_depth.set(self.ncq.inflight)

        if session is not None:
            session.now_us = completion
        return ticket

    def _wait(self, ticket: CommandTicket) -> None:
        """Synchronous issue (no session attached): fire every
        completion up to the command's own, advancing the clock.  Runs
        *after* the command's fault-operation scope has exited, so the
        deferred ack is registered before it is delivered."""
        if self._session is None:
            self.events.run_until(ticket.completion_us)

    def _drain_due(self) -> None:
        """The device's single completion event: pop and complete every
        ticket due at the current timestamp frame, then re-arm at the
        next pending completion.

        A completion callback may raise (completion-phase command
        faults, journal-delivered power failures) — the ``finally``
        re-arm keeps the remaining queued completions reachable in that
        case, exactly as they were when each held its own event."""
        self._drain_event = None
        inflight = self._inflight
        try:
            now = self.clock.now_us
            while inflight and inflight[0][0] <= now:
                ticket = heappop(inflight)[2]
                self._on_complete(ticket)
        finally:
            # power_cycle/_on_clock_reset may have run re-entrantly:
            # re-read the (possibly replaced) heap and only re-arm when
            # nothing else armed it meanwhile.
            inflight = self._inflight
            if inflight and self._drain_event is None:
                self._drain_event = self.events.at(
                    inflight[0][0], self._drain_due,
                    label=self._drain_label)

    def _on_complete(self, ticket: CommandTicket) -> None:
        """Complete one ticket (already popped from the in-flight heap):
        deliver telemetry, the trace record, the completion-phase fault
        gate and the deferred ack — in the order the device finishes
        work, not the order the host submitted it.

        Delivery cost is tiered by telemetry mode: counters are always
        exact, but histogram/gauge recording (and the per-channel
        utilisation sweep) pass the 1-in-N sampler gate, which is where
        sampled mode saves its per-op wall-clock time."""
        pt_complete = self._pt_complete
        t0 = perf_counter_ns() if pt_complete is not None else 0
        now = self.clock.now_us
        telemetry = self.telemetry
        pt_emit = self._pt_emit
        t1 = perf_counter_ns() if pt_emit is not None else 0
        if telemetry.enabled:
            self._m_commands[ticket.kind].inc()
            self._m_pages[ticket.kind].inc(ticket.count)
            self._m_busy_us.inc(ticket.latency_us)
            sampler = self._sampler
            if sampler is None or sampler.hit():
                self._m_latency[ticket.kind].record(ticket.latency_us)
                self._m_queue_wait.record(ticket.wait_us)
                elapsed = now - self._measure_start_us
                for channel, util in enumerate(
                        self.channels.utilization(elapsed)):
                    self._m_chan_util[channel].set(util)
            telemetry.maybe_snapshot(now)
        trace = self.trace
        if trace is not None and trace.capacity:
            trace.record_fields(
                now, ticket.kind, ticket.lpn, ticket.count,
                ticket.latency_us, ticket.gc_events, ticket.copyback_pages,
                ticket.arrival_us, ticket.wait_us)
        if pt_emit is not None:
            pt_emit.add(perf_counter_ns() - t1)
        if pt_complete is not None:
            pt_complete.add(perf_counter_ns() - t0)
        if ticket.gate_kind is not None:
            try:
                self._gate(ticket.gate_kind, ticket.gate_lpns, "complete")
            except DeviceError:
                if ticket.op_kind is not None:
                    self.faults.fail_operation(ticket.op_kind,
                                               ticket.op_record)
                raise
        if ticket.op_kind is not None:
            self.faults.complete_operation(ticket.op_kind, ticket.op_record)

    def media_report(self) -> dict:
        """The FTL's ``media.*`` degradation counters plus the raw chip
        failure counts — how hard the medium fought and how the firmware
        coped."""
        report = self.ftl.media_report()
        report["nand_failed_reads"] = self.nand.failed_reads
        report["nand_failed_programs"] = self.nand.failed_programs
        report["nand_failed_erases"] = self.nand.failed_erases
        return report

    def queue_report(self) -> dict:
        """Queue and channel state for reports: per-channel busy time and
        utilisation over the measured interval, plus depth/inflight."""
        elapsed = self.clock.now_us - self._measure_start_us
        return {
            "queue_depth": self.ncq.depth,
            "inflight": len(self._inflight),
            "channel_count": self.channels.channel_count,
            "channel_busy_us": list(self.channels.busy_us),
            "channel_utilization": self.channels.utilization(elapsed),
        }

    def _on_clock_reset(self) -> None:
        """The harness rewound the clock between experiment runs: every
        absolute timestamp the device caches (queue completion times,
        channel busy horizons, pending completion events) belongs to a
        timeline that no longer exists.  Drop them all."""
        if self._drain_event is not None:
            self.events.cancel(self._drain_event)
            self._drain_event = None
        self._inflight.clear()
        self.ncq.reset()
        self.channels.reset()
        self._measure_start_us = 0

    # ------------------------------------------------------------ recovery

    def power_cycle(self) -> None:
        """Simulate power loss + reboot: cancel every in-flight
        completion (those commands never acknowledge — their records
        become unacked in the fault journal), drop all volatile state
        and run the FTL recovery scan over the surviving media."""
        if self._drain_event is not None:
            self.events.cancel(self._drain_event)
            self._drain_event = None
        for __, __, ticket in self._inflight:
            if ticket.op_kind is not None:
                self.faults.abandon_operation(ticket.op_kind,
                                              ticket.op_record)
        self._inflight.clear()
        self.ncq.reset()
        self.channels.reset()
        self.ftl = PageMappingFtl.recover(self.nand, self.config.ftl,
                                          self.faults,
                                          telemetry=self.telemetry)
        self.ftl.take_work()   # recovery-scan work is not billed
        self.cache.clear()

    # --------------------------------------------------------------- aging

    def age(self, fill_fraction: float, rewrite_fraction: float,
            seed: int = 17) -> None:
        """Pre-condition the device as in Section 5.1's aging pre-run.

        Fills ``fill_fraction`` of the logical space sequentially, then
        rewrites ``rewrite_fraction`` of it at random so blocks hold a mix
        of valid and stale pages and GC is active during measurement.
        Aging I/O is excluded from stats and virtual time.
        """
        if not 0.0 <= fill_fraction <= 1.0:
            raise ValueError(f"fill_fraction must be in [0, 1]: {fill_fraction}")
        if not 0.0 <= rewrite_fraction <= 1.0:
            raise ValueError(
                f"rewrite_fraction must be in [0, 1]: {rewrite_fraction}")
        import random
        rng = random.Random(seed)
        pages = int(self.logical_pages * fill_fraction)
        for lpn in range(pages):
            self.ftl.write(lpn, ("age", lpn))
        for _ in range(int(pages * rewrite_fraction)):
            lpn = rng.randrange(pages)
            self.ftl.write(lpn, ("age2", lpn))
        self.reset_measurement()

    def reset_measurement(self) -> None:
        """Zero the host-visible counters (keep media state) so the
        measured interval starts clean, as after the paper's warm-up."""
        self.drain()
        self.stats = DeviceStats(page_size=self.page_size)
        ftl_stats = self.ftl.stats
        for name in list(ftl_stats.__dict__):
            setattr(ftl_stats, name, 0)
        self.ftl.take_work()   # drop unbilled ledger entries (aging I/O)
        self.channels.reset_accounting()
        self._measure_start_us = self.clock.now_us
        self.trace.clear()
        self.intervals.clear()
        self.telemetry.reset_measurement()
