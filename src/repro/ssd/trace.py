"""Optional I/O trace capture.

A trace records every host command the device served, with its virtual
timestamp and the internal work (copybacks, erases) it triggered.  Tests
use traces to assert ordering properties; analysis examples use them to
plot jitter (the paper's "consistent IO performance with less performance
jitter" claim).

Since the unified telemetry subsystem (:mod:`repro.obs`) landed, the
device's primary instrumentation is span-based: each command emits a
``device.<kind>`` span carrying the same fields.  :class:`IoTrace`
remains the stable flat-event API; :meth:`IoTrace.from_span_records`
rebuilds one as a compatibility view over exported span records, so any
pre-existing trace analysis keeps working against JSONL artifacts.

Two retention modes handle long soak runs:

* ``keep="oldest"`` (default, the historical behaviour) — once full,
  new events are dropped and counted, preserving the run's head;
* ``keep="newest"`` — a ring buffer that overwrites the oldest event,
  preserving the tail (what you want when the interesting jitter is at
  the end of a multi-hour soak).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional

KEEP_MODES = ("oldest", "newest")


@dataclass(frozen=True)
class TraceEvent:
    """One host command as the device served it."""

    timestamp_us: int
    kind: str                  # "read" | "write" | "trim" | "share" | "flush"
    lpn: int
    count: int
    latency_us: float
    gc_events: int = 0
    copyback_pages: int = 0


def trace_event_from_span(record: Dict[str, Any]) -> TraceEvent:
    """Convert one exported ``device.*`` span record into a TraceEvent."""
    attrs = record.get("attrs", {})
    return TraceEvent(
        timestamp_us=record["end_us"],
        kind=attrs.get("kind", record["name"].rsplit(".", 1)[-1]),
        lpn=attrs.get("lpn", 0),
        count=attrs.get("count", 0),
        latency_us=attrs.get("latency_us", record["duration_us"]),
        gc_events=attrs.get("gc_events", 0),
        copyback_pages=attrs.get("copyback_pages", 0),
    )


class IoTrace:
    """Bounded in-memory trace.  Disabled (capacity 0) by default in the
    device so steady-state benchmarks pay nothing for it."""

    def __init__(self, capacity: int = 1_000_000,
                 keep: str = "oldest") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative: {capacity}")
        if keep not in KEEP_MODES:
            raise ValueError(
                f"keep must be one of {KEEP_MODES}, got {keep!r}")
        self._capacity = capacity
        self._keep = keep
        self._events: "deque[TraceEvent]" = deque()
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def keep(self) -> str:
        return self._keep

    def record(self, event: TraceEvent) -> None:
        if len(self._events) >= self._capacity:
            self.dropped += 1
            if self._keep == "oldest":
                return
            self._events.popleft()
        self._events.append(event)

    def snapshot(self) -> Dict[str, int]:
        """Machine-readable trace health: how much was kept vs dropped."""
        return {
            "capacity": self._capacity,
            "recorded": len(self._events),
            "dropped": self.dropped,
            "keep": self._keep,  # type: ignore[dict-item]
        }

    @classmethod
    def from_span_records(cls, records: Iterable[Dict[str, Any]],
                          capacity: int = 1_000_000,
                          keep: str = "oldest") -> "IoTrace":
        """Compatibility view: rebuild a flat trace from exported span
        records (e.g. loaded from a JSONL artifact), using only the
        device-command spans."""
        trace = cls(capacity, keep)
        for record in records:
            if record.get("type") == "span" and \
                    record.get("name", "").startswith("device."):
                trace.record(trace_event_from_span(record))
        return trace

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def max_latency_us(self, kind: Optional[str] = None) -> float:
        events = self.events(kind)
        if not events:
            raise ValueError("trace holds no matching events")
        return max(event.latency_us for event in events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
