"""Optional I/O trace capture.

A trace records every host command the device served, with its virtual
timestamp and the internal work (copybacks, erases) it triggered.  Tests
use traces to assert ordering properties; analysis examples use them to
plot jitter (the paper's "consistent IO performance with less performance
jitter" claim); the Chrome-trace exporter
(:mod:`repro.obs.chrometrace`) turns them into per-device timeline
lanes.

Since the unified telemetry subsystem (:mod:`repro.obs`) landed, the
device's primary instrumentation is span-based: each command emits a
``device.<kind>`` span carrying the same fields.  :class:`IoTrace`
remains the stable flat-event API; :meth:`IoTrace.from_span_records`
rebuilds one as a compatibility view over exported span records, so any
pre-existing trace analysis keeps working against JSONL artifacts.

Two retention modes handle long soak runs:

* ``keep="oldest"`` (default, the historical behaviour) — once full,
  new events are dropped and counted, preserving the run's head;
* ``keep="newest"`` — a preallocated ring buffer that overwrites the
  oldest slot, preserving the tail (what you want when the interesting
  jitter is at the end of a multi-hour soak).

Storage is a flat list of field tuples, written by the allocation-free
:meth:`IoTrace.record_fields` hot path; :class:`TraceEvent` objects are
materialised lazily on read.  That keeps per-command trace cost at one
tuple pack + one list store, which is what lets the device afford a
live trace under the benchspeed wall-clock gate.

:class:`IntervalTrace` is the channel-side companion: bounded capture of
``(channel, busy_start_us, busy_end_us)`` intervals, feeding the
per-channel lanes of the exported timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

KEEP_MODES = ("oldest", "newest")


@dataclass(frozen=True)
class TraceEvent:
    """One host command as the device served it.

    ``arrival_us``/``wait_us`` (added with the Chrome-trace exporter)
    place the command on a queueing timeline: arrival is when the host
    submitted it, ``wait_us`` is the admission delay spent behind other
    commands before service started.  Both default to 0 for events
    recorded by older call sites.
    """

    timestamp_us: int
    kind: str                  # "read" | "write" | "trim" | "share" | "flush"
    lpn: int
    count: int
    latency_us: float
    gc_events: int = 0
    copyback_pages: int = 0
    arrival_us: int = 0
    wait_us: float = 0.0


def _fields_of(event: TraceEvent) -> Tuple:
    return (event.timestamp_us, event.kind, event.lpn, event.count,
            event.latency_us, event.gc_events, event.copyback_pages,
            event.arrival_us, event.wait_us)


def trace_event_from_span(record: Dict[str, Any]) -> TraceEvent:
    """Convert one exported ``device.*`` span record into a TraceEvent."""
    attrs = record.get("attrs", {})
    return TraceEvent(
        timestamp_us=record["end_us"],
        kind=attrs.get("kind", record["name"].rsplit(".", 1)[-1]),
        lpn=attrs.get("lpn", 0),
        count=attrs.get("count", 0),
        latency_us=attrs.get("latency_us", record["duration_us"]),
        gc_events=attrs.get("gc_events", 0),
        copyback_pages=attrs.get("copyback_pages", 0),
        arrival_us=attrs.get("arrival_us", 0),
        wait_us=attrs.get("wait_us", 0.0),
    )


class IoTrace:
    """Bounded in-memory trace.  Disabled (capacity 0) by default in the
    device so steady-state benchmarks pay nothing for it.

    ``keep="newest"`` preallocates its slot list once and then
    overwrites in place — recording never allocates beyond the field
    tuple itself, regardless of how far past capacity the run goes.
    """

    def __init__(self, capacity: int = 1_000_000,
                 keep: str = "oldest") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative: {capacity}")
        if keep not in KEEP_MODES:
            raise ValueError(
                f"keep must be one of {KEEP_MODES}, got {keep!r}")
        self._capacity = capacity
        self._keep = keep
        self._slots: List[Optional[Tuple]] = []
        self._head = 0          # ring write cursor (keep="newest" only)
        self._count = 0         # live records in _slots
        self.dropped = 0        # events not retained (either mode)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def keep(self) -> str:
        return self._keep

    # ------------------------------------------------------------ recording

    def record_fields(self, timestamp_us: int, kind: str, lpn: int,
                      count: int, latency_us: float, gc_events: int = 0,
                      copyback_pages: int = 0, arrival_us: int = 0,
                      wait_us: float = 0.0) -> None:
        """Hot-path record: packs one field tuple straight into the ring,
        no :class:`TraceEvent` allocation."""
        self._store((timestamp_us, kind, lpn, count, latency_us, gc_events,
                     copyback_pages, arrival_us, wait_us))

    def record(self, event: TraceEvent) -> None:
        """Compatibility record for call sites holding a TraceEvent."""
        self._store(_fields_of(event))

    def _store(self, fields: Tuple) -> None:
        capacity = self._capacity
        if self._count < capacity:
            self._slots.append(fields)
            self._count += 1
            return
        # Full (or capacity 0): one event is lost either way.
        self.dropped += 1
        if self._keep == "oldest" or not capacity:
            return
        self._slots[self._head] = fields
        self._head += 1
        if self._head == capacity:
            self._head = 0

    # -------------------------------------------------------------- reading

    def _ordered_fields(self) -> List[Tuple]:
        if self._keep == "newest" and self.dropped and self._capacity:
            # Ring has wrapped: oldest retained record sits at _head.
            return self._slots[self._head:] + self._slots[:self._head]
        return list(self._slots)

    def snapshot(self) -> Dict[str, int]:
        """Machine-readable trace health: how much was kept vs dropped."""
        return {
            "capacity": self._capacity,
            "recorded": self._count,
            "dropped": self.dropped,
            "keep": self._keep,  # type: ignore[dict-item]
        }

    @classmethod
    def from_span_records(cls, records: Iterable[Dict[str, Any]],
                          capacity: int = 1_000_000,
                          keep: str = "oldest") -> "IoTrace":
        """Compatibility view: rebuild a flat trace from exported span
        records (e.g. loaded from a JSONL artifact), using only the
        device-command spans."""
        trace = cls(capacity, keep)
        for record in records:
            if record.get("type") == "span" and \
                    record.get("name", "").startswith("device."):
                trace.record(trace_event_from_span(record))
        return trace

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[TraceEvent]:
        for fields in self._ordered_fields():
            yield TraceEvent(*fields)

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self)
        return [event for event in self if event.kind == kind]

    def max_latency_us(self, kind: Optional[str] = None) -> float:
        events = self.events(kind)
        if not events:
            raise ValueError("trace holds no matching events")
        return max(event.latency_us for event in events)

    def clear(self) -> None:
        self._slots.clear()
        self._head = 0
        self._count = 0
        self.dropped = 0


class IntervalTrace:
    """Bounded capture of per-channel busy intervals.

    Each record is ``(channel, start_us, end_us)`` — the window one
    flash command occupied its channel/way, as returned by
    :meth:`repro.flash.timing.ChannelSet.acquire`.  Retention is always
    keep-newest (the exporter wants the run's tail); like
    :class:`IoTrace` the ring is preallocated on the fly and overwritten
    in place.
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative: {capacity}")
        self._capacity = capacity
        self._slots: List[Optional[Tuple[int, int, int]]] = []
        self._head = 0
        self._count = 0
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, channel: int, start_us: int, end_us: int) -> None:
        capacity = self._capacity
        if self._count < capacity:
            self._slots.append((channel, start_us, end_us))
            self._count += 1
            return
        self.dropped += 1
        if not capacity:
            return
        self._slots[self._head] = (channel, start_us, end_us)
        self._head += 1
        if self._head == capacity:
            self._head = 0

    def intervals(self, channel: Optional[int] = None
                  ) -> List[Tuple[int, int, int]]:
        if self.dropped and self._capacity:
            ordered = self._slots[self._head:] + self._slots[:self._head]
        else:
            ordered = list(self._slots)
        if channel is None:
            return ordered  # type: ignore[return-value]
        return [iv for iv in ordered if iv[0] == channel]  # type: ignore

    def busy_us(self, channel: Optional[int] = None) -> int:
        """Total busy time across retained intervals (per channel or
        overall)."""
        return sum(end - start for __, start, end in self.intervals(channel))

    def channels(self) -> List[int]:
        return sorted({iv[0] for iv in self.intervals()})

    def snapshot(self) -> Dict[str, int]:
        return {
            "capacity": self._capacity,
            "recorded": self._count,
            "dropped": self.dropped,
        }

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        self._slots.clear()
        self._head = 0
        self._count = 0
        self.dropped = 0
