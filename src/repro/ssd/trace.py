"""Optional I/O trace capture.

A trace records every host command the device served, with its virtual
timestamp and the internal work (copybacks, erases) it triggered.  Tests
use traces to assert ordering properties; analysis examples use them to
plot jitter (the paper's "consistent IO performance with less performance
jitter" claim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One host command as the device served it."""

    timestamp_us: int
    kind: str                  # "read" | "write" | "trim" | "share" | "flush"
    lpn: int
    count: int
    latency_us: float
    gc_events: int = 0
    copyback_pages: int = 0


class IoTrace:
    """Bounded in-memory trace.  Disabled (capacity 0) by default in the
    device so steady-state benchmarks pay nothing for it."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative: {capacity}")
        self._capacity = capacity
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, event: TraceEvent) -> None:
        if len(self._events) >= self._capacity:
            self.dropped += 1
            return
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def max_latency_us(self, kind: Optional[str] = None) -> float:
        events = self.events(kind)
        if not events:
            raise ValueError("trace holds no matching events")
        return max(event.latency_us for event in events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
