"""Reproduction of "SHARE Interface in Flash Storage for Relational and
NoSQL Databases" (Oh, Seo, Mayuram, Kee, Lee — SIGMOD 2016).

Public entry points:

* :class:`repro.ssd.Ssd` — the simulated OpenSSD with the SHARE command.
* :class:`repro.host.HostFs` — the host filesystem and share ioctl.
* :class:`repro.core.AtomicWriter` — generic SHARE-based atomic writes.
* :class:`repro.innodb.InnoDBEngine` — InnoDB-like engine with doublewrite
  and SHARE modes.
* :class:`repro.couchstore.CouchStore` — Couchbase-like append-only engine
  with copy and SHARE compaction.
* :mod:`repro.bench.experiments` — one function per paper table/figure.
"""

from repro.sim.clock import SimClock
from repro.ssd.device import Ssd, SsdConfig

__version__ = "1.0.0"

__all__ = ["SimClock", "Ssd", "SsdConfig", "__version__"]
