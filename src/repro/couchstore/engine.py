"""The couchstore engine: get/set/delete with batched commits.

Write path (Section 2.2 / 4.3):

* ``set`` appends the new document copy to the database file immediately
  (append-only, copy-on-write) and queues the index change.
* ``commit`` makes the batch durable.
  - ORIGINAL mode rewrites every index node on the changed leaf-to-root
    paths (wandering tree) and appends a database header.
  - SHARE mode replaces each *update*'s index change with a SHARE pair
    (old document block <- new copy); the tree and header are written only
    when the batch contains inserts or deletes, whose keys genuinely
    change the index.

Stale-block accounting drives the compaction trigger: ORIGINAL updates
strand the old document and the replaced index nodes; SHARE updates strand
the appended staging copy (one block) and no index nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import EngineError, ResilienceError
from repro.couchstore.layout import (
    doc_body,
    doc_record,
    header_record,
    is_doc,
    is_header,
    parse_header,
)
from repro.couchstore.tree import AppendTree
from repro.host.file import File
from repro.host.filesystem import HostFs
from repro.host.resilience import ShareGuard


class CommitMode(Enum):
    """Original Couchbase vs the paper's SHARE adaptation."""

    ORIGINAL = "original"
    SHARE = "share"


@dataclass(frozen=True)
class CouchConfig:
    """Engine geometry.

    ``leaf_capacity``/``internal_fanout`` are chosen so a quarter-million
    document store has the paper's average tree depth of three (root,
    one internal level, leaves) and compaction's index rebuild writes a
    paper-comparable share of the file.
    """

    leaf_capacity: int = 7
    internal_fanout: int = 200
    doc_blocks: int = 1
    compaction_stale_ratio: float = 0.6
    prealloc_blocks: int = 256

    def __post_init__(self) -> None:
        if self.doc_blocks < 1:
            raise ValueError(f"doc_blocks must be >= 1: {self.doc_blocks}")
        if not 0.0 < self.compaction_stale_ratio < 1.0:
            raise ValueError("compaction_stale_ratio must be in (0, 1)")
        if self.prealloc_blocks < 1:
            raise ValueError(
                f"prealloc_blocks must be >= 1: {self.prealloc_blocks}")


@dataclass
class CouchStats:
    """Engine-level write accounting (documents vs index vs headers)."""

    doc_blocks_written: int = 0
    index_nodes_written: int = 0
    headers_written: int = 0
    commits: int = 0
    share_pairs: int = 0
    share_commands: int = 0
    compactions: int = 0


class CouchStore:
    """A single append-only key-value database file."""

    def __init__(self, fs: HostFs, path: str, mode: CommitMode,
                 config: Optional[CouchConfig] = None,
                 _file: Optional[File] = None,
                 _root_block: Optional[int] = None,
                 _update_seq: int = 0,
                 _doc_count: int = 0,
                 _stale_blocks: int = 0,
                 _append_cursor: Optional[int] = None,
                 _resilience: Optional[ShareGuard] = None) -> None:
        self.fs = fs
        self.path = path
        self.mode = mode
        self.config = config or CouchConfig()
        self.file = _file if _file is not None else fs.create(path)
        self._append_cursor = (_append_cursor if _append_cursor is not None
                               else self.file.block_count)
        self.tree = AppendTree(self.file,
                               leaf_capacity=self.config.leaf_capacity,
                               internal_fanout=self.config.internal_fanout,
                               root_block=_root_block,
                               append_fn=self._append)
        self.update_seq = _update_seq
        self.doc_count = _doc_count
        self.stale_blocks = _stale_blocks
        self.stats = CouchStats()
        self.telemetry = fs.telemetry
        # Fault instrumentation rides the device's plan: the commit and
        # compaction paths checkpoint so crash-consistency sweeps can cut
        # power at every engine-level step.
        self.faults = fs.ssd.faults
        # The resilience guard survives compaction (the new store inherits
        # it) so breaker state and fallback counts span the store's life.
        self.resilience = _resilience or ShareGuard(fs.ssd, engine="couch")
        metrics = self.telemetry.metrics.scope("couch")
        self._m_commits = metrics.counter("commits")
        self._m_share_pairs = metrics.counter("share_pairs")
        self._m_doc_blocks = metrics.counter("doc_blocks_written")
        self._m_headers = metrics.counter("headers_written")
        self._last_obsoleted = 0
        self._live_snapshots = 0
        # Pending (uncommitted) state.
        self._pending_docs: Dict[Any, Optional[int]] = {}
        self._pending_tree: Dict[Any, Optional[Tuple[int, int]]] = {}
        # old doc block -> (new copy block, key).  The key rides along so
        # a failed SHARE can fall back to an index update for the entry.
        self._pending_shares: Dict[int, Tuple[int, Any]] = {}
        self._pending_stale = 0

    # -------------------------------------------------------------- reads

    def get(self, key: Any) -> Optional[Any]:
        """Return the latest committed-or-pending document body, or None."""
        if key in self._pending_docs:
            block = self._pending_docs[key]
            if block is None:
                return None
            return doc_body(self._read_doc(block))
        pointer = self.tree.get(key)
        if pointer is None:
            return None
        block, __ = pointer
        return doc_body(self._read_doc(block))

    def contains(self, key: Any) -> bool:
        if key in self._pending_docs:
            return self._pending_docs[key] is not None
        return self.tree.get(key) is not None

    def _append(self, record: Any) -> int:
        """Append into preallocated space, fallocating ahead in chunks so
        metadata journaling happens once per chunk, not per block (real
        engines preallocate for exactly this reason)."""
        if self._append_cursor >= self.file.block_count:
            self.file.fallocate(self.file.block_count
                                + self.config.prealloc_blocks)
        block = self._append_cursor
        self.file.pwrite_block(block, record)
        self._append_cursor += 1
        return block

    def _read_doc(self, block: int) -> tuple:
        record = self.file.pread_block(block)
        if not is_doc(record):
            raise EngineError(f"block {block} does not hold a document")
        return record

    # ------------------------------------------------------------- writes

    def set(self, key: Any, body: Any) -> None:
        """Insert or update a document (durable at the next commit)."""
        self.update_seq += 1
        new_block = self._append(doc_record(key, self.update_seq, body))
        for __ in range(self.config.doc_blocks - 1):
            self._append(("doc-cont", key, self.update_seq))
        self.stats.doc_blocks_written += self.config.doc_blocks
        self._m_doc_blocks.inc(self.config.doc_blocks)
        old_pointer = self._current_pointer(key)
        if old_pointer is None:
            if self._pending_docs.get(key, "absent") is None:
                # Re-inserting a key deleted earlier in this batch.
                self._pending_shares.pop(self._share_dst_of(key), None)
            self._pending_tree[key] = (new_block, self.config.doc_blocks)
            self.doc_count += 1
        elif self.mode is CommitMode.SHARE and self._live_snapshots == 0:
            old_block, __ = old_pointer
            if old_block in self._pending_shares:
                # Two updates of one key in a batch: the earlier staged
                # copy is stranded.
                self._pending_stale += self.config.doc_blocks
            self._pending_shares[old_block] = (new_block, key)
            # The staged copy itself becomes stale once remapped.
            self._pending_stale += self.config.doc_blocks
        else:
            self._pending_tree[key] = (new_block, self.config.doc_blocks)
            self._pending_stale += self.config.doc_blocks  # old document
        self._pending_docs[key] = new_block

    def delete(self, key: Any) -> bool:
        """Remove a document (index change in both modes)."""
        pointer = self._current_pointer(key)
        if pointer is None:
            return False
        old_block, length = pointer
        self._pending_shares.pop(old_block, None)
        self._pending_tree[key] = None
        self._pending_docs[key] = None
        self._pending_stale += length
        self.doc_count -= 1
        self.update_seq += 1
        return True

    def _current_pointer(self, key: Any) -> Optional[Tuple[int, int]]:
        """Pointer as this batch sees it: committed tree unless the batch
        already touched the key."""
        if key in self._pending_tree:
            return self._pending_tree[key]
        if key in self._pending_docs:
            block = self._pending_docs[key]
            if block is None:
                return None
            # SHARE-mode update in this batch: pointer unchanged on disk.
            return self.tree.get(key)
        return self.tree.get(key)

    def _share_dst_of(self, key: Any) -> int:
        pointer = self.tree.get(key)
        return pointer[0] if pointer else -1

    # -------------------------------------------------------------- commit

    def commit(self) -> None:
        """Durability point for everything since the previous commit."""
        with self.telemetry.tracer.span(
                "couch.commit", mode=self.mode.value,
                tree_changed=bool(self._pending_tree),
                share_pairs=len(self._pending_shares)):
            self.faults.checkpoint("couch.commit_begin")
            if self._pending_shares:
                ranges = [(dst, src, self.config.doc_blocks)
                          for dst, (src, __)
                          in sorted(self._pending_shares.items())]
                try:
                    commands = self.resilience.share_file_ranges(
                        self.file, self.file, ranges)
                except ResilienceError:
                    # SHARE unavailable: serve the batch the ORIGINAL way —
                    # each staged copy becomes the document and the index
                    # is updated to point at it.  The new copies are
                    # already durable appends, so this is just more tree
                    # churn; the old documents go stale instead of the
                    # staged copies (same count, accounted below).
                    self.faults.checkpoint("couch.share_fallback")
                    self.resilience.record_fallback()
                    for __, (new_block, key) in sorted(
                            self._pending_shares.items()):
                        self._pending_tree[key] = (new_block,
                                                   self.config.doc_blocks)
                else:
                    self.stats.share_commands += commands
                    self.stats.share_pairs += (len(ranges)
                                               * self.config.doc_blocks)
                    self._m_share_pairs.inc(len(ranges)
                                            * self.config.doc_blocks)
                    self.faults.checkpoint("couch.after_share")
            if self._pending_tree:
                self.tree.apply_batch(dict(self._pending_tree))
                self.faults.checkpoint("couch.before_header")
                self._write_header()
            self.stale_blocks += self._pending_stale
            # Replaced index nodes are stale file blocks too (ORIGINAL
            # mode's wandering-tree churn; SHARE updates obsolete none).
            self.stale_blocks += self._tree_obsoleted_delta()
            self.file.fsync()
            self.faults.checkpoint("couch.commit_end")
        self._pending_docs.clear()
        self._pending_tree.clear()
        self._pending_shares.clear()
        self._pending_stale = 0
        self.stats.commits += 1
        self._m_commits.inc()

    def _tree_obsoleted_delta(self) -> int:
        delta = self.tree.nodes_obsoleted - self._last_obsoleted
        self._last_obsoleted = self.tree.nodes_obsoleted
        return delta

    def _write_header(self) -> None:
        self._append(header_record(
            self.tree.root_block, self.update_seq, self.doc_count,
            self.stale_blocks))
        self.stats.headers_written += 1
        self._m_headers.inc()
        self.stats.index_nodes_written = self.tree.nodes_written

    # ----------------------------------------------------------- triggers

    @property
    def data_blocks(self) -> int:
        """Blocks actually written (excludes preallocated headroom)."""
        return self._append_cursor

    @property
    def stale_ratio(self) -> float:
        """Fraction of the written file stranded by copy-on-write churn."""
        if self._append_cursor == 0:
            return 0.0
        return self.stale_blocks / self._append_cursor

    def needs_compaction(self) -> bool:
        return self.stale_ratio >= self.config.compaction_stale_ratio

    # ------------------------------------------------------------ iterate

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Committed (key, body) pairs in key order."""
        for key, (block, __) in self.tree.items():
            yield key, doc_body(self._read_doc(block))

    def scan(self, start_key: Any, count: int) -> List[Tuple[Any, Any]]:
        """Up to ``count`` committed (key, body) pairs with
        key >= start_key, in key order (YCSB workload E's operation).
        Pending (uncommitted) changes are not visible to scans."""
        out = []
        for key, (block, __) in self.tree.range_from(start_key, count):
            out.append((key, doc_body(self._read_doc(block))))
        return out

    def doc_pointers(self) -> List[Tuple[Any, Tuple[int, int]]]:
        """Committed (key, (block, length)) pairs — compaction's input."""
        return list(self.tree.items())

    # ----------------------------------------------------------- snapshots

    def snapshot(self, pin: bool = False) -> "CouchSnapshot":
        """A read-only view pinned to the current committed header.

        In ORIGINAL mode this is couchstore's cherished property: old
        headers keep working because nothing is ever overwritten, so a
        snapshot is a perfect point-in-time view.

        **Reproduction finding:** SHARE mode *weakens* this.  A document
        update remaps the old document block onto the new content, so a
        snapshot's tree — which still points at the old block — reads the
        NEW document version.  The snapshot stays consistent as a key set
        (inserts/deletes after the snapshot are invisible), but document
        *contents* are always the latest.  The paper does not discuss
        this trade; tests/test_couch_snapshots.py documents it.

        ``pin=True`` is the fix: while any pinned snapshot is live, SHARE
        mode falls back to ORIGINAL-style tree updates (no remapping over
        history), restoring exact point-in-time semantics at the cost of
        wandering-tree writes for the duration.  Call
        :meth:`CouchSnapshot.release` when done.
        """
        if pin:
            self._live_snapshots += 1
        return CouchSnapshot(self, self.tree.root_block, pinned=pin)

    def _release_snapshot(self) -> None:
        if self._live_snapshots <= 0:
            raise EngineError("no pinned snapshot to release")
        self._live_snapshots -= 1

    # ------------------------------------------------------------- reopen

    @classmethod
    def reopen(cls, fs: HostFs, path: str, mode: CommitMode,
               config: Optional[CouchConfig] = None) -> "CouchStore":
        """Restart after a crash: scan backwards for the newest header
        (Couchbase's original recovery, which SHARE leaves intact —
        Section 4.3).  Uncommitted appends after it are ignored."""
        handle = fs.open(path)
        end_cursor = None
        for block in range(handle.block_count - 1, -1, -1):
            lpn = handle.block_lpn(block)
            if not fs.ssd.ftl.is_mapped(lpn):
                continue  # fallocated but never written
            if end_cursor is None:
                end_cursor = block + 1
            record = handle.pread_block(block)
            if is_header(record):
                root, seq, count, stale = parse_header(record)
                return cls(fs, path, mode, config, _file=handle,
                           _root_block=root, _update_seq=seq,
                           _doc_count=count, _stale_blocks=stale,
                           _append_cursor=end_cursor)
        # No header: the file never committed; reopen empty.
        return cls(fs, path, mode, config, _file=handle,
                   _append_cursor=end_cursor or 0)


class CouchSnapshot:
    """Read-only view over a pinned tree root (see
    :meth:`CouchStore.snapshot` for the SHARE-mode caveat and the
    ``pin`` fix)."""

    def __init__(self, store: CouchStore, root_block: Optional[int],
                 pinned: bool = False) -> None:
        self._store = store
        self._pinned = pinned
        self._tree = AppendTree(store.file,
                                leaf_capacity=store.config.leaf_capacity,
                                internal_fanout=store.config.internal_fanout,
                                root_block=root_block)

    def release(self) -> None:
        """Release a pinned snapshot, letting SHARE-mode remapping resume."""
        if self._pinned:
            self._store._release_snapshot()
            self._pinned = False

    def __enter__(self) -> "CouchSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def get(self, key: Any) -> Optional[Any]:
        pointer = self._tree.get(key)
        if pointer is None:
            return None
        block, __ = pointer
        return doc_body(self._store._read_doc(block))

    def contains(self, key: Any) -> bool:
        return self._tree.get(key) is not None

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for key, (block, __) in self._tree.items():
            yield key, doc_body(self._store._read_doc(block))
