"""Append-only (copy-on-write / wandering) B+tree.

Nodes are immutable once written: any change to a leaf appends a new leaf
block and — this is the wandering-tree amplification of Section 2.2 —
new copies of every node on the path up to the root.  ``apply_batch``
applies a whole commit's changes in one pass, so nodes shared by several
changed keys are rewritten only once per commit (the batch-size effect of
Figure 7(b)).

Values are document pointers: the file block index of the document
(plus its length in blocks).  The tree never reads documents.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import EngineError
from repro.couchstore.layout import INTERNAL_TAG, LEAF_TAG
from repro.host.file import File


class AppendTree:
    """B+tree over an append-only file.

    ``root_block`` of None means the tree is empty.  A node cache keyed by
    block index avoids re-reading immutable nodes from the device, like
    couchstore's in-memory btree cache; document blocks are never cached
    here.
    """

    def __init__(self, file: File, leaf_capacity: int = 7,
                 internal_fanout: int = 200,
                 root_block: Optional[int] = None,
                 append_fn=None) -> None:
        if leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2: {leaf_capacity}")
        if internal_fanout < 3:
            raise ValueError(f"internal_fanout must be >= 3: {internal_fanout}")
        self.file = file
        self.leaf_capacity = leaf_capacity
        self.internal_fanout = internal_fanout
        self.root_block = root_block
        # Engines inject a preallocation-aware appender; standalone use
        # falls back to plain file appends.
        self._append = append_fn if append_fn is not None else file.append_block
        self._cache: Dict[int, tuple] = {}
        self.nodes_written = 0
        self.nodes_obsoleted = 0

    # ------------------------------------------------------------- node IO

    def _read(self, block: int) -> tuple:
        node = self._cache.get(block)
        if node is None:
            node = self.file.pread_block(block)
            if not isinstance(node, tuple) or node[0] not in (LEAF_TAG,
                                                              INTERNAL_TAG):
                raise EngineError(f"block {block} is not an index node")
            self._cache[block] = node
        return node

    def _write(self, node: tuple) -> int:
        block = self._append(node)
        self._cache[block] = node
        self.nodes_written += 1
        return block

    # -------------------------------------------------------------- lookup

    def get(self, key: Any) -> Optional[Any]:
        """Document pointer stored under ``key``, or None."""
        if self.root_block is None:
            return None
        block = self.root_block
        node = self._read(block)
        while node[0] == INTERNAL_TAG:
            __, keys, children = node
            node = self._read(children[bisect.bisect_right(keys, key)])
        __, keys, ptrs = node
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return ptrs[index]
        return None

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, pointer) pairs in key order."""
        if self.root_block is None:
            return
        stack = [self.root_block]
        out = []
        # Iterative DFS keeping key order (children pushed reversed).
        while stack:
            node = self._read(stack.pop())
            if node[0] == INTERNAL_TAG:
                stack.extend(reversed(node[2]))
            else:
                out.append(node)
        for leaf in out:
            __, keys, ptrs = leaf
            for key, ptr in zip(keys, ptrs):
                yield key, ptr

    def range_from(self, start_key: Any, limit: int
                   ) -> List[Tuple[Any, Any]]:
        """Up to ``limit`` (key, pointer) pairs with key >= start_key, in
        key order — the scan primitive YCSB workload E needs."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1: {limit}")
        if self.root_block is None:
            return []
        out: List[Tuple[Any, Any]] = []
        self._collect_range(self.root_block, start_key, limit, out)
        return out

    def _collect_range(self, block: int, start_key: Any, limit: int,
                       out: List[Tuple[Any, Any]]) -> None:
        node = self._read(block)
        if node[0] == LEAF_TAG:
            __, keys, ptrs = node
            index = bisect.bisect_left(keys, start_key)
            while index < len(keys) and len(out) < limit:
                out.append((keys[index], ptrs[index]))
                index += 1
            return
        __, keys, children = node
        index = bisect.bisect_right(keys, start_key)
        while index < len(children) and len(out) < limit:
            self._collect_range(children[index], start_key, limit, out)
            index += 1

    def depth(self) -> int:
        """Levels root..leaf inclusive; 0 for an empty tree."""
        if self.root_block is None:
            return 0
        depth = 1
        node = self._read(self.root_block)
        while node[0] == INTERNAL_TAG:
            depth += 1
            node = self._read(node[2][0])
        return depth

    # --------------------------------------------------------------- batch

    def apply_batch(self, changes: Dict[Any, Optional[Any]]) -> int:
        """Apply a commit's worth of changes (pointer values; None deletes)
        copy-on-write; returns the number of index nodes written.

        The root pointer moves to the new root; untouched subtrees are
        reused by reference.
        """
        if not changes:
            return 0
        written_before = self.nodes_written
        if self.root_block is None:
            live = sorted((k, v) for k, v in changes.items() if v is not None)
            self.root_block = self._build_from_entries(live)
            return self.nodes_written - written_before
        result = self._apply(self.root_block, dict(changes))
        self.root_block = self._collapse_to_root(result)
        return self.nodes_written - written_before

    def _collapse_to_root(self, entries: List[Tuple[Any, int]]) -> Optional[int]:
        """Turn the top-level (min_key, block) list into a single root."""
        if not entries:
            # Everything deleted: keep an explicit empty leaf as root.
            return self._write((LEAF_TAG, (), ()))
        while len(entries) > 1:
            entries = self._build_internal_level(entries)
        return entries[0][1]

    def _apply(self, block: int, changes: Dict[Any, Optional[Any]]
               ) -> List[Tuple[Any, int]]:
        """Recursive copy-on-write merge; returns replacement (min_key,
        block) entries for this subtree (possibly the original block when
        untouched)."""
        node = self._read(block)
        if node[0] == LEAF_TAG:
            return self._apply_leaf(block, node, changes)
        __, keys, children = node
        child_changes: List[Dict[Any, Optional[Any]]] = [
            {} for __ in children]
        for key, value in changes.items():
            child_changes[bisect.bisect_right(keys, key)][key] = value
        new_entries: List[Tuple[Any, int]] = []
        touched = False
        for child, sub in zip(children, child_changes):
            if not sub:
                new_entries.append((self._min_key(child), child))
                continue
            replacement = self._apply(child, sub)
            if len(replacement) != 1 or replacement[0][1] != child:
                touched = True
            new_entries.extend(replacement)
        if not touched:
            return [(new_entries[0][0] if new_entries else None, block)]
        self.nodes_obsoleted += 1
        if not new_entries:
            return []
        if len(new_entries) <= self.internal_fanout:
            return [self._write_internal(new_entries)]
        return self._split_entries_into_internals(new_entries)

    def _apply_leaf(self, block: int, node: tuple,
                    changes: Dict[Any, Optional[Any]]
                    ) -> List[Tuple[Any, int]]:
        __, keys, ptrs = node
        merged = dict(zip(keys, ptrs))
        for key, value in changes.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        entries = sorted(merged.items())
        if entries == list(zip(keys, ptrs)):
            return [(keys[0] if keys else None, block)]
        self.nodes_obsoleted += 1
        if not entries:
            return []
        return self._split_entries_into_leaves(entries)

    # ---------------------------------------------------------- node build

    def _split_entries_into_leaves(self, entries: List[Tuple[Any, Any]]
                                   ) -> List[Tuple[Any, int]]:
        chunks = _balanced_chunks(entries, self.leaf_capacity)
        out = []
        for chunk in chunks:
            keys = tuple(k for k, __ in chunk)
            ptrs = tuple(v for __, v in chunk)
            out.append((keys[0], self._write((LEAF_TAG, keys, ptrs))))
        return out

    def _split_entries_into_internals(self, entries: List[Tuple[Any, int]]
                                      ) -> List[Tuple[Any, int]]:
        out = []
        for chunk in _balanced_chunks(entries, self.internal_fanout):
            out.append(self._write_internal(chunk))
        return out

    def _write_internal(self, entries: List[Tuple[Any, int]]
                        ) -> Tuple[Any, int]:
        keys = tuple(min_key for min_key, __ in entries[1:])
        children = tuple(block for __, block in entries)
        return (entries[0][0], self._write((INTERNAL_TAG, keys, children)))

    def _build_internal_level(self, entries: List[Tuple[Any, int]]
                              ) -> List[Tuple[Any, int]]:
        return [self._write_internal(chunk)
                for chunk in _balanced_chunks(entries, self.internal_fanout)]

    def _build_from_entries(self, entries: List[Tuple[Any, Any]]) -> int:
        """Bulk-build a whole tree (initial load and compaction rebuild)."""
        if not entries:
            return self._write((LEAF_TAG, (), ()))
        level = self._split_entries_into_leaves(entries)
        while len(level) > 1:
            level = self._build_internal_level(level)
        return level[0][1]

    def bulk_load(self, sorted_items: List[Tuple[Any, Any]]) -> int:
        """Replace the tree with a bulk-built one over ``sorted_items``
        (compaction's index rebuild); returns nodes written."""
        written_before = self.nodes_written
        self.root_block = self._build_from_entries(list(sorted_items))
        return self.nodes_written - written_before

    def _min_key(self, block: int) -> Any:
        node = self._read(block)
        while node[0] == INTERNAL_TAG:
            node = self._read(node[2][0])
        keys = node[1]
        return keys[0] if keys else None


def _balanced_chunks(entries: List, capacity: int) -> List[List]:
    """Split ``entries`` into the fewest chunks of at most ``capacity``,
    sized as evenly as possible (avoids degenerate single-entry nodes)."""
    if not entries:
        return []
    count = -(-len(entries) // capacity)
    base = len(entries) // count
    extra = len(entries) % count
    chunks = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(entries[start:start + size])
        start += size
    return chunks
