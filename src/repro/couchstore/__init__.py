"""Couchbase-like append-only storage engine (couchstore).

The engine implements the copy-on-write, wandering-tree design of
Section 2.2 and both of the paper's SHARE adaptations (Section 4.3):

* ``CommitMode.ORIGINAL`` — document updates append the new document copy
  and rewrite every index node on the leaf-to-root path at commit;
  compaction copies every valid document into a new file.
* ``CommitMode.SHARE`` — document updates append the new copy, then one
  SHARE pair remaps the old document's block onto it; the index tree is
  untouched, so neither the wandering-tree rewrites nor the per-commit
  header write happen.  Compaction shares valid documents into the
  fallocate'd new file instead of copying them (Figure 3).
"""

from repro.couchstore.compaction import CompactionResult, compact
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.couchstore.tree import AppendTree

__all__ = [
    "AppendTree",
    "CommitMode",
    "CompactionResult",
    "CouchConfig",
    "CouchStore",
    "compact",
]
