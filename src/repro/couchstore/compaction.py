"""Couchstore compaction: the copy algorithm and the SHARE zero-copy
algorithm of Figure 3.

Both build a fresh database file and atomically switch over by rename;
the old file is unlinked afterwards (its extents are TRIMmed, which is
what finally releases the shared physical pages' old references).

* **Copy compaction** (original Couchbase): read every valid document
  from the old file, append it to the new file, bulk-build the index,
  write a header.
* **SHARE compaction**: ``fallocate`` the new file's document region,
  read only each valid document's *header block* (the length check the
  paper calls out as Table 2's residual cost), SHARE every document's
  blocks from the old file onto the new file's blocks, then bulk-build
  the index and write a header.  No document bytes are copied.

Crash mid-compaction: the partially built new file is deleted and the
whole compaction restarts (Section 4.3) — ``abandon_partial`` implements
the cleanup and tests exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.couchstore.engine import CommitMode, CouchStore
from repro.couchstore.layout import doc_key, header_record
from repro.errors import ResilienceError
from repro.sim.clock import SimClock


@dataclass(frozen=True)
class CompactionResult:
    """Table 2's row: elapsed virtual time and written volume, plus the
    supporting detail."""

    mode: str
    elapsed_seconds: float
    written_bytes: int
    read_bytes: int
    docs_moved: int
    index_nodes_written: int
    share_commands: int

    @property
    def written_mib(self) -> float:
        return self.written_bytes / (1024.0 * 1024.0)


def compact(store: CouchStore, clock: SimClock,
            suffix: str = ".compact") -> Tuple[CouchStore, CompactionResult]:
    """Compact ``store`` using its own mode's algorithm; returns the new
    store (same path, swapped in place) and the measurement."""
    telemetry = store.telemetry
    with telemetry.tracer.span("couch.compaction",
                               mode=store.mode.value) as span:
        if store.mode is CommitMode.SHARE:
            new_store, result = _compact_share(store, clock, suffix)
        else:
            new_store, result = _compact_copy(store, clock, suffix)
        span.set(docs_moved=result.docs_moved,
                 share_commands=result.share_commands,
                 index_nodes_written=result.index_nodes_written)
    metrics = telemetry.metrics.scope("couch.compaction")
    metrics.counter("runs").inc()
    metrics.counter("pages_moved").inc(
        result.docs_moved * store.config.doc_blocks)
    metrics.counter("share_commands").inc(result.share_commands)
    metrics.counter("index_nodes_written").inc(result.index_nodes_written)
    return new_store, result


def abandon_partial(store: CouchStore, suffix: str = ".compact") -> bool:
    """Post-crash cleanup: delete a leftover partial compaction file.
    Returns True when one existed."""
    partial = store.path + suffix
    if store.fs.exists(partial):
        store.fs.unlink(partial)
        return True
    return False


def _measure_start(store: CouchStore, clock: SimClock):
    return clock.now_us, store.fs.ssd.stats.copy()


def _measure_end(store: CouchStore, clock: SimClock, start, mode: str,
                 docs: int, nodes: int, share_commands: int
                 ) -> CompactionResult:
    start_us, stats_before = start
    delta = store.fs.ssd.stats.delta_since(stats_before)
    return CompactionResult(
        mode=mode,
        elapsed_seconds=(clock.now_us - start_us) / 1e6,
        written_bytes=int(delta["host_write_pages"]) * store.fs.ssd.page_size,
        read_bytes=int(delta["host_read_pages"]) * store.fs.ssd.page_size,
        docs_moved=docs,
        index_nodes_written=nodes,
        share_commands=share_commands,
    )


def _swap_in(store: CouchStore, new_store: CouchStore, tmp_path: str) -> None:
    """Rename the compacted file over the database path (unlinking the old
    file and TRIMming its extents) and repoint the new store."""
    store.fs.rename(tmp_path, store.path)
    new_store.path = store.path


def _compact_copy(store: CouchStore, clock: SimClock, suffix: str
                  ) -> Tuple[CouchStore, CompactionResult]:
    faults = store.faults
    start = _measure_start(store, clock)
    tmp_path = store.path + suffix
    new_store = CouchStore(store.fs, tmp_path, store.mode, store.config,
                           _update_seq=store.update_seq,
                           _doc_count=store.doc_count, _stale_blocks=0,
                           _resilience=store.resilience)
    faults.checkpoint("couch.compact_begin")
    new_file = new_store.file
    entries: List[Tuple] = []
    docs_moved = 0
    for key, (block, length) in store.doc_pointers():
        record = store._read_doc(block)
        new_block = new_store._append(record)
        for offset in range(1, length):
            new_store._append(store.file.pread_block(block + offset))
        entries.append((key, (new_block, length)))
        docs_moved += 1
    faults.checkpoint("couch.compact_index")
    nodes = new_store.tree.bulk_load(entries)
    faults.checkpoint("couch.compact_header")
    new_store._append(header_record(new_store.tree.root_block,
                                    new_store.update_seq,
                                    new_store.doc_count, 0))
    new_store.stats.headers_written += 1
    new_file.fsync()
    faults.checkpoint("couch.compact_switch")
    _swap_in(store, new_store, tmp_path)
    faults.checkpoint("couch.compact_end")
    new_store.stats.compactions = store.stats.compactions + 1
    result = _measure_end(store, clock, start, "copy", docs_moved, nodes, 0)
    return new_store, result


def _compact_share(store: CouchStore, clock: SimClock, suffix: str
                   ) -> Tuple[CouchStore, CompactionResult]:
    faults = store.faults
    start = _measure_start(store, clock)
    tmp_path = store.path + suffix
    new_store = CouchStore(store.fs, tmp_path, store.mode, store.config,
                           _update_seq=store.update_seq,
                           _doc_count=store.doc_count, _stale_blocks=0,
                           _resilience=store.resilience)
    faults.checkpoint("couch.compact_begin")
    new_file = new_store.file
    pointers = store.doc_pointers()
    # Step 1 (Figure 3): reserve the new file's document region up front.
    total_doc_blocks = sum(length for __, (__, length) in pointers)
    if total_doc_blocks:
        new_file.fallocate(total_doc_blocks)
        new_store._append_cursor = total_doc_blocks
        faults.checkpoint("couch.compact_alloc")
    # Step 2: share each valid document into the new file.  Only the
    # document's header block is read, to learn its length — the residual
    # read cost Table 2 explains.
    entries: List[Tuple] = []
    ranges: List[Tuple[int, int, int]] = []
    cursor = 0
    docs_moved = 0
    for key, (block, length) in pointers:
        record = store._read_doc(block)           # the header-page read
        if doc_key(record) != key:
            raise RuntimeError(
                f"index points block {block} at key {key!r} but the "
                f"document header says {doc_key(record)!r}")
        ranges.append((cursor, block, length))
        entries.append((key, (cursor, length)))
        cursor += length
        docs_moved += 1
    share_commands = 0
    if ranges:
        # The destination file blocks come from new_file; sources from the
        # old file, both resolved to LPNs by _share_across.
        faults.checkpoint("couch.compact_share")
        try:
            share_commands = store.resilience.call(
                "couch.compact_share",
                lambda: _share_across(new_file, store, ranges))
        except ResilienceError:
            # SHARE unavailable: abandon the zero-copy attempt and run the
            # original copy compaction.  The partial new file holds only
            # fallocated (never-written) blocks, so deleting it is the
            # same cleanup a crash would need — and the crash checkpoints
            # around it prove that window safe too.
            faults.checkpoint("couch.compact_fallback")
            store.resilience.record_fallback()
            store.fs.unlink(tmp_path)
            return _compact_copy(store, clock, suffix)
    # Step 3: rebuild the index over the new locations.  ``pointers`` came
    # from the tree in key order, so ``entries`` is already sorted.
    faults.checkpoint("couch.compact_index")
    nodes = new_store.tree.bulk_load(entries)
    faults.checkpoint("couch.compact_header")
    new_store._append(header_record(new_store.tree.root_block,
                                    new_store.update_seq,
                                    new_store.doc_count, 0))
    new_store.stats.headers_written += 1
    new_file.fsync()
    faults.checkpoint("couch.compact_switch")
    _swap_in(store, new_store, tmp_path)
    faults.checkpoint("couch.compact_end")
    new_store.stats.compactions = store.stats.compactions + 1
    new_store.stats.share_commands = share_commands
    new_store.stats.share_pairs = docs_moved
    result = _measure_end(store, clock, start, "share", docs_moved, nodes,
                          share_commands)
    return new_store, result


def _share_across(new_file, store: CouchStore,
                  ranges: List[Tuple[int, int, int]]) -> int:
    """share(dst=new file blocks, src=old file blocks) in device batches."""
    pairs = []
    for dst_block, src_block, length in ranges:
        for offset in range(length):
            pairs.append((new_file.block_lpn(dst_block + offset),
                          store.file.block_lpn(src_block + offset)))
    from repro.ftl.share_ext import SharePair
    ssd = store.fs.ssd
    limit = ssd.max_share_batch
    commands = 0
    for start_index in range(0, len(pairs), limit):
        chunk = pairs[start_index:start_index + limit]
        ssd.share_batch([SharePair(dst, src) for dst, src in chunk])
        commands += 1
    return commands
