"""On-media record formats of the couchstore file.

Every file block holds exactly one record: a document block, an index
node, or a database header.  Real couchstore packs appends at byte
granularity but 4 KiB-aligns headers; the paper's experiment geometry
(4 KiB average documents, 4 KiB tree nodes) makes the one-record-per-block
simplification faithful to the measured write volumes.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

DOC_TAG = "doc"
HEADER_TAG = "header"
LEAF_TAG = "cleaf"
INTERNAL_TAG = "cint"


def doc_record(key: Any, rev: int, body: Any) -> tuple:
    """A document block: the first block carries key/rev/length metadata —
    the 'header page of each valid document' that SHARE compaction still
    has to read (Table 2's explanation)."""
    return (DOC_TAG, key, rev, body)


def header_record(root_block: Optional[int], update_seq: int,
                  doc_count: int, stale_blocks: int) -> tuple:
    """A database header: commit point carrying the index root pointer."""
    return (HEADER_TAG, root_block, update_seq, doc_count, stale_blocks)


def is_doc(record: Any) -> bool:
    return isinstance(record, tuple) and record and record[0] == DOC_TAG


def is_header(record: Any) -> bool:
    return isinstance(record, tuple) and record and record[0] == HEADER_TAG


def doc_key(record: tuple) -> Any:
    return record[1]


def doc_rev(record: tuple) -> int:
    return record[2]


def doc_body(record: tuple) -> Any:
    return record[3]


def parse_header(record: tuple) -> Tuple[Optional[int], int, int, int]:
    """(root_block, update_seq, doc_count, stale_blocks)."""
    return record[1], record[2], record[3], record[4]
