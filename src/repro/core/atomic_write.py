"""Generic atomic multi-page writes built on SHARE.

This is the reusable form of what the modified InnoDB does (Section 4.3):
stage the new page images in a scratch (journal) area, fsync, then issue
one SHARE batch that remaps every destination page onto its staged copy.
A crash before the SHARE leaves all destinations at their old content; a
crash after it leaves all of them at the new content — multi-page write
atomicity with **zero** redundant data writes.

Unlike the fixed-set atomic-write FTLs the paper compares against
(Section 6.1), pages can be staged at any time and in any order; only the
final ``commit`` is a single atomic step.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import ShareError
from repro.ftl.share_ext import SharePair
from repro.ssd.device import Ssd


class ScratchArea:
    """A ring of scratch LPNs used to stage page images.

    The area is reused circularly, like InnoDB's doublewrite buffer: once a
    staged copy has been remapped into place by SHARE, its scratch LPN may
    be rewritten — the device keeps the shared physical page alive until
    the destination LPN moves away too.
    """

    def __init__(self, ssd: Ssd, base_lpn: int, size_pages: int) -> None:
        if size_pages < 1:
            raise ValueError(f"scratch area needs >= 1 page: {size_pages}")
        if base_lpn < 0 or base_lpn + size_pages > ssd.logical_pages:
            raise ValueError("scratch area outside the device's logical space")
        self._ssd = ssd
        self.base_lpn = base_lpn
        self.size_pages = size_pages
        self._cursor = 0

    def stage(self, data: Any) -> int:
        """Write one page image into the scratch ring; returns the scratch
        LPN holding it."""
        lpn = self.base_lpn + self._cursor
        self._cursor = (self._cursor + 1) % self.size_pages
        self._ssd.write(lpn, data)
        return lpn

    def stage_batch(self, pages: List[Any]) -> List[int]:
        """Stage consecutive page images; returns their scratch LPNs.

        Splits around the ring wrap so each device command covers a
        contiguous LPN run.
        """
        if not pages:
            raise ValueError("no pages to stage")
        if len(pages) > self.size_pages:
            raise ShareError(
                f"batch of {len(pages)} exceeds scratch capacity "
                f"{self.size_pages}")
        lpns: List[int] = []
        remaining = list(pages)
        while remaining:
            run = min(len(remaining), self.size_pages - self._cursor)
            start_lpn = self.base_lpn + self._cursor
            self._ssd.write_multi(start_lpn, remaining[:run])
            lpns.extend(range(start_lpn, start_lpn + run))
            self._cursor = (self._cursor + run) % self.size_pages
            remaining = remaining[run:]
        return lpns


class AtomicWriter:
    """Atomic propagation of a set of (destination LPN -> page image)
    updates using stage + SHARE."""

    def __init__(self, ssd: Ssd, scratch: ScratchArea) -> None:
        self._ssd = ssd
        self._scratch = scratch
        self._staged: Dict[int, int] = {}

    @property
    def staged_count(self) -> int:
        return len(self._staged)

    def stage(self, dst_lpn: int, data: Any) -> None:
        """Stage a new image for ``dst_lpn``.  Restaging the same
        destination before commit simply supersedes the earlier copy."""
        if not 0 <= dst_lpn < self._ssd.logical_pages:
            raise ValueError(f"destination LPN out of range: {dst_lpn}")
        if self._scratch.base_lpn <= dst_lpn < (self._scratch.base_lpn
                                                + self._scratch.size_pages):
            raise ShareError(
                f"destination LPN {dst_lpn} lies inside the scratch area")
        self._staged[dst_lpn] = self._scratch.stage(data)

    def commit(self) -> int:
        """Flush staging, then remap every destination atomically.

        The staged set must fit one device-atomic SHARE batch — that is the
        price of all-or-nothing semantics across the whole set.  Returns
        the number of pages committed.
        """
        if not self._staged:
            raise ShareError("nothing staged to commit")
        if len(self._staged) > self._ssd.max_share_batch:
            raise ShareError(
                f"{len(self._staged)} staged pages exceed the atomic SHARE "
                f"limit of {self._ssd.max_share_batch}")
        self._ssd.flush()
        pairs = [SharePair(dst, src) for dst, src in sorted(self._staged.items())]
        self._ssd.share_batch(pairs)
        count = len(pairs)
        self._staged = {}
        return count

    def abort(self) -> None:
        """Forget staged images; destinations keep their old content."""
        self._staged = {}
