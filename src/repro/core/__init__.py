"""The paper's primary contribution as a host-side library.

:mod:`repro.core.share` re-exports the SHARE command vocabulary and adds a
builder for large batches; :mod:`repro.core.atomic_write` packages the
paper's central trick — "write anywhere, then remap into place" — as a
generic atomic multi-page write primitive any storage engine can adopt
(Section 3.3's "other applications of SHARE").
"""

from repro.core.atomic_write import AtomicWriter, ScratchArea
from repro.core.share import ShareBatchBuilder, SharePair, expand_range

__all__ = [
    "AtomicWriter",
    "ScratchArea",
    "ShareBatchBuilder",
    "SharePair",
    "expand_range",
]
