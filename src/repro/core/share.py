"""High-level SHARE batching.

The device commits one mapping page of deltas atomically; applications that
want to remap more pages than that must decide how to split.  The builder
here accumulates pairs, validates them eagerly (fail before any device
state changes), and submits in atomic chunks.
"""

from __future__ import annotations

from typing import List

from repro.errors import ShareError
from repro.ftl.share_ext import SharePair, expand_range
from repro.ssd.device import Ssd

__all__ = ["SharePair", "expand_range", "ShareBatchBuilder"]


class ShareBatchBuilder:
    """Accumulates SHARE pairs and submits them in device-atomic chunks.

    Each submitted chunk is atomic on its own; cross-chunk atomicity is the
    caller's problem (InnoDB needs none — every page pair is independent;
    Couchbase compaction is restartable as a whole, Section 4.3).
    """

    def __init__(self, ssd: Ssd) -> None:
        if not ssd.supports_share:
            raise ShareError("device does not support the SHARE command")
        self._ssd = ssd
        self._pairs: List[SharePair] = []
        self._dst_seen = set()

    def add(self, dst_lpn: int, src_lpn: int) -> "ShareBatchBuilder":
        """Queue one remap; validates duplicates eagerly."""
        pair = SharePair(dst_lpn, src_lpn)
        if dst_lpn in self._dst_seen:
            raise ShareError(f"destination LPN queued twice: {dst_lpn}")
        self._dst_seen.add(dst_lpn)
        self._pairs.append(pair)
        return self

    def add_range(self, dst_lpn: int, src_lpn: int, length: int) -> "ShareBatchBuilder":
        for pair in expand_range(dst_lpn, src_lpn, length):
            self.add(pair.dst_lpn, pair.src_lpn)
        return self

    def __len__(self) -> int:
        return len(self._pairs)

    def submit(self) -> int:
        """Issue the queued pairs; returns the number of device commands."""
        if not self._pairs:
            raise ShareError("nothing queued to share")
        limit = self._ssd.max_share_batch
        commands = 0
        for start in range(0, len(self._pairs), limit):
            self._ssd.share_batch(self._pairs[start:start + limit])
            commands += 1
        self._pairs = []
        self._dst_seen = set()
        return commands
