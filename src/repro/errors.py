"""Exception hierarchy shared across every layer of the SHARE reproduction.

Each simulated layer (NAND array, FTL, SSD facade, host filesystem, database
engines) raises a subclass of :class:`ReproError` so callers can distinguish
programming mistakes (plain ``ValueError``/``TypeError``) from simulated
device and protocol failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FlashError(ReproError):
    """Base class for NAND-array level violations."""


class ProgramError(FlashError):
    """Raised when a page is programmed out of order or re-programmed.

    Real NAND forbids overwriting a programmed page and (for MLC) requires
    pages within a block to be programmed sequentially.  Violations indicate
    an FTL bug, so the array refuses the operation instead of corrupting
    state silently.
    """


class EraseError(FlashError):
    """Raised for an erase of an out-of-range or protected block."""


class ReadError(FlashError):
    """Raised when reading an unwritten (erased) page."""


class FtlError(ReproError):
    """Base class for FTL protocol violations."""


class OutOfSpaceError(FtlError):
    """Raised when the FTL cannot find a free page even after garbage
    collection, i.e. the logical space is overcommitted."""


class UnmappedPageError(FtlError):
    """Raised when reading an LPN that has no physical mapping."""


class ShareError(FtlError):
    """Raised for invalid SHARE commands (bad range, overlap, unmapped
    source, or reverse-map capacity exhaustion that cannot be reconciled)."""


class DeviceError(ReproError):
    """Raised by the SSD block-device facade for malformed requests."""


class PowerFailure(ReproError):
    """Injected power failure.

    Raised at a registered fault point to simulate sudden power loss; the
    test harness catches it, discards all volatile state, and restarts the
    stack from the persisted media image.
    """


class FileSystemError(ReproError):
    """Base class for host filesystem failures."""


class FileNotFound(FileSystemError):
    """Raised when opening or unlinking a path that does not exist."""


class FileExists(FileSystemError):
    """Raised when creating a path that already exists."""


class NoSpace(FileSystemError):
    """Raised when the filesystem has no free extents left."""


class IoctlError(FileSystemError):
    """Raised when a share ioctl cannot be translated to device LPNs."""


class EngineError(ReproError):
    """Base class for database-engine level errors."""


class TornPageError(EngineError):
    """Raised when a page checksum mismatch (torn write) is detected and no
    recovery copy exists."""


class RecoveryError(EngineError):
    """Raised when crash recovery cannot restore a consistent state."""
