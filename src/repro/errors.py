"""Exception hierarchy shared across every layer of the SHARE reproduction.

Each simulated layer (NAND array, FTL, SSD facade, host filesystem, database
engines) raises a subclass of :class:`ReproError` so callers can distinguish
programming mistakes (plain ``ValueError``/``TypeError``) from simulated
device and protocol failures.

The hierarchy separates two very different failure families at the flash
layer:

* **protocol violations** (:class:`ProgramError`, :class:`ReadError`,
  :class:`EraseError`) — the FTL broke a chip-level rule (overwrote a
  programmed page, read an erased one).  These indicate firmware bugs and
  are never retried or masked.
* **media faults** (:class:`MediaError` and subclasses) — the *medium*
  failed: an uncorrectable read, a program failure, an erase failure.
  Firmware is expected to survive these (read-retry, re-program elsewhere,
  retire the block); when it cannot, the typed error propagates unchanged
  through the device facade and host stack so engines never receive wrong
  data silently.

Everything a device command can legitimately surface to the host subclasses
:class:`DeviceError` — media faults (via :class:`MediaError`'s dual
parentage) and FTL-state errors (via :class:`FtlError`) alike — so host
code can catch one type at the ioctl boundary without also swallowing
programming mistakes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DeviceError",
    "FlashError",
    "ProgramError",
    "EraseError",
    "ReadError",
    "MediaError",
    "UncorrectableReadError",
    "ProgramFailError",
    "EraseFailError",
    "FtlError",
    "OutOfSpaceError",
    "UnmappedPageError",
    "ShareError",
    "DeviceBusyError",
    "CommandTimeoutError",
    "CommandUnsupportedError",
    "PowerFailure",
    "ResilienceError",
    "CircuitOpenError",
    "RetriesExhaustedError",
    "FileSystemError",
    "FileNotFound",
    "FileExists",
    "NoSpace",
    "IoctlError",
    "EngineError",
    "TornPageError",
    "RecoveryError",
    "ClusterError",
    "StaleEpochError",
    "ShardUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DeviceError(ReproError):
    """Base class for every error a device command can surface to the host.

    This covers malformed requests raised by the SSD facade itself, FTL
    state errors (:class:`FtlError`), and media faults
    (:class:`MediaError`).  Host layers that must degrade gracefully catch
    ``DeviceError``; anything else escaping a device call is a bug.
    """


class FlashError(ReproError):
    """Base class for NAND-array level failures (protocol and media)."""


class ProgramError(FlashError):
    """Raised when a page is programmed out of order or re-programmed.

    Real NAND forbids overwriting a programmed page and (for MLC) requires
    pages within a block to be programmed sequentially.  Violations indicate
    an FTL bug, so the array refuses the operation instead of corrupting
    state silently.
    """


class EraseError(FlashError):
    """Raised for an erase of an out-of-range or protected block."""


class ReadError(FlashError):
    """Raised when reading an unwritten (erased) page — an FTL bug, not a
    media fault."""


class MediaError(FlashError, DeviceError):
    """Base class for genuine media failures injected by the fault plan.

    Unlike the protocol violations above, these model the physics of NAND
    (charge loss, failed program pulses, worn-out blocks).  They are both
    :class:`FlashError` (they originate at the array) and
    :class:`DeviceError` (they may surface to the host when firmware
    cannot mask them).
    """


class UncorrectableReadError(MediaError):
    """Read ECC failure: the page's payload cannot be reconstructed.

    May be transient (cleared by read-retry) or permanent (a dead page);
    the FTL retries up to its budget, scrubs correctable pages to fresh
    locations, and otherwise surfaces this error — never stale or wrong
    data."""


class ProgramFailError(MediaError):
    """A program operation failed to commit charge; the target page is
    unusable and its block must be retired after relocating live data."""


class EraseFailError(MediaError):
    """An erase operation failed; the block has grown bad and must be
    retired (its previous contents remain readable but it can never be
    reused)."""


class FtlError(DeviceError):
    """Base class for FTL protocol violations and state errors."""


class OutOfSpaceError(FtlError):
    """Raised when the FTL cannot find a free page even after garbage
    collection, i.e. the logical space is overcommitted (or the spare
    pool and free pool are both exhausted by grown bad blocks)."""


class UnmappedPageError(FtlError):
    """Raised when reading an LPN that has no physical mapping."""


class ShareError(FtlError):
    """Raised for invalid SHARE commands (bad range, overlap, unmapped
    source, or reverse-map capacity exhaustion that cannot be reconciled)."""


class DeviceBusyError(DeviceError):
    """The device rejected a command with transient backpressure.

    Models queue-full / firmware-busy NVMe status: the command was never
    executed and it is always safe (and expected) to retry after a
    backoff.  Injected by :class:`repro.sim.faults.DeviceBusy`."""


class CommandTimeoutError(DeviceError):
    """A command exceeded its completion deadline at the host boundary.

    The host cannot tell whether the device applied the command before
    the timeout, so retries must be idempotent (SHARE re-mapping a dst
    LPN onto the same src physical page is).  Injected by
    :class:`repro.sim.faults.CommandTimeout`."""


class CommandUnsupportedError(DeviceError):
    """The device rejected a command as unsupported or the handling
    firmware unit is hung.

    Sticky by nature: retrying does not help, so the host resilience
    layer fails fast and engines degrade to their classic two-phase
    paths.  Injected by :class:`repro.sim.faults.ShareOutage`."""


class PowerFailure(ReproError):
    """Injected power failure.

    Raised at a registered fault point to simulate sudden power loss; the
    test harness catches it, discards all volatile state, and restarts the
    stack from the persisted media image.
    """


class ResilienceError(ReproError):
    """Base class for failures surfaced by the host resilience layer.

    Raised by :class:`repro.host.resilience.ShareGuard` when a guarded
    device command could not be completed within policy — engines catch
    this one type to trigger their two-phase fallback paths.  The
    underlying :class:`DeviceError` (if any) is chained as
    ``__cause__``."""


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open: the command was not attempted.

    Fast-fail path — after repeated SHARE failures the breaker stops
    hammering a sick device and engines go straight to fallback until
    the recovery timeout elapses and a probe succeeds."""


class RetriesExhaustedError(ResilienceError):
    """A guarded command kept failing past the retry budget or deadline,
    or failed with a non-retryable :class:`DeviceError`."""

    def __init__(self, message: str, attempts: int = 1,
                 elapsed_us: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.elapsed_us = elapsed_us


class FileSystemError(ReproError):
    """Base class for host filesystem failures."""


class FileNotFound(FileSystemError):
    """Raised when opening or unlinking a path that does not exist."""


class FileExists(FileSystemError):
    """Raised when creating a path that already exists."""


class NoSpace(FileSystemError):
    """Raised when the filesystem has no free extents left."""


class IoctlError(FileSystemError):
    """Raised when a share ioctl cannot be translated to device LPNs."""


class EngineError(ReproError):
    """Base class for database-engine level errors."""


class TornPageError(EngineError):
    """Raised when a page checksum mismatch (torn write) is detected and no
    recovery copy exists."""


class RecoveryError(EngineError):
    """Raised when crash recovery cannot restore a consistent state."""


class ClusterError(ReproError):
    """Base class for sharded-tier failures (router, replication,
    failover)."""


class StaleEpochError(ClusterError):
    """A replication record from a superseded epoch was offered to the
    log or to a replica applier.

    Each promotion bumps the shard pair's epoch; a demoted primary (or a
    lagging applier holding pre-failover records) is fenced by this
    error so stale remaps are never replayed over post-failover state."""


class ShardUnavailableError(ClusterError):
    """The shard that owns a key has no healthy primary and promotion
    could not produce one (e.g. both devices of the pair are down)."""
