"""The chaos explorer: command faults at every SHARE site, plus power.

The power explorer (:mod:`repro.crashcheck.explorer`) sweeps *when* the
device dies and the media explorer (:mod:`repro.crashcheck.mediafaults`)
sweeps *how the chips fail*; this module sweeps the third axis — *how
the host→device command boundary fails* — and proves the resilience
layer (:mod:`repro.host.resilience`) actually carries the engines
through.  Same two-phase deterministic shape:

1. **Enumeration** — build the harness, enable command counting on the
   plan, run once with nothing armed.  That yields the number of SHARE
   commands the run issues (setup excluded, matching where injection
   arms).
2. **Injection** — for each SHARE command of each requested mode, build
   a *fresh* harness on a fresh plan, arm exactly one command fault
   targeted at that command, run, recover, and verify the full
   invariant set *plus* the guard-stats evidence that the degraded
   machinery ran.

Modes:

* ``share-timeout`` — a one-shot :class:`CommandTimeout` at every SHARE
  command, alternating between submission-rejected and the ambiguous
  applied-but-completion-lost shape (``after_apply``).  Retry must heal
  it: the run completes, zero loss, and the guards report retries.
* ``share-busy`` — a :class:`DeviceBusy` burst (two rejections, then
  clears) at every SHARE command.  Backoff-and-retry must ride it out.
* ``share-outage`` — a sticky :class:`ShareOutage` from every SHARE
  command onward, alternating unsupported/hung flavours.  Retrying
  never helps; every engine must complete its workload through its
  classic two-phase fallback, and the guards must report fallbacks.
* ``chaos+power`` — a sticky outage from the *first* SHARE command plus
  a power failure at a checkpoint of the resulting degraded run.  Every
  occurrence of a fallback-boundary checkpoint is included, the rest of
  the budget strides evenly over the remaining points.  This is the
  ``no_lost_fallback`` invariant: dying inside (or around) a fallback
  must lose nothing acknowledged.

Harnesses must expose ``guards()`` (see
:mod:`repro.crashcheck.workloads`): the sweep reads each guard's local
:class:`~repro.host.resilience.GuardStats`, which stay correct even
under ``NULL_TELEMETRY``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.crashcheck.explorer import sample_evenly
from repro.crashcheck.invariants import check_media
from repro.errors import DeviceError, PowerFailure
from repro.sim.faults import (CommandTimeout, DeviceBusy, FaultPlan,
                              PowerFailAfter, ShareOutage)

MODE_SHARE_TIMEOUT = "share-timeout"
MODE_SHARE_BUSY = "share-busy"
MODE_SHARE_OUTAGE = "share-outage"
MODE_CHAOS_POWER = "chaos+power"

#: Every chaos mode, in the order a full sweep executes them.
ALL_CHAOS_MODES = (MODE_SHARE_TIMEOUT, MODE_SHARE_BUSY, MODE_SHARE_OUTAGE,
                   MODE_CHAOS_POWER)

#: How many power points the combined mode explores beyond the
#: always-included fallback-boundary occurrences.
CHAOS_POWER_SAMPLES = 24

#: How many busy rejections the share-busy mode injects per site (must
#: stay under the default retry budget so the run can complete).
BUSY_REJECTIONS = 2


class ChaosOccurrence(NamedTuple):
    """One injection: a command fault targeting the nth SHARE command."""

    mode: str
    nth: int                         # 1-based, counted from arming
    flavor: Optional[str] = None     # timeout phase / outage error kind
    power_point: Optional[str] = None   # chaos+power mode only
    power_nth: int = 0


class ChaosResult(NamedTuple):
    """Verdict for one injected command fault."""

    mode: str
    nth: int
    flavor: Optional[str]
    power_point: Optional[str]
    power_nth: int
    fired: bool                      # did the armed fault actually trigger?
    crashed: bool                    # power failure (chaos+power mode)
    aborted: Optional[str]           # typed error class that ended run()
    retries: int                     # guard retries over the whole run
    fallbacks: int                   # guard fallbacks over the whole run
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_record(self, workload: str) -> Dict:
        """The JSONL report row."""
        return {
            "type": "chaoscheck",
            "workload": workload,
            "mode": self.mode,
            "nth": self.nth,
            "flavor": self.flavor,
            "power_point": self.power_point,
            "power_nth": self.power_nth,
            "fired": self.fired,
            "crashed": self.crashed,
            "aborted": self.aborted,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "ok": self.ok,
            "violations": list(self.violations),
        }


class ChaosReport(NamedTuple):
    """Aggregate of one chaos sweep."""

    workload: str
    modes: Tuple[str, ...]
    share_commands: int
    occurrences: Tuple[ChaosOccurrence, ...]
    results: Tuple[ChaosResult, ...]

    @property
    def failures(self) -> List[ChaosResult]:
        return [res for res in self.results if not res.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict:
        return {
            "type": "chaoscheck-summary",
            "workload": self.workload,
            "modes": list(self.modes),
            "share_commands": self.share_commands,
            "occurrences": len(self.occurrences),
            "explored": len(self.results),
            "fired": sum(1 for res in self.results if res.fired),
            "crashed": sum(1 for res in self.results if res.crashed),
            "aborted": sum(1 for res in self.results if res.aborted),
            "retries": sum(res.retries for res in self.results),
            "fallbacks": sum(res.fallbacks for res in self.results),
            "violations": sum(len(res.violations) for res in self.results),
            "ok": self.ok,
        }


def enumerate_share_commands(factory: Callable[[FaultPlan], object]) -> int:
    """Phase 1: one counted, fault-free run.  Returns the number of
    SHARE commands the workload issues after setup."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.commands.enable_counting()
    harness.run()
    return faults.commands.op_counts["share"]


def _fault_for(occurrence: ChaosOccurrence):
    if occurrence.mode == MODE_SHARE_TIMEOUT:
        return CommandTimeout("share", nth=occurrence.nth,
                              after_apply=occurrence.flavor == "complete")
    if occurrence.mode == MODE_SHARE_BUSY:
        return DeviceBusy("share", nth=occurrence.nth,
                          clears_after=BUSY_REJECTIONS)
    if occurrence.mode == MODE_SHARE_OUTAGE:
        return ShareOutage(nth=occurrence.nth, error=occurrence.flavor)
    if occurrence.mode == MODE_CHAOS_POWER:
        # The outage starts at the first SHARE so the whole degraded run
        # (every fallback) is on the table for the paired power failure.
        return ShareOutage(nth=1, error="unsupported")
    raise ValueError(f"unknown chaos sweep mode: {occurrence.mode!r}")


def _degraded_power_occurrences(factory: Callable[[FaultPlan], object],
                                samples: int) -> List[ChaosOccurrence]:
    """Enumerate the checkpoints of the *degraded* run (sticky outage
    from the first SHARE command) and pick the power-injection sites:
    every occurrence of a fallback-boundary point, plus an even stride
    over the rest of the trace up to ``samples`` extra sites."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.arm_command(ShareOutage(nth=1, error="unsupported"))
    faults.enable_trace()
    harness.run()
    counts: Dict[str, int] = {}
    boundary: List[Tuple[str, int]] = []
    rest: List[Tuple[str, int]] = []
    for point in faults.trace:
        counts[point] = counts.get(point, 0) + 1
        bucket = boundary if "fallback" in point else rest
        bucket.append((point, counts[point]))
    chosen = list(boundary)
    if samples > 0 and rest:
        chosen += sample_evenly(rest, samples)
    return [ChaosOccurrence(MODE_CHAOS_POWER, 1, "unsupported", point, nth)
            for point, nth in chosen]


def enumerate_chaos_occurrences(
        factory: Callable[[FaultPlan], object],
        modes: Tuple[str, ...] = ALL_CHAOS_MODES,
        share_commands: Optional[int] = None,
        power_samples: int = CHAOS_POWER_SAMPLES) -> List[ChaosOccurrence]:
    """Build the full injection list for the requested modes."""
    if share_commands is None:
        share_commands = enumerate_share_commands(factory)
    occurrences: List[ChaosOccurrence] = []
    for mode in modes:
        if mode == MODE_SHARE_TIMEOUT:
            # Alternate the phase so half the sites exercise the
            # ambiguous applied-but-completion-lost retry.
            occurrences += [
                ChaosOccurrence(mode, nth,
                                "complete" if nth % 2 == 0 else "submit")
                for nth in range(1, share_commands + 1)]
        elif mode == MODE_SHARE_BUSY:
            occurrences += [ChaosOccurrence(mode, nth)
                            for nth in range(1, share_commands + 1)]
        elif mode == MODE_SHARE_OUTAGE:
            occurrences += [
                ChaosOccurrence(mode, nth,
                                "timeout" if nth % 2 == 0 else "unsupported")
                for nth in range(1, share_commands + 1)]
        elif mode == MODE_CHAOS_POWER:
            occurrences += _degraded_power_occurrences(factory,
                                                       power_samples)
        else:
            raise ValueError(f"unknown chaos sweep mode: {mode!r}")
    return occurrences


def explore_chaos_occurrence(factory: Callable[[FaultPlan], object],
                             occurrence: ChaosOccurrence) -> ChaosResult:
    """Phase 2 for one site: inject one command fault, recover, verify."""
    faults = FaultPlan()
    harness = factory(faults)
    if not hasattr(harness, "guards"):
        raise TypeError(
            f"harness {type(harness).__name__} exposes no guards(); the "
            f"chaos sweep needs the resilience layer to verify")
    faults.arm_command(_fault_for(occurrence))
    if occurrence.power_point is not None:
        faults.arm(PowerFailAfter(occurrence.power_point,
                                  occurrence.power_nth))
    crashed = False
    aborted: Optional[str] = None
    try:
        harness.run()
    except PowerFailure:
        crashed = True
    except DeviceError as exc:
        aborted = type(exc).__name__
    # One-shot faults remove themselves when they trigger, so an emptied
    # fault set also means the injection fired.
    fired = (bool(faults.commands.fired_faults())
             or not faults.commands.armed())
    guards = harness.guards()
    retries = sum(guard.stats.retries for guard in guards)
    fallbacks = sum(guard.stats.fallbacks for guard in guards)
    faults.disarm()           # power fuses never fire during recovery
    faults.disarm_commands()  # ... and recovery sees a healthy device
    devices = harness.recover()
    violations: List[str] = []
    for device in devices:
        violations += check_media(device.name, device.ssd, device.max_refs)
    engine_violations = harness.check_engine()
    if occurrence.power_point is not None and "fallback" in occurrence.power_point:
        # Dying at the fallback boundary must lose nothing acknowledged.
        engine_violations = [f"no_lost_fallback: {violation}"
                             for violation in engine_violations]
    violations += engine_violations
    if occurrence.mode != MODE_CHAOS_POWER:
        # Command faults never reach the media: a typed abort here means
        # the resilience layer failed to absorb or degrade around it.
        if aborted is not None:
            violations.append(
                f"{occurrence.mode}: run aborted with {aborted} — the "
                f"resilience layer must absorb command faults")
        if fired and occurrence.mode in (MODE_SHARE_TIMEOUT,
                                         MODE_SHARE_BUSY) and not retries:
            violations.append(
                f"{occurrence.mode}: fault fired but no guard reported a "
                f"retry — the transient was not healed by the retry path")
        if fired and occurrence.mode == MODE_SHARE_OUTAGE and not fallbacks:
            violations.append(
                f"{occurrence.mode}: sticky outage fired but no guard "
                f"reported a fallback — who served the workload?")
    return ChaosResult(occurrence.mode, occurrence.nth, occurrence.flavor,
                       occurrence.power_point, occurrence.power_nth,
                       fired, crashed, aborted, retries, fallbacks,
                       tuple(violations))


def explore_chaos(factory: Callable[[FaultPlan], object], workload: str,
                  modes: Tuple[str, ...] = ALL_CHAOS_MODES,
                  occurrences: Optional[List[ChaosOccurrence]] = None,
                  max_points: Optional[int] = None,
                  sink=None,
                  progress: Optional[Callable[[int, int, ChaosResult], None]]
                  = None) -> ChaosReport:
    """The full chaos sweep: enumerate (unless given), then inject.

    ``max_points`` caps the sweep for CI smoke runs by striding evenly
    across the occurrence list (not truncating it), so every mode keeps
    coverage under a budget.  ``sink`` is any telemetry sink
    (``emit(dict)``).
    """
    share_commands = enumerate_share_commands(factory)
    if occurrences is None:
        occurrences = enumerate_chaos_occurrences(
            factory, modes, share_commands=share_commands)
    explored = occurrences
    if max_points is not None:
        explored = sample_evenly(occurrences, max_points)
    results: List[ChaosResult] = []
    for index, occurrence in enumerate(explored):
        result = explore_chaos_occurrence(factory, occurrence)
        results.append(result)
        if sink is not None:
            sink.emit(result.as_record(workload))
        if progress is not None:
            progress(index + 1, len(explored), result)
    report = ChaosReport(workload, tuple(modes), share_commands,
                         tuple(occurrences), tuple(results))
    if sink is not None:
        sink.emit(report.summary())
    return report
