"""The media-fault explorer: enumerate chip operations, inject, verify.

The power-failure explorer (:mod:`repro.crashcheck.explorer`) sweeps
*when* the device dies; this module sweeps *how the media itself fails*.
The shape is the same two-phase deterministic sweep:

1. **Enumeration** — build the harness, enable media-operation counting
   on the plan, run the workload once with nothing armed.  That yields
   the total number of read / program / erase operations the run issues
   (setup excluded, matching where injection arms).
2. **Injection** — for each operation of each requested mode, build a
   *fresh* harness on a fresh plan, arm exactly one media fault targeted
   at that operation, run, recover, and verify the full invariant set.

Modes:

* ``read-retry`` — a transient :class:`ReadFault` (one failed attempt,
  then clears) at every read site.  Firmware read-retry must heal it:
  the run must complete, with zero loss.
* ``program-fail`` — a one-shot :class:`ProgramFault` at every program
  site.  The FTL must re-program to a fresh page and retire the block;
  acked writes survive.
* ``erase-fail`` — a sticky :class:`EraseFault` at every erase site.
  GC must retire the block instead of retrying forever.
* ``uncorrectable`` — a sticky dead-page :class:`ReadFault` at every
  read site, *kept armed through recovery*.  The run may abort with a
  typed :class:`MediaError`; afterwards every acked LPN must read
  either its exact value or a typed error — never silently wrong data.
  Only meaningful on the raw ``ftl-basic`` harness, whose oracle this
  module checks directly (the engine harnesses assume readable media).
* ``power+read`` — a transient read fault paired with a power failure
  at a sampled checkpoint occurrence: the degraded-and-then-dying case.

A typed device-error abort (e.g. ``OutOfSpaceError`` after retiring a
block on a device with no spare pool) is *recorded*, not condemned —
the contract is "fail typed, lose nothing acknowledged", and the
recovery-side invariants still run against the persisted media.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.crashcheck.explorer import (Occurrence, enumerate_occurrences,
                                       sample_evenly)
from repro.crashcheck.invariants import check_media
from repro.errors import DeviceError, MediaError, PowerFailure
from repro.sim.faults import (EraseFault, FaultPlan, PowerFailAfter,
                              ProgramFault, ReadFault)

MODE_READ_RETRY = "read-retry"
MODE_PROGRAM_FAIL = "program-fail"
MODE_ERASE_FAIL = "erase-fail"
MODE_UNCORRECTABLE = "uncorrectable"
MODE_POWER_READ = "power+read"

#: Every sweep mode, in the order a full run executes them.
ALL_MODES = (MODE_READ_RETRY, MODE_PROGRAM_FAIL, MODE_ERASE_FAIL,
             MODE_UNCORRECTABLE, MODE_POWER_READ)

#: Modes applicable to any workload harness.
GENERIC_MODES = (MODE_READ_RETRY, MODE_PROGRAM_FAIL, MODE_ERASE_FAIL,
                 MODE_POWER_READ)

#: How many power occurrences the combined mode samples (strided evenly
#: over the enumerated power points, each paired with a distinct read op).
POWER_READ_SAMPLES = 24

#: Co-prime stride used to spread the paired read-fault targets across
#: the read-operation space deterministically.
_READ_STRIDE = 37


class MediaOccurrence(NamedTuple):
    """One injection: a fault mode targeting the nth chip operation."""

    mode: str
    op: str                          # "read" | "program" | "erase"
    nth: int                         # 1-based, counted from arming
    power_point: Optional[str] = None   # power+read mode only
    power_nth: int = 0


class MediaResult(NamedTuple):
    """Verdict for one injected media fault."""

    mode: str
    op: str
    nth: int
    power_point: Optional[str]
    power_nth: int
    fired: bool                      # did the armed fault actually trigger?
    crashed: bool                    # power failure (power+read mode)
    aborted: Optional[str]           # typed error class that ended run()
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_record(self, workload: str) -> Dict:
        """The JSONL report row."""
        return {
            "type": "mediacheck",
            "workload": workload,
            "mode": self.mode,
            "op": self.op,
            "nth": self.nth,
            "power_point": self.power_point,
            "power_nth": self.power_nth,
            "fired": self.fired,
            "crashed": self.crashed,
            "aborted": self.aborted,
            "ok": self.ok,
            "violations": list(self.violations),
        }


class MediaReport(NamedTuple):
    """Aggregate of one media-fault sweep."""

    workload: str
    modes: Tuple[str, ...]
    op_counts: Dict[str, int]
    occurrences: Tuple[MediaOccurrence, ...]
    results: Tuple[MediaResult, ...]

    @property
    def failures(self) -> List[MediaResult]:
        return [res for res in self.results if not res.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict:
        return {
            "type": "mediacheck-summary",
            "workload": self.workload,
            "modes": list(self.modes),
            "op_counts": dict(self.op_counts),
            "occurrences": len(self.occurrences),
            "explored": len(self.results),
            "fired": sum(1 for res in self.results if res.fired),
            "aborted": sum(1 for res in self.results if res.aborted),
            "crashed": sum(1 for res in self.results if res.crashed),
            "violations": sum(len(res.violations) for res in self.results),
            "ok": self.ok,
        }


def enumerate_media_ops(factory: Callable[[FaultPlan], object]
                        ) -> Dict[str, int]:
    """Phase 1: one counted, fault-free run.  Returns the number of
    read / program / erase operations the workload issues after setup."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.media.enable_counting()
    harness.run()
    return dict(faults.media.op_counts)


def _fault_for(occurrence: MediaOccurrence):
    if occurrence.mode in (MODE_READ_RETRY, MODE_POWER_READ):
        return ReadFault(nth=occurrence.nth, retries_to_clear=1)
    if occurrence.mode == MODE_PROGRAM_FAIL:
        return ProgramFault(nth=occurrence.nth)
    if occurrence.mode == MODE_ERASE_FAIL:
        return EraseFault(nth=occurrence.nth)
    if occurrence.mode == MODE_UNCORRECTABLE:
        return ReadFault(nth=occurrence.nth)   # sticky dead page
    raise ValueError(f"unknown media sweep mode: {occurrence.mode!r}")


def enumerate_media_occurrences(
        factory: Callable[[FaultPlan], object],
        modes: Tuple[str, ...] = GENERIC_MODES,
        op_counts: Optional[Dict[str, int]] = None,
        power_samples: int = POWER_READ_SAMPLES) -> List[MediaOccurrence]:
    """Build the full injection list for the requested modes."""
    if op_counts is None:
        op_counts = enumerate_media_ops(factory)
    occurrences: List[MediaOccurrence] = []
    per_mode_op = {MODE_READ_RETRY: "read", MODE_PROGRAM_FAIL: "program",
                   MODE_ERASE_FAIL: "erase", MODE_UNCORRECTABLE: "read"}
    for mode in modes:
        if mode == MODE_POWER_READ:
            occurrences += _power_read_occurrences(factory, op_counts,
                                                   power_samples)
            continue
        op = per_mode_op[mode]
        occurrences += [MediaOccurrence(mode, op, nth)
                        for nth in range(1, op_counts[op] + 1)]
    return occurrences


def _power_read_occurrences(factory: Callable[[FaultPlan], object],
                            op_counts: Dict[str, int],
                            samples: int) -> List[MediaOccurrence]:
    """Deterministically pair sampled power-failure sites with read
    faults: power occurrences strided evenly, read targets strided by a
    co-prime so the pairs cover both spaces."""
    reads = op_counts.get("read", 0)
    if reads == 0 or samples <= 0:
        return []
    power = enumerate_occurrences(factory)
    if not power:
        return []
    chosen = sample_evenly(power, samples)
    return [
        MediaOccurrence(MODE_POWER_READ, "read",
                        (index * _READ_STRIDE) % reads + 1,
                        occ.point, occ.nth)
        for index, occ in enumerate(chosen)
    ]


def _typed_or_correct(harness) -> List[str]:
    """The degraded-device contract for the raw ftl-basic harness: every
    acked LPN outside the interrupted operation must read its exact
    value or raise a typed :class:`MediaError` — never wrong data."""
    violations: List[str] = []
    ftl = harness.ssd.ftl
    unacked = harness.faults.unacked_op()
    ambiguous = set(unacked.lpns) if unacked is not None else set()
    for lpn, expected in sorted(harness.durable.items()):
        if lpn in ambiguous:
            continue
        if not ftl.is_mapped(lpn):
            violations.append(
                f"ftl: acked LPN {lpn} lost under media fault "
                f"(expected {expected!r})")
            continue
        try:
            value = ftl.read(lpn)
        except MediaError:
            continue   # a typed error IS the contract for a dead page
        if value != expected:
            violations.append(
                f"ftl: acked LPN {lpn} silently corrupted under media "
                f"fault: reads {value!r}, expected {expected!r}")
    return violations


def explore_media_occurrence(factory: Callable[[FaultPlan], object],
                             occurrence: MediaOccurrence) -> MediaResult:
    """Phase 2 for one site: inject one media fault, recover, verify."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.arm_media(_fault_for(occurrence))
    if occurrence.power_point is not None:
        faults.arm(PowerFailAfter(occurrence.power_point,
                                  occurrence.power_nth))
    crashed = False
    aborted: Optional[str] = None
    try:
        harness.run()
    except PowerFailure:
        crashed = True
    except (MediaError, DeviceError) as exc:
        aborted = type(exc).__name__
    # Transient and one-shot faults remove themselves when they trigger,
    # so an emptied fault set also means the injection fired.
    fired = bool(faults.media.fired_faults()) or not faults.media.armed()
    faults.disarm()   # power fuses never fire during recovery
    if occurrence.mode != MODE_UNCORRECTABLE:
        faults.disarm_media()
    devices = harness.recover()
    violations: List[str] = []
    for device in devices:
        violations += check_media(device.name, device.ssd, device.max_refs)
    if occurrence.mode == MODE_UNCORRECTABLE:
        violations += _typed_or_correct(harness)
    else:
        if aborted is not None and occurrence.mode == MODE_READ_RETRY:
            violations.append(
                f"{occurrence.mode}: run aborted with {aborted} — a "
                f"transient read fault must be healed by read-retry")
        violations += harness.check_engine()
    return MediaResult(occurrence.mode, occurrence.op, occurrence.nth,
                       occurrence.power_point, occurrence.power_nth,
                       fired, crashed, aborted, tuple(violations))


def explore_media(factory: Callable[[FaultPlan], object], workload: str,
                  modes: Tuple[str, ...] = GENERIC_MODES,
                  occurrences: Optional[List[MediaOccurrence]] = None,
                  max_points: Optional[int] = None,
                  sink=None,
                  progress: Optional[Callable[[int, int, MediaResult], None]]
                  = None) -> MediaReport:
    """The full media-fault sweep: enumerate (unless given), then inject.

    ``max_points`` caps the sweep for CI smoke runs by striding evenly
    across the occurrence list (not truncating it), so every mode and
    every phase of the workload keeps coverage under a budget.
    ``sink`` is any telemetry sink (``emit(dict)``).
    """
    op_counts = enumerate_media_ops(factory)
    if occurrences is None:
        occurrences = enumerate_media_occurrences(factory, modes,
                                                  op_counts=op_counts)
    explored = occurrences
    if max_points is not None:
        explored = sample_evenly(occurrences, max_points)
    results: List[MediaResult] = []
    for index, occurrence in enumerate(explored):
        result = explore_media_occurrence(factory, occurrence)
        results.append(result)
        if sink is not None:
            sink.emit(result.as_record(workload))
        if progress is not None:
            progress(index + 1, len(explored), result)
    report = MediaReport(workload, tuple(modes), op_counts,
                         tuple(occurrences), tuple(results))
    if sink is not None:
        sink.emit(report.summary())
    return report
