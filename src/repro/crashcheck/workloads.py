"""Crash-explorer workload harnesses.

Each harness owns its devices and engines, runs one small deterministic
workload while tracking an oracle of *acknowledged* state, recovers after
a (possibly injected) power failure, and checks its engine-level
contract: every key/row/block must read back as its last-acknowledged
value, or — only where an operation was interrupted mid-flight — as the
in-flight value.  Determinism matters doubly here: the explorer's
enumeration run and every injection run must reach the same checkpoints
in the same order, so harnesses take no input other than the fault plan
and seed their own RNGs.

The harness protocol the explorer relies on:

* ``Harness(faults)`` — full setup (devices, files, schemas).  Setup may
  hit fault points; the explorer only enumerates points reached by
  ``run()``.
* ``run()`` — the workload.  May raise :class:`PowerFailure`.
* ``recover()`` — discard volatile state, recover every device from its
  persisted media, and return the ``DeviceState`` list for media-level
  invariant checks.  Must not raise; engine recovery failures are
  reported through ``check_engine``.
* ``check_engine()`` — engine-level invariant violations as strings.
* ``guards()`` (optional) — the :class:`~repro.host.resilience.ShareGuard`
  instances the harness's engines route SHARE through.  Harnesses that
  expose it can be swept by the chaos explorer
  (:mod:`repro.crashcheck.chaosfaults`), which reads the guards' local
  stats to prove retries and fallbacks actually ran.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional

from repro.couchstore.compaction import abandon_partial, compact
from repro.couchstore.engine import CommitMode, CouchConfig, CouchStore
from repro.errors import DeviceError, PowerFailure, ReproError, ShareError
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FAST_TIMING
from repro.ftl.config import FtlConfig
from repro.ftl.mapping import resolve_l2p_strategy
from repro.host.datajournal import CheckpointMode, DataJournalingFs
from repro.host.filesystem import FsConfig, HostFs
from repro.innodb.engine import FlushMode, InnoDBConfig, InnoDBEngine
from repro.innodb.recovery import recover as innodb_recover
from repro.postgres.engine import (PostgresConfig, PostgresEngine,
                                   recover_row_state)
from repro.sim.clock import SimClock
from repro.sim.faults import FaultPlan
from repro.sqlitelike import JournalMode, SqliteLikeDb
from repro.ssd.device import Ssd, SsdConfig

#: Sentinel marking an LPN the model knows was trimmed (its post-crash
#: content is "unmapped or stale" until a flush barrier acks).
TRIMMED = ("trimmed",)


class DeviceState(NamedTuple):
    """One recovered device plus its workload-specific sharing bound."""

    name: str
    ssd: Ssd
    max_refs: int


def per_key_violations(label: str, recovered: Dict, durable: Dict,
                       inflight: Optional[Dict]) -> List[str]:
    """The per-key read-your-acknowledged-writes contract.

    Every key must read as its last-acknowledged value or (only while an
    operation was interrupted) its in-flight value — nothing else, no
    torn mixes, no phantoms."""
    violations = []
    every_key = set(durable) | set(recovered)
    if inflight is not None:
        every_key |= set(inflight)
    for key in sorted(every_key, key=repr):
        allowed = {repr(durable.get(key))}
        if inflight is not None:
            allowed.add(repr(inflight.get(key)))
        if repr(recovered.get(key)) not in allowed:
            violations.append(
                f"{label}: key {key!r} reads {recovered.get(key)!r}, "
                f"expected one of {sorted(allowed)}")
    return violations


def _small_ssd(faults: FaultPlan, clock: SimClock,
               block_count: int = 48, pages_per_block: int = 16,
               overprovision: float = 0.2, map_blocks: int = 4,
               share_entries: int = 64, gc_low_water: int = 3,
               gc_high_water: int = 6, spare_blocks: int = 0,
               queue_depth: int = 1, channel_count: int = 1,
               name: str = "ssd", events=None) -> Ssd:
    geometry = FlashGeometry(page_size=4096, pages_per_block=pages_per_block,
                             block_count=block_count,
                             overprovision_ratio=overprovision,
                             channel_count=channel_count)
    config = SsdConfig(geometry=geometry, timing=FAST_TIMING,
                       ftl=FtlConfig(map_block_count=map_blocks,
                                     share_table_entries=share_entries,
                                     gc_low_water=gc_low_water,
                                     gc_high_water=gc_high_water,
                                     spare_block_count=spare_blocks,
                                     l2p_strategy=resolve_l2p_strategy()),
                       queue_depth=queue_depth)
    return Ssd(clock, config, faults=faults, name=name, events=events)


# --------------------------------------------------------------- ftl-basic


class FtlBasicHarness:
    """Raw device commands: writes, shares, trims, atomic writes, flushes.

    This is the layer where the ack-boundary journal is authoritative:
    the oracle is keyed off :meth:`FaultPlan.unacked_op`, exactly like
    the strict property test."""

    name = "ftl-basic"

    def __init__(self, faults: FaultPlan) -> None:
        self.faults = faults
        self.clock = SimClock()
        # Small enough that the run's churn drives GC (so erase sites
        # exist for the media-fault sweep) while staying far from full.
        self.ssd = _small_ssd(faults, self.clock, block_count=18,
                              overprovision=0.2, share_entries=16,
                              spare_blocks=2)
        self.durable: Dict[int, object] = {}
        self.inflight: Dict[int, object] = {}
        self.crashed = False
        self.aborted = False   # run ended in a typed device error, not power
        self._span = 48
        self._share_members: set = set()

    def run(self) -> None:
        rng = random.Random(0x5EED)
        ssd = self.ssd
        try:
            for step in range(230):
                roll = rng.random()
                self.inflight = {}
                if roll < 0.45:
                    lpn = rng.randrange(self._span)
                    value = ("d", step, lpn)
                    self.inflight = {lpn: value}
                    ssd.write(lpn, value)
                    self.durable[lpn] = value
                    self._share_members.discard(lpn)
                elif roll < 0.58:
                    # Share from a source not already in a share pair so
                    # the 2-reference bound stays the workload's promise.
                    sources = [l for l in sorted(self.durable)
                               if l not in self._share_members]
                    if not sources:
                        continue
                    src = rng.choice(sources)
                    dst = rng.randrange(self._span)
                    if dst == src or dst in self._share_members:
                        continue
                    self.inflight = {dst: self.durable[src]}
                    try:
                        ssd.share(dst, src, 1)
                    except ShareError:
                        self.inflight = {}
                        continue
                    self.durable[dst] = self.durable[src]
                    self._share_members.update((src, dst))
                elif roll < 0.68:
                    lpn = rng.randrange(self._span)
                    if lpn not in self.durable:
                        continue
                    self.inflight = {lpn: TRIMMED}
                    ssd.trim(lpn)
                    # Acked trims are buffered until a flush barrier, so
                    # the strict model simply stops tracking the LPN.
                    self.durable.pop(lpn, None)
                    self._share_members.discard(lpn)
                elif roll < 0.80:
                    base = rng.randrange(self._span - 3)
                    items = [(base + i, ("a", step, base + i))
                             for i in range(3)]
                    self.inflight = {lpn: value for lpn, value in items}
                    ssd.write_atomic(items)
                    for lpn, value in items:
                        self.durable[lpn] = value
                        self._share_members.discard(lpn)
                elif roll < 0.93:
                    # Host read-back: gives the media-fault sweep read
                    # sites to target (and is how transient read errors
                    # get healed by scrubbing mid-run).
                    if not self.durable:
                        continue
                    lpn = rng.choice(sorted(self.durable))
                    ssd.read(lpn)
                else:
                    self.inflight = {}
                    ssd.flush()
                self.inflight = {}
        except PowerFailure:
            self.crashed = True
            raise
        except DeviceError:
            # A media-degraded device may end the run with a typed error
            # (never wrong data).  The interrupted op stays unacked, so
            # check_engine treats its LPNs as ambiguous, like a crash.
            self.aborted = True
            raise

    def recover(self) -> List[DeviceState]:
        self.ssd.power_cycle()
        return [DeviceState("ftl", self.ssd, 2)]

    def check_engine(self) -> List[str]:
        violations: List[str] = []
        ftl = self.ssd.ftl
        unacked = self.faults.unacked_op()
        if self.crashed and unacked is None:
            violations.append(
                "ftl: crash escaped run() without an operation record — "
                "a checkpoint fired outside every ack scope")
        if not self.crashed and not self.aborted and unacked is not None:
            violations.append(
                f"ftl: no crash, yet an operation is recorded unacked: "
                f"{unacked!r}")
        ambiguous = set(unacked.lpns) if unacked is not None else set()
        for lpn, expected in sorted(self.durable.items()):
            if lpn not in ambiguous:
                # The strict contract: acknowledged writes MUST survive.
                if not ftl.is_mapped(lpn):
                    violations.append(
                        f"ftl: acked LPN {lpn} lost (expected {expected!r})")
                elif ftl.read(lpn) != expected:
                    violations.append(
                        f"ftl: acked LPN {lpn} reads {ftl.read(lpn)!r}, "
                        f"expected {expected!r}")
                continue
            pending = self.inflight.get(lpn)
            if pending is TRIMMED:
                if ftl.is_mapped(lpn) and ftl.read(lpn) != expected:
                    violations.append(
                        f"ftl: LPN {lpn} under interrupted trim reads "
                        f"{ftl.read(lpn)!r}, expected {expected!r} or "
                        f"unmapped")
            elif pending is None:
                if not ftl.is_mapped(lpn) or ftl.read(lpn) != expected:
                    violations.append(
                        f"ftl: acked LPN {lpn} (untouched by the "
                        f"interrupted op) must read {expected!r}")
            else:
                if not ftl.is_mapped(lpn):
                    violations.append(
                        f"ftl: LPN {lpn} lost under interrupted write")
                elif ftl.read(lpn) not in (expected, pending):
                    violations.append(
                        f"ftl: LPN {lpn} reads {ftl.read(lpn)!r}, expected "
                        f"{expected!r} or {pending!r}")
        return violations


# --------------------------------------------------------------- ftl-queued


class QueuedFtlHarness:
    """Raw device commands issued by concurrent closed-loop clients
    through a deep command queue over two channels.

    This is the ack-boundary contract under *concurrency*: commands from
    different clients overlap inside the device, completion events (and
    the deferred ``*.ack`` checkpoints the journal records) fire in
    device-completion order, and a crash may strand several in-flight
    commands at once.  The oracle therefore reasons per-LPN over the
    full unacked *set* — :meth:`FaultPlan.unacked_ops` — instead of the
    single interrupted operation the serial harnesses assume.

    Each client owns a disjoint LPN range, so the submission order of
    one LPN's writes is one session's order and the last-writer is
    well defined even while commands interleave.
    """

    name = "ftl-queued"

    #: clients, and the LPN span each one owns
    CLIENTS = 3
    SPAN = 16

    def __init__(self, faults: FaultPlan) -> None:
        self.faults = faults
        self.clock = SimClock()
        self.ssd = _small_ssd(faults, self.clock, block_count=20,
                              overprovision=0.2, share_entries=16,
                              spare_blocks=2, queue_depth=4,
                              channel_count=2)
        # Per-LPN submission history: every value ever submitted, in
        # session (= per-LPN completion) order.
        self.history: Dict[int, List[object]] = {}
        self.crashed = False
        self.aborted = False
        # LPNs currently in a share pair — never reused as a source or
        # destination, so the 2-reference media bound stays a promise
        # this workload keeps (as in ftl-basic).
        self._share_members: set = set()

    def run(self) -> None:
        from repro.ssd.ncq import DeviceSession, issuing
        rng = random.Random(0x0E0)
        ssd = self.ssd
        sessions = [DeviceSession(client, self.clock.now_us)
                    for client in range(self.CLIENTS)]
        try:
            for step in range(180):
                client = step % self.CLIENTS
                session = sessions[client]
                base = client * self.SPAN
                roll = rng.random()
                with issuing(session, ssd):
                    if roll < 0.62:
                        lpn = base + rng.randrange(self.SPAN)
                        value = ("q", step, lpn)
                        # History records the *submission* (before the
                        # command runs): a crash mid-command leaves this
                        # value as the LPN's trailing unacked entry.
                        self.history.setdefault(lpn, []).append(value)
                        self._share_members.discard(lpn)
                        ssd.write(lpn, value)
                    elif roll < 0.82:
                        # Share within the client's own range (so the
                        # copied value is this session's latest) and
                        # never from or onto an existing pair member.
                        owned = [l for l in sorted(self.history)
                                 if base <= l < base + self.SPAN
                                 and l not in self._share_members]
                        if not owned:
                            continue
                        src = rng.choice(owned)
                        dst = base + rng.randrange(self.SPAN)
                        if dst == src or dst in self._share_members:
                            continue
                        self.history.setdefault(dst, []).append(
                            self.history[src][-1])
                        self._share_members.update((src, dst))
                        try:
                            ssd.share(dst, src, 1)
                        except ShareError:
                            self.history[dst].pop()
                            self._share_members.difference_update(
                                (src, dst))
                            continue
                    elif roll < 0.94:
                        owned = [l for l in sorted(self.history)
                                 if base <= l < base + self.SPAN]
                        if not owned:
                            continue
                        ssd.read(rng.choice(owned))
                    else:
                        ssd.flush()
                ssd.poll(session.now_us)
            ssd.drain()
        except PowerFailure:
            self.crashed = True
            raise
        except DeviceError:
            self.aborted = True
            raise

    def recover(self) -> List[DeviceState]:
        self.ssd.power_cycle()
        return [DeviceState("ftl-queued", self.ssd, 2)]

    def check_engine(self) -> List[str]:
        violations: List[str] = []
        ftl = self.ssd.ftl
        unacked = self.faults.unacked_ops()
        if not self.crashed and not self.aborted and unacked:
            violations.append(
                f"ftl-queued: no crash, yet {len(unacked)} operations are "
                f"recorded unacked: {unacked!r}")
        # How many of each LPN's trailing submissions never acked.  A
        # write journals its one LPN; a share journals its destination.
        unacked_count: Dict[int, int] = {}
        for record in unacked:
            for lpn in record.lpns:
                unacked_count[lpn] = unacked_count.get(lpn, 0) + 1
        for lpn, values in sorted(self.history.items()):
            pending = min(unacked_count.get(lpn, 0), len(values))
            if pending == 0:
                # Every submission acked: the strict contract applies.
                expected = values[-1]
                if not ftl.is_mapped(lpn):
                    violations.append(
                        f"ftl-queued: acked LPN {lpn} lost "
                        f"(expected {expected!r})")
                elif ftl.read(lpn) != expected:
                    violations.append(
                        f"ftl-queued: acked LPN {lpn} reads "
                        f"{ftl.read(lpn)!r}, expected {expected!r}")
                continue
            # The trailing ``pending`` submissions are ambiguous; the
            # value before them is the last one known acked.
            allowed = {repr(v) for v in values[-pending:]}
            acked_prefix = values[:-pending]
            if acked_prefix:
                allowed.add(repr(acked_prefix[-1]))
                if not ftl.is_mapped(lpn):
                    violations.append(
                        f"ftl-queued: LPN {lpn} lost under interrupted "
                        f"rewrite (had acked value "
                        f"{acked_prefix[-1]!r})")
                    continue
            elif not ftl.is_mapped(lpn):
                continue   # first-ever write interrupted: unmapped is fine
            if repr(ftl.read(lpn)) not in allowed:
                violations.append(
                    f"ftl-queued: LPN {lpn} reads {ftl.read(lpn)!r}, "
                    f"expected one of {sorted(allowed)}")
        return violations


# -------------------------------------------------------------- couch-small


class CouchHarness:
    """Couchstore in SHARE mode: commits plus one mid-run compaction."""

    name = "couch-small"

    def __init__(self, faults: FaultPlan) -> None:
        self.faults = faults
        self.clock = SimClock()
        self.ssd = _small_ssd(faults, self.clock, block_count=64,
                              pages_per_block=16, overprovision=0.2,
                              spare_blocks=2)
        self.fs = HostFs(self.ssd, FsConfig(journal_blocks=8))
        self.config = CouchConfig(leaf_capacity=3, internal_fanout=4,
                                  prealloc_blocks=32)
        self.store = CouchStore(self.fs, "/db", CommitMode.SHARE,
                                self.config)
        self.durable: Dict = {}
        self.inflight: Optional[Dict] = None
        self.reopened: Optional[CouchStore] = None
        self.recovery_errors: List[str] = []

    def _batch(self, rng: random.Random, model: Dict, size: int,
               step: int) -> None:
        for __ in range(size):
            key = rng.randrange(24)
            if rng.random() < 0.8 or key not in model:
                value = ("doc", step, key, rng.randrange(1000))
                self.store.set(key, value)
                model[key] = value
            else:
                self.store.delete(key)
                model.pop(key, None)

    def run(self) -> None:
        rng = random.Random(0xC0C0)
        model = dict(self.durable)
        for step in range(7):
            self._batch(rng, model, 5, step)
            self.inflight = dict(model)
            self.store.commit()
            self.durable = dict(model)
            self.inflight = None
            if step == 3:
                self.store, __ = compact(self.store, self.clock)

    def guards(self):
        # Compaction hands the same guard to the compacted store, so this
        # stays correct across the mid-run compact().
        return [self.store.resilience]

    def recover(self) -> List[DeviceState]:
        self.ssd.power_cycle()
        try:
            self.reopened = CouchStore.reopen(self.fs, "/db",
                                              CommitMode.SHARE, self.config)
            abandon_partial(self.reopened)
        except ReproError as exc:  # a reopen failure IS the finding
            self.recovery_errors.append(f"couch: reopen failed: {exc!r}")
        return [DeviceState("couch", self.ssd, 3)]

    def check_engine(self) -> List[str]:
        violations = list(self.recovery_errors)
        if self.reopened is None:
            return violations
        recovered = dict(self.reopened.items())
        violations += per_key_violations("couch", recovered, self.durable,
                                         self.inflight)
        try:
            self.reopened.set(999, "post-crash")
            self.reopened.commit()
            if self.reopened.get(999) != "post-crash":
                violations.append("couch: post-recovery write not readable")
        except ReproError as exc:
            violations.append(f"couch: store unusable after recovery: "
                              f"{exc!r}")
        return violations


# ---------------------------------------------------------- linkbench-small


class LinkbenchHarness:
    """The acceptance workload: an InnoDB linkbench-style graph store in
    SHARE mode (tight over-provisioning, so GC runs under the SHARE
    traffic) interleaved with a couchstore document store — three devices
    behind one fault plan, so every layer's points land in one sweep."""

    name = "linkbench-small"

    def __init__(self, faults: FaultPlan) -> None:
        self.faults = faults
        self.clock = SimClock()
        # A small data device with tight over-provisioning and aggressive
        # watermarks: the flush churn drains its free pool, so GC runs
        # underneath the SHARE remaps (the interaction the sweep must
        # cover).
        self.data_ssd = _small_ssd(faults, self.clock, block_count=20,
                                   pages_per_block=8, overprovision=0.1,
                                   map_blocks=3, gc_low_water=8,
                                   gc_high_water=10)
        self.log_ssd = _small_ssd(faults, self.clock, block_count=32,
                                  pages_per_block=16, overprovision=0.25)
        self.couch_ssd = _small_ssd(faults, self.clock, block_count=64,
                                    pages_per_block=16, overprovision=0.2,
                                    spare_blocks=2)
        self.iconfig = InnoDBConfig(buffer_pool_pages=32,
                                    flush_batch_pages=8, dwb_pages=8,
                                    leaf_capacity=8, internal_fanout=8,
                                    dirty_flush_threshold=0.25,
                                    file_grow_chunk=16)
        self.fs_config = FsConfig(journal_blocks=8)
        self.engine = InnoDBEngine(FlushMode.SHARE, self.data_ssd,
                                   self.log_ssd, self.iconfig,
                                   faults=faults, fs_config=self.fs_config)
        self.engine.create_table("node")
        self.engine.create_table("link")
        self.couch_fs = HostFs(self.couch_ssd, FsConfig(journal_blocks=8))
        self.couch_config = CouchConfig(leaf_capacity=3, internal_fanout=4,
                                        prealloc_blocks=32)
        self.store = CouchStore(self.couch_fs, "/db", CommitMode.SHARE,
                                self.couch_config)
        self.idurable: Dict[str, Dict] = {"node": {}, "link": {}}
        self.iinflight: Optional[Dict[str, Dict]] = None
        self.cdurable: Dict = {}
        self.cinflight: Optional[Dict] = None
        self.rec_engine = None
        self.rec_report = None
        self.rec_couch = None
        self.recovery_errors: List[str] = []

    # one linkbench-ish transaction: touch nodes and the links between them
    def _txn_ops(self, rng: random.Random, step: int):
        ops = []
        for __ in range(rng.randrange(3, 7)):
            kind = rng.random()
            node = rng.randrange(64)
            if kind < 0.5:
                ops.append(("node", node, ("n", step, rng.randrange(1000))))
            elif kind < 0.85:
                other = rng.randrange(64)
                ops.append(("link", (node, other),
                            ("l", step, rng.randrange(1000))))
            else:
                other = rng.randrange(64)
                ops.append(("link", (node, other), None))   # delete
        return ops

    def run(self) -> None:
        rng = random.Random(0x11B)
        cmodel = dict(self.cdurable)
        for step in range(26):
            # InnoDB transaction
            ops = self._txn_ops(rng, step)
            pending = {"node": dict(self.idurable["node"]),
                       "link": dict(self.idurable["link"])}
            for table, key, value in ops:
                if value is None:
                    pending[table].pop(key, None)
                else:
                    pending[table][key] = value
            self.iinflight = pending
            with self.engine.transaction() as txn:
                for table, key, value in ops:
                    if value is None:
                        txn.delete(table, key)
                    else:
                        txn.put(table, key, value)
            self.idurable = {t: dict(pending[t]) for t in pending}
            self.iinflight = None
            # Couchstore batch every third step
            if step % 3 == 0:
                for __ in range(4):
                    key = rng.randrange(20)
                    value = ("doc", step, key, rng.randrange(1000))
                    self.store.set(key, value)
                    cmodel[key] = value
                self.cinflight = dict(cmodel)
                self.store.commit()
                self.cdurable = dict(cmodel)
                self.cinflight = None
            if step == 7:
                self.store, __ = compact(self.store, self.clock)
            if step % 2 == 1:
                self.engine.checkpoint()

    def guards(self):
        return [self.engine.dwb.resilience, self.store.resilience]

    def recover(self) -> List[DeviceState]:
        try:
            self.rec_engine, self.rec_report = innodb_recover(
                FlushMode.SHARE, self.data_ssd, self.log_ssd, self.iconfig,
                fs_config=self.fs_config)
        except ReproError as exc:
            self.recovery_errors.append(f"innodb: recovery failed: {exc!r}")
        self.couch_ssd.power_cycle()
        try:
            self.rec_couch = CouchStore.reopen(self.couch_fs, "/db",
                                               CommitMode.SHARE,
                                               self.couch_config)
            abandon_partial(self.rec_couch)
        except ReproError as exc:
            self.recovery_errors.append(f"couch: reopen failed: {exc!r}")
        return [DeviceState("innodb-data", self.data_ssd, 2),
                DeviceState("innodb-log", self.log_ssd, 2),
                DeviceState("couch", self.couch_ssd, 3)]

    def check_engine(self) -> List[str]:
        violations = list(self.recovery_errors)
        if self.rec_engine is not None:
            if self.rec_report is not None and not self.rec_report.clean:
                violations.append(
                    f"innodb: unrepairable pages in SHARE mode: "
                    f"{self.rec_report.unrepairable_pages}")
            for table in ("node", "link"):
                durable = self.idurable[table]
                inflight = (self.iinflight[table]
                            if self.iinflight is not None else None)
                keys = set(durable) | (set(inflight) if inflight else set())
                recovered: Dict = {}
                if table in self.rec_engine.tables:
                    tree = self.rec_engine.table(table)
                    recovered = {key: tree.get(key) for key in keys
                                 if tree.get(key) is not None}
                violations += per_key_violations(f"innodb.{table}",
                                                 recovered, durable,
                                                 inflight)
            try:
                if "node" not in self.rec_engine.tables:
                    self.rec_engine.create_table("node")
                with self.rec_engine.transaction() as txn:
                    txn.put("node", 999, "post-crash")
                if self.rec_engine.table("node").get(999) != "post-crash":
                    violations.append(
                        "innodb: post-recovery write not readable")
            except ReproError as exc:
                violations.append(
                    f"innodb: engine unusable after recovery: {exc!r}")
        if self.rec_couch is not None:
            recovered = dict(self.rec_couch.items())
            violations += per_key_violations("couch", recovered,
                                             self.cdurable, self.cinflight)
        return violations


# -------------------------------------------------------------- sqlite-share


class SqliteHarness:
    """SQLite-like engine in SHARE journal mode."""

    name = "sqlite-share"

    def __init__(self, faults: FaultPlan) -> None:
        self.faults = faults
        self.clock = SimClock()
        self.ssd = _small_ssd(faults, self.clock, block_count=64,
                              pages_per_block=16, overprovision=0.2)
        self.fs = HostFs(self.ssd, FsConfig(journal_blocks=8))
        self.page_count = 256
        self.db = SqliteLikeDb(self.fs, "/app.db", JournalMode.SHARE,
                               page_count=self.page_count, faults=faults)
        self.durable: Dict = {}
        self.inflight: Optional[Dict] = None
        self.reopened = None
        self.recovery_errors: List[str] = []

    def run(self) -> None:
        rng = random.Random(0x51E)
        model = dict(self.durable)
        for step in range(8):
            pending = dict(model)
            ops = []
            for __ in range(rng.randrange(1, 4)):
                key = rng.randrange(20)
                if rng.random() < 0.85 or key not in pending:
                    value = ("row", step, key, rng.randrange(1000))
                    pending[key] = value
                    ops.append((key, value))
                else:
                    pending.pop(key, None)
                    ops.append((key, None))
            self.inflight = dict(pending)
            with self.db.transaction():
                for key, value in ops:
                    if value is None:
                        self.db.delete(key)
                    else:
                        self.db.put(key, value)
            model = pending
            self.durable = dict(model)
            self.inflight = None

    def guards(self):
        return [self.db.pager.resilience]

    def recover(self) -> List[DeviceState]:
        self.ssd.power_cycle()
        try:
            self.reopened = SqliteLikeDb.open(self.fs, "/app.db",
                                              JournalMode.SHARE,
                                              page_count=self.page_count)
        except ReproError as exc:
            self.recovery_errors.append(f"sqlite: reopen failed: {exc!r}")
        return [DeviceState("sqlite", self.ssd, 2)]

    def check_engine(self) -> List[str]:
        violations = list(self.recovery_errors)
        if self.reopened is None:
            return violations
        recovered = dict(self.reopened.items())
        violations += per_key_violations("sqlite", recovered, self.durable,
                                         self.inflight)
        try:
            self.reopened.put(999, "post-crash")
            if self.reopened.get(999) != "post-crash":
                violations.append("sqlite: post-recovery write not readable")
        except ReproError as exc:
            violations.append(f"sqlite: db unusable after recovery: {exc!r}")
        return violations


# --------------------------------------------------------- datajournal-share


class DataJournalHarness:
    """data=journal filesystem with SHARE checkpoints and epoch replay."""

    name = "datajournal-share"

    def __init__(self, faults: FaultPlan) -> None:
        self.faults = faults
        self.clock = SimClock()
        self.ssd = _small_ssd(faults, self.clock, block_count=48,
                              pages_per_block=16, overprovision=0.2)
        self.fs = HostFs(self.ssd, FsConfig(journal_blocks=8))
        self.journal = DataJournalingFs(self.fs, CheckpointMode.SHARE,
                                        journal_blocks=16)
        self.file = self.fs.create("/data")
        self.file.fallocate(48)
        self.durable: Dict[int, object] = {}
        self.inflight: Optional[Dict[int, object]] = None
        self.recovery_errors: List[str] = []

    def run(self) -> None:
        rng = random.Random(0xDA7A)
        for step in range(12):
            writes = {rng.randrange(48): ("blk", step, i)
                      for i in range(rng.randrange(1, 5))}
            self.inflight = dict(self.durable)
            self.inflight.update(writes)
            self.journal.begin()
            for block, value in sorted(writes.items()):
                self.journal.journaled_write(self.file, block, value)
            self.journal.commit()
            self.durable = dict(self.inflight)
            self.inflight = None
            if step in (4, 9):
                self.journal.checkpoint()

    def guards(self):
        return [self.journal.resilience]

    def recover(self) -> List[DeviceState]:
        self.ssd.power_cycle()
        try:
            self.journal.rescan()
        except ReproError as exc:
            self.recovery_errors.append(
                f"datajournal: rescan failed: {exc!r}")
        return [DeviceState("datajournal", self.ssd, 2)]

    def check_engine(self) -> List[str]:
        violations = list(self.recovery_errors)
        if violations:
            return violations
        keys = set(self.durable)
        if self.inflight is not None:
            keys |= set(self.inflight)
        recovered = {}
        for block in keys:
            try:
                recovered[block] = self.journal.read(self.file, block)
            except ReproError:
                recovered[block] = None
        return violations + per_key_violations(
            "datajournal", recovered, self.durable, self.inflight)


# ------------------------------------------------------------ postgres-small


class PostgresHarness:
    """Heap + WAL engine: commits, scheduled checkpoints, WAL replay."""

    name = "postgres-small"

    def __init__(self, faults: FaultPlan) -> None:
        self.faults = faults
        self.clock = SimClock()
        self.data_ssd = _small_ssd(faults, self.clock, block_count=48,
                                   pages_per_block=16, overprovision=0.2)
        self.wal_ssd = _small_ssd(faults, self.clock, block_count=48,
                                  pages_per_block=16, overprovision=0.2)
        self.config = PostgresConfig(full_page_writes=True,
                                     checkpoint_interval_commits=4,
                                     rows_per_page=4)
        self.engine = PostgresEngine(self.data_ssd, self.wal_ssd,
                                     self.config)
        self.rows = 48
        self.engine.create_table("accounts", self.rows)
        self.catalog = {"accounts": (self.engine._tables["accounts"],
                                     self.engine._table_pages["accounts"])}
        self.durable: Dict[int, object] = {}
        self.inflight: Optional[Dict[int, object]] = None
        self.recovered: Optional[Dict[int, object]] = None
        self.recovery_errors: List[str] = []

    def run(self) -> None:
        rng = random.Random(0x9065)
        for step in range(10):
            updates = {rng.randrange(self.rows): ("acct", step, i)
                       for i in range(rng.randrange(1, 4))}
            pending = dict(self.durable)
            pending.update(updates)
            self.inflight = pending
            for row_id, value in sorted(updates.items()):
                self.engine.update_row("accounts", row_id, value)
            self.engine.commit()
            self.durable = dict(pending)
            self.inflight = None

    def recover(self) -> List[DeviceState]:
        self.data_ssd.power_cycle()
        self.wal_ssd.power_cycle()
        try:
            state = recover_row_state(self.data_ssd, self.wal_ssd,
                                      self.catalog)
            self.recovered = state["accounts"]
        except ReproError as exc:
            self.recovery_errors.append(f"postgres: replay failed: {exc!r}")
        return [DeviceState("postgres-data", self.data_ssd, 2),
                DeviceState("postgres-wal", self.wal_ssd, 2)]

    def check_engine(self) -> List[str]:
        violations = list(self.recovery_errors)
        if self.recovered is None:
            return violations
        return violations + per_key_violations(
            "postgres", self.recovered, self.durable, self.inflight)


WORKLOADS = {
    harness.name: harness
    for harness in (FtlBasicHarness, QueuedFtlHarness, CouchHarness,
                    LinkbenchHarness, SqliteHarness, DataJournalHarness,
                    PostgresHarness)
}
