"""Systematic crash-consistency exploration.

The paper's durability arguments (Sections 4.2.2 and 4.3) are stated per
mechanism: the SHARE batch commits through a single mapping-page program,
the doublewrite buffer repairs torn pages, the couchstore header is the
commit point.  This package checks the *composition*: it enumerates every
fault point a workload actually reaches (one traced run), then re-runs
the workload once per occurrence with a power failure injected exactly
there, recovers from the persisted media, and verifies a set of pluggable
invariants — mapping-table agreement, recovery idempotence, bounded
physical sharing, and each engine's read-your-acknowledged-writes
contract.

A second sweep dimension covers media faults rather than power: every
read / program / erase operation the workload issues is targeted in turn
with a transient read error, a program failure, an erase failure, or a
sticky dead page, and the same invariant set (plus bad-block accounting)
must hold on the degraded device (see :mod:`repro.crashcheck.mediafaults`).

Entry points:

* :func:`repro.crashcheck.explorer.enumerate_occurrences` — one traced run.
* :func:`repro.crashcheck.explorer.explore` — the full power sweep.
* :func:`repro.crashcheck.mediafaults.explore_media` — the media sweep.
* :func:`repro.crashcheck.cluster.explore_cluster` — the sharded-tier
  kill sweep (``no_lost_acked_write`` at every ack boundary).
* ``python -m repro.tools.crashexplore`` — the CLI (``--media-faults``
  selects the media sweep, ``--cluster`` the shard-kill sweep).
"""

from repro.crashcheck.cluster import (ClusterChaosReport, ClusterChaosResult,
                                      ClusterChaosHarness, ClusterHarness,
                                      ClusterMediaReport, ClusterMediaResult,
                                      ClusterOccurrence, ClusterReport,
                                      ClusterResult, enumerate_acked_writes,
                                      explore_cluster, explore_cluster_chaos,
                                      explore_cluster_media,
                                      explore_cluster_media_occurrence,
                                      explore_cluster_occurrence,
                                      media_cluster_harness, run_chaos_seed)
from repro.crashcheck.explorer import (ExplorationReport, Occurrence,
                                       PointResult, enumerate_occurrences,
                                       explore, explore_occurrence)
from repro.crashcheck.invariants import check_media, media_accounting
from repro.crashcheck.mediafaults import (ALL_MODES, GENERIC_MODES,
                                          MediaOccurrence, MediaReport,
                                          MediaResult, enumerate_media_ops,
                                          explore_media,
                                          explore_media_occurrence)
from repro.crashcheck.workloads import WORKLOADS, DeviceState

__all__ = [
    "ExplorationReport",
    "Occurrence",
    "PointResult",
    "enumerate_occurrences",
    "explore",
    "explore_occurrence",
    "check_media",
    "media_accounting",
    "ALL_MODES",
    "GENERIC_MODES",
    "MediaOccurrence",
    "MediaReport",
    "MediaResult",
    "enumerate_media_ops",
    "explore_media",
    "explore_media_occurrence",
    "WORKLOADS",
    "DeviceState",
    "ClusterHarness",
    "ClusterOccurrence",
    "ClusterReport",
    "ClusterResult",
    "enumerate_acked_writes",
    "explore_cluster",
    "explore_cluster_occurrence",
    "media_cluster_harness",
    "ClusterMediaReport",
    "ClusterMediaResult",
    "explore_cluster_media",
    "explore_cluster_media_occurrence",
    "ClusterChaosHarness",
    "ClusterChaosReport",
    "ClusterChaosResult",
    "run_chaos_seed",
    "explore_cluster_chaos",
]
