"""Cluster crash explorer: single-shard kills at every ack boundary.

The power explorer kills the whole world mid-operation; this sweep
kills exactly one shard's primary device — power-cycle plus a latched
breaker — *after* an acknowledged write, at every ack boundary of a
deterministic linkbench-small KV run over three shard pairs.  The tier
must carry the run through breaker-driven failover and still satisfy
``no_lost_acked_write``: every write the router acked before, at, or
after the kill reads back as its acknowledged value once the dust
settles and every device has been power-cycled.

Same two-phase shape as the other sweeps:

1. **Enumeration** — fresh plan with cluster-ack counting enabled, one
   fault-free run.  Yields the number of acked writes N.
2. **Injection** — for each boundary ``nth`` in 1..N, a fresh harness
   on a fresh plan arms ``ShardKill(nth=nth)``, runs to completion
   (failover happens inline — the run never aborts), recovers, and
   checks the engine-level contract plus the media invariants on all
   six devices.

Because the harness issues ops from one synchronous client, an ack
boundary has nothing in flight: zero violations is the expected result,
and any nonzero count is a real bug in replication, promotion replay,
or epoch fencing.

Two further sweeps live here:

* :func:`explore_cluster_media` replaces the kill with a
  :class:`~repro.sim.faults.ShardMediaStorm` at each ack boundary — the
  victim's NAND degrades instead of dying, the FTL absorbs each failure
  onto a spare block, and the media-health monitor must trip a
  *proactive* promotion before the device gives out.
* :func:`explore_cluster_chaos` runs the seeded chaos scheduler: a
  deterministic :func:`~repro.sim.rng.make_rng` stream interleaves
  multi-client traffic with shard kills, media storms, transient
  device-busy faults, and a mid-run ring resize (with a kill during the
  migration), then checks three invariants — ``no_lost_acked_write``,
  ``read_your_writes``, and ``replica_convergence``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.cluster import ShardGroup, ShardRouter
from repro.crashcheck.explorer import sample_evenly
from repro.crashcheck.invariants import check_media
from repro.crashcheck.workloads import DeviceState, _small_ssd
from repro.errors import ReproError
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.sim.faults import (NO_FAULTS, DeviceBusy, FaultPlan, ShardKill,
                              ShardMediaStorm)
from repro.sim.rng import make_rng
from repro.ssd.ncq import DeviceSession

__all__ = [
    "ClusterHarness",
    "ClusterOccurrence",
    "ClusterResult",
    "ClusterReport",
    "enumerate_acked_writes",
    "explore_cluster_occurrence",
    "explore_cluster",
    "media_cluster_harness",
    "ClusterMediaResult",
    "ClusterMediaReport",
    "explore_cluster_media_occurrence",
    "explore_cluster_media",
    "ClusterChaosHarness",
    "ClusterChaosResult",
    "ClusterChaosReport",
    "run_chaos_seed",
    "explore_cluster_chaos",
]

#: Shard pairs in the verification tier (>= 3 per the acceptance bar).
CLUSTER_SHARDS = 3

#: Workload steps; roughly two thirds ack a write, so the full sweep
#: explores on the order of a hundred kill sites.
CLUSTER_STEPS = 150

#: Distinct node keys the run churns over.
CLUSTER_NODES = 30

#: Replication is pumped every this many steps (the replica lag a kill
#: must be able to replay through).
PUMP_EVERY = 12


class ClusterHarness:
    """Three shard pairs under a deterministic linkbench-small KV mix.

    Node-update heavy with gets, SHARE snapshots, and deletes — the
    LinkBench shape reduced to the router's KV verbs.  The oracle maps
    every key ever touched to its last *acknowledged* value (``None``
    after delete); ``check_engine`` replays it through the router after
    recovery."""

    name = "cluster-small"

    def __init__(self, faults: FaultPlan, replicas: int = 1,
                 write_quorum: int = 1, media: bool = False) -> None:
        self.faults = faults
        self.clock = SimClock()
        self.events = EventScheduler(self.clock)
        self.media = media
        #: device name -> its own plan (media mode only): a storm's NAND
        #: faults must land on one victim device, while the sweep's plan
        #: stays a router-level concern.
        self.device_plans: Dict[str, FaultPlan] = {}
        pairs = []
        for index in range(CLUSTER_SHARDS):
            primary = self._device(f"s{index}p")
            reps = []
            for rep_index in range(replicas):
                suffix = "r" if replicas == 1 else f"r{rep_index}"
                reps.append(self._device(f"s{index}{suffix}"))
            pairs.append(ShardGroup(f"shard{index}", primary, reps,
                                    write_quorum=write_quorum))
        self.pairs = pairs
        # In the kill sweep devices run fault-free (the kill is a
        # router-level event); only the router consults the sweep's plan.
        self.router = ShardRouter(pairs, self.clock, faults=faults)
        self.durable: Dict[object, object] = {}
        self.crashed = False

    def _device(self, name: str):
        # All devices on one scheduler — completions interleave in
        # global time exactly as they would on one host.  Media mode
        # gives each device its own plan plus a spare-block pool for the
        # FTL to retire storm-failed blocks into.
        plan = NO_FAULTS
        spares = 0
        if self.media:
            plan = self.device_plans.setdefault(name, FaultPlan())
            spares = 4
        return _small_ssd(plan, self.clock, block_count=24,
                          pages_per_block=8, overprovision=0.25,
                          share_entries=32, spare_blocks=spares,
                          name=name, events=self.events)

    def run(self) -> None:
        rng = random.Random(0xC10C)
        router = self.router
        durable = self.durable
        for step in range(CLUSTER_STEPS):
            node = rng.randrange(CLUSTER_NODES)
            key = ("node", node)
            draw = rng.random()
            if draw < 0.50:
                value = ("v", node, step)
                router.put(key, value)
                durable[key] = value
            elif draw < 0.64:
                router.get(key)
            elif draw < 0.76 and durable.get(key) is not None:
                snap = ("snap", node)
                router.share(snap, key)
                durable[snap] = durable[key]
            elif draw < 0.86:
                if router.delete(key) is not None:
                    durable[key] = None
            else:
                router.get(("snap", node))
            if (step + 1) % PUMP_EVERY == 0:
                router.pump_replication()
        router.pump_replication()
        router.drain()

    def recover(self) -> List[DeviceState]:
        """Finish any pending failover, catch replication up, then
        power-cycle every device and recover from media."""
        router = self.router
        router.ensure_healthy()
        router.pump_replication()
        router.drain()
        states = []
        for pair in self.pairs:
            devices = [pair.primary] + [rep.ssd for rep in pair.replicas]
            for ssd in devices:
                ssd.power_cycle()
                states.append(DeviceState(ssd.name, ssd, 4))
        return states

    def check_engine(self) -> List[str]:
        violations: List[str] = []
        router = self.router
        for key in sorted(self.durable, key=repr):
            expected = self.durable[key]
            try:
                actual = router.get(key)
            except ReproError as exc:
                violations.append(
                    f"no_lost_acked_write: key {key!r} unreadable after "
                    f"recovery: {type(exc).__name__}: {exc}")
                continue
            if repr(actual) != repr(expected):
                violations.append(
                    f"no_lost_acked_write: key {key!r} reads {actual!r}, "
                    f"acked value was {expected!r}")
        for pair in self.pairs:
            for rep in pair.replicas:
                if rep.applier.watermark > pair.log.tip:
                    violations.append(
                        f"cluster: shard {pair.name!r} replica "
                        f"{rep.ssd.name!r} watermark "
                        f"{rep.applier.watermark} past log tip "
                        f"{pair.log.tip}")
        kills = [fault for fault in self.faults.cluster.fired_faults()
                 if isinstance(fault, ShardKill)]
        if kills and self.router.stats.failovers == 0:
            violations.append(
                f"cluster: shard kill fired ({kills[0]!r}) but no "
                f"promotion was recorded")
        return violations

    def guards(self):
        return [pair.guard for pair in self.pairs]


class ClusterOccurrence(NamedTuple):
    """One injection: kill the acking shard after acked write ``nth``."""

    nth: int


class ClusterResult(NamedTuple):
    """Verdict for one injected shard kill."""

    nth: int
    fired: bool
    victim: Optional[str]
    failovers: int
    replayed: int
    repl_applied: int
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_record(self, workload: str) -> Dict:
        """The JSONL report row."""
        return {
            "type": "clustercheck",
            "workload": workload,
            "nth": self.nth,
            "fired": self.fired,
            "victim": self.victim,
            "failovers": self.failovers,
            "replayed": self.replayed,
            "repl_applied": self.repl_applied,
            "ok": self.ok,
            "violations": list(self.violations),
        }


class ClusterReport(NamedTuple):
    """Aggregate of one cluster kill sweep."""

    workload: str
    acked_writes: int
    occurrences: Tuple[ClusterOccurrence, ...]
    results: Tuple[ClusterResult, ...]

    @property
    def failures(self) -> List[ClusterResult]:
        return [res for res in self.results if not res.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict:
        return {
            "type": "clustercheck-summary",
            "workload": self.workload,
            "acked_writes": self.acked_writes,
            "occurrences": len(self.occurrences),
            "explored": len(self.results),
            "fired": sum(1 for res in self.results if res.fired),
            "failovers": sum(res.failovers for res in self.results),
            "replayed": sum(res.replayed for res in self.results),
            "violations": sum(len(res.violations) for res in self.results),
            "ok": self.ok,
        }


def enumerate_acked_writes(
        factory: Callable[[FaultPlan], object] = ClusterHarness) -> int:
    """Phase 1: one counted, fault-free run.  Returns the number of
    acknowledged writes — each is a kill site."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.cluster.enable_counting()
    harness.run()
    return faults.cluster.acked_writes


def explore_cluster_occurrence(
        factory: Callable[[FaultPlan], object],
        occurrence: ClusterOccurrence) -> ClusterResult:
    """Phase 2: one kill at one ack boundary, on a fresh harness."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.arm_cluster(ShardKill(nth=occurrence.nth))
    harness.run()
    fired = faults.cluster.fired_faults()
    victim = fired[0].victim if fired else None
    faults.disarm_cluster()
    devices = harness.recover()
    violations: List[str] = []
    for state in devices:
        violations.extend(check_media(state.name, state.ssd,
                                      max_refs=state.max_refs))
    violations.extend(harness.check_engine())
    stats = harness.router.stats
    return ClusterResult(occurrence.nth, bool(fired), victim,
                         stats.failovers, stats.replayed_records,
                         stats.repl_applied, tuple(violations))


def explore_cluster(
        factory: Callable[[FaultPlan], object] = ClusterHarness,
        workload: str = ClusterHarness.name,
        occurrences: Optional[List[ClusterOccurrence]] = None,
        max_points: Optional[int] = None,
        sink=None,
        progress: Optional[Callable[[int, int, ClusterResult], None]] = None
) -> ClusterReport:
    """The full sweep: enumerate ack boundaries, kill at each one.

    ``max_points`` strides evenly across the boundary list (never
    truncates), so CI smoke runs keep early/middle/late coverage."""
    acked = enumerate_acked_writes(factory)
    if occurrences is None:
        occurrences = [ClusterOccurrence(nth)
                       for nth in range(1, acked + 1)]
    explored = occurrences
    if max_points is not None:
        explored = sample_evenly(occurrences, max_points)
    results: List[ClusterResult] = []
    for index, occurrence in enumerate(explored):
        result = explore_cluster_occurrence(factory, occurrence)
        results.append(result)
        if sink is not None:
            sink.emit(result.as_record(workload))
        if progress is not None:
            progress(index + 1, len(explored), result)
    report = ClusterReport(workload, acked, tuple(occurrences),
                           tuple(results))
    if sink is not None:
        sink.emit(report.summary())
    return report


# --------------------------------------------------------------- media storms


def media_cluster_harness(faults: FaultPlan) -> ClusterHarness:
    """Factory for the media sweep: per-device fault plans plus spare
    pools, so a storm degrades — not kills — its victim."""
    return ClusterHarness(faults, media=True)


class ClusterMediaResult(NamedTuple):
    """Verdict for one injected media storm."""

    nth: int
    fired: bool
    victim: Optional[str]
    media_trips: int
    proactive_promotions: int
    failovers: int
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_record(self, workload: str) -> Dict:
        """The JSONL report row."""
        return {
            "type": "clustermedia",
            "workload": workload,
            "nth": self.nth,
            "fired": self.fired,
            "victim": self.victim,
            "media_trips": self.media_trips,
            "proactive_promotions": self.proactive_promotions,
            "failovers": self.failovers,
            "ok": self.ok,
            "violations": list(self.violations),
        }


class ClusterMediaReport(NamedTuple):
    """Aggregate of one cluster media-storm sweep."""

    workload: str
    acked_writes: int
    occurrences: Tuple[ClusterOccurrence, ...]
    results: Tuple[ClusterMediaResult, ...]

    @property
    def failures(self) -> List[ClusterMediaResult]:
        return [res for res in self.results if not res.ok]

    @property
    def proactive_promotions(self) -> int:
        return sum(res.proactive_promotions for res in self.results)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict:
        return {
            "type": "clustermedia-summary",
            "workload": self.workload,
            "acked_writes": self.acked_writes,
            "occurrences": len(self.occurrences),
            "explored": len(self.results),
            "fired": sum(1 for res in self.results if res.fired),
            "media_trips": sum(res.media_trips for res in self.results),
            "proactive_promotions": self.proactive_promotions,
            "failovers": sum(res.failovers for res in self.results),
            "violations": sum(len(res.violations) for res in self.results),
            "ok": self.ok,
        }


def explore_cluster_media_occurrence(
        factory: Callable[[FaultPlan], object],
        occurrence: ClusterOccurrence) -> ClusterMediaResult:
    """One media storm at one ack boundary, on a fresh harness.

    The storm arms consecutive program/erase failures on the acking
    shard's primary; the FTL absorbs each one onto a spare block, so no
    client ever sees an error — the health monitor must notice the
    ``media.*`` counters move and trip a proactive promotion."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.arm_cluster(ShardMediaStorm(nth=occurrence.nth))
    harness.run()
    fired = faults.cluster.fired_faults()
    victim = fired[0].victim if fired else None
    faults.disarm_cluster()
    devices = harness.recover()
    violations: List[str] = []
    for state in devices:
        violations.extend(check_media(state.name, state.ssd,
                                      max_refs=state.max_refs))
    violations.extend(harness.check_engine())
    stats = harness.router.stats
    if fired and stats.media_storms == 0:
        violations.append(
            "cluster-media: storm fired but the router never injected it")
    return ClusterMediaResult(occurrence.nth, bool(fired), victim,
                              stats.media_trips, stats.proactive_promotions,
                              stats.failovers, tuple(violations))


def explore_cluster_media(
        factory: Callable[[FaultPlan], object] = media_cluster_harness,
        workload: str = "cluster-media",
        occurrences: Optional[List[ClusterOccurrence]] = None,
        max_points: Optional[int] = None,
        sink=None,
        progress: Optional[
            Callable[[int, int, ClusterMediaResult], None]] = None
) -> ClusterMediaReport:
    """The media sweep: enumerate ack boundaries, storm at each one.

    Zero violations is the bar, but the interesting aggregate is
    :attr:`ClusterMediaReport.proactive_promotions`: storms late in the
    run may not accumulate enough health score to trip before the run
    ends, so the CLI checks the sweep total, not every point."""
    acked = enumerate_acked_writes(factory)
    if occurrences is None:
        occurrences = [ClusterOccurrence(nth)
                       for nth in range(1, acked + 1)]
    explored = occurrences
    if max_points is not None:
        explored = sample_evenly(occurrences, max_points)
    results: List[ClusterMediaResult] = []
    for index, occurrence in enumerate(explored):
        result = explore_cluster_media_occurrence(factory, occurrence)
        results.append(result)
        if sink is not None:
            sink.emit(result.as_record(workload))
        if progress is not None:
            progress(index + 1, len(explored), result)
    report = ClusterMediaReport(workload, acked, tuple(occurrences),
                                tuple(results))
    if sink is not None:
        sink.emit(report.summary())
    return report


# ------------------------------------------------------------ chaos schedule

#: Chaos cluster shape: R=2 groups acking at a write quorum of two.
CHAOS_SHARDS = 3
CHAOS_REPLICAS = 2
CHAOS_QUORUM = 2

#: Concurrent closed-loop clients (each owns a device session, so the
#: read-your-writes invariant is checked per client, not globally).
CHAOS_CLIENTS = 3

CHAOS_STEPS = 240
CHAOS_KEYS = 24
CHAOS_PUMP_EVERY = 10


class ClusterChaosHarness:
    """Seeded randomized interleaving of faults under live traffic.

    One :func:`~repro.sim.rng.make_rng` stream drives everything — the
    per-client op mix, shard kills, media storms, transient device-busy
    command faults, the mid-run ring resize (one shard added, with a
    kill injected while the migration is in flight), and the
    replication pump cadence — so a seed is a complete, replayable
    schedule.

    Three invariants:

    * ``read_your_writes`` — checked inline: every read by client C must
      return a value acked at or after C's last acked mutation of that
      key (older acked values are legal for clients that never wrote
      it; the tier promises RYW, not linearizability).
    * ``replica_convergence`` — after quiescence every live replica's
      watermark equals its group's log tip and every directory entry
      reads back identically on the primary and each replica.
    * ``no_lost_acked_write`` — after every device is power-cycled, each
      key reads back as its last acked value.
    """

    name = "cluster-chaos"

    def __init__(self, seed: int, steps: int = CHAOS_STEPS,
                 shards: int = CHAOS_SHARDS,
                 replicas: int = CHAOS_REPLICAS,
                 write_quorum: int = CHAOS_QUORUM,
                 clients: int = CHAOS_CLIENTS,
                 max_kills: int = 2, max_storms: int = 2,
                 max_busy: int = 3) -> None:
        self.seed = seed
        self.steps = steps
        self.rng = make_rng(seed)
        self.clock = SimClock()
        self.events = EventScheduler(self.clock)
        self.device_plans: Dict[str, FaultPlan] = {}
        groups = [self._build_group(f"shard{index}", replicas, write_quorum)
                  for index in range(shards)]
        self.groups = groups
        # Chaos is injected directly below (kills, storms, busy faults),
        # not through an armed plan, so the router runs with the null one.
        self.router = ShardRouter(groups, self.clock, faults=NO_FAULTS)
        #: The shard the mid-run rebalance adds to the ring.
        self.spare_group = self._build_group(f"shard{shards}", replicas,
                                             write_quorum)
        self.clients = clients
        self.max_kills = max_kills
        self.max_storms = max_storms
        self.max_busy = max_busy
        self.rebalance_at = steps // 2
        # Invariant bookkeeping.
        self.version = 0
        #: key -> [(version, repr-or-None)] for every acked mutation.
        self.key_states: Dict[object, List[Tuple[int, Optional[str]]]] = {}
        #: (client, key) -> version of the client's last acked mutation.
        self.client_floor: Dict[Tuple[int, object], int] = {}
        #: key -> last acked repr (the no-lost-acked-write oracle).
        self.durable: Dict[object, Optional[str]] = {}
        self.violations: List[str] = []
        self.kills = 0
        self.storms = 0
        self.busy_faults = 0
        self.ryw_checks = 0
        self.rebalanced = False
        self.mid_rebalance_kill = False

    def _build_group(self, name: str, replicas: int,
                     write_quorum: int) -> ShardGroup:
        primary = self._device(f"{name}p")
        reps = [self._device(f"{name}r{index}") for index in range(replicas)]
        return ShardGroup(name, primary, reps, write_quorum=write_quorum)

    def _device(self, name: str):
        # Every device owns a plan (storms and busy faults target one
        # victim) and a spare pool to absorb storm-failed blocks.
        plan = self.device_plans.setdefault(name, FaultPlan())
        return _small_ssd(plan, self.clock, block_count=24,
                          pages_per_block=8, overprovision=0.25,
                          share_entries=32, spare_blocks=4,
                          name=name, events=self.events)

    # -------------------------------------------------------- bookkeeping

    def _record_write(self, client: int, key, value_repr) -> None:
        self.version += 1
        self.key_states.setdefault(key, []).append((self.version, value_repr))
        self.client_floor[(client, key)] = self.version
        self.durable[key] = value_repr

    def _check_read(self, client: int, key, result) -> None:
        self.ryw_checks += 1
        observed = None if result is None else repr(result)
        floor = self.client_floor.get((client, key), 0)
        states = self.key_states.get(key, [])
        legal = {value for version, value in states if version >= floor}
        if not states:
            legal.add(None)  # never acked: absence is the only truth
        if observed not in legal:
            self.violations.append(
                f"read_your_writes: client {client} read {observed!r} for "
                f"key {key!r}; legal values at floor {floor}: "
                f"{sorted(repr(value) for value in legal)}")

    # --------------------------------------------------------------- run

    def run(self) -> None:
        rng = self.rng
        router = self.router
        sessions = [DeviceSession(client, 0)
                    for client in range(self.clients)]
        rebalancer = None
        for step in range(self.steps):
            client = rng.randrange(self.clients)
            session = sessions[client]
            router.use_session(session)
            try:
                self._client_op(rng, router, client)
            finally:
                router.use_session(None)
            self.events.run_until(session.now_us)
            rebalancer = self._chaos(rng, router, step, rebalancer)
            if (step + 1) % CHAOS_PUMP_EVERY == 0:
                router.pump_replication(limit=rng.randrange(4, 13))
        self._quiesce()

    def _client_op(self, rng, router, client: int) -> None:
        node = rng.randrange(CHAOS_KEYS)
        key = ("node", node)
        draw = rng.random()
        if draw < 0.40:
            value = ("v", node, self.version + 1)
            router.put(key, value)
            self._record_write(client, key, repr(value))
        elif draw < 0.55:
            self._check_read(client, key, router.get(key))
        elif draw < 0.70:
            # Write-then-snapshot by one client: the put pins the source
            # version the SHARE must copy (read-your-writes makes the
            # snapshot's payload unambiguous even off a replica).
            value = ("v", node, self.version + 1)
            router.put(key, value)
            self._record_write(client, key, repr(value))
            snap = ("snap", node)
            router.share(snap, key)
            self._record_write(client, snap, repr(value))
        elif draw < 0.82:
            record = router.delete(key)
            if record is not None:
                self._record_write(client, key, None)
            else:
                # Absence observed: must be legal for this client.
                self._check_read(client, key, None)
        else:
            snap = ("snap", node)
            self._check_read(client, snap, router.get(snap))

    def _chaos(self, rng, router, step: int, rebalancer):
        names = sorted(router.pairs)
        if self.kills < self.max_kills and rng.random() < 0.04:
            router.kill_shard(names[rng.randrange(len(names))])
            self.kills += 1
        if self.storms < self.max_storms and rng.random() < 0.03:
            victim = names[rng.randrange(len(names))]
            storm = ShardMediaStorm(nth=1, shard=victim,
                                    program_fails=3, erase_fails=0)
            storm.fired = True
            storm.victim = victim
            router._inject_storm(storm)
            self.storms += 1
        if self.busy_faults < self.max_busy and rng.random() < 0.05:
            plans = sorted(self.device_plans)
            plan = self.device_plans[plans[rng.randrange(len(plans))]]
            kind = "write" if rng.random() < 0.6 else "read"
            plan.arm_command(DeviceBusy(
                kind, nth=plan.commands.op_counts[kind] + 1,
                clears_after=rng.randrange(1, 3)))
            self.busy_faults += 1
        if step == self.rebalance_at:
            rebalancer = router.start_rebalance(add=self.spare_group)
            self.rebalanced = True
        if rebalancer is not None and not rebalancer.done:
            if not self.mid_rebalance_kill:
                # Guaranteed kill-mid-migration: the handoff must not
                # lose keys when a shard dies between batches.
                live = sorted(router.pairs)
                router.kill_shard(live[rng.randrange(len(live))])
                self.kills += 1
                self.mid_rebalance_kill = True
            rebalancer.step()
        return rebalancer

    def _quiesce(self) -> None:
        router = self.router
        # The storm passed: disarm leftover transient faults so recovery
        # verifies the steady state, not an ever-degrading device.
        for plan in self.device_plans.values():
            plan.commands.disarm()
            plan.disarm_media()
        router.ensure_healthy()
        router.finish_rebalance()
        while router.pump_replication():
            pass
        router.drain()

    # ------------------------------------------------------------ checks

    def check_convergence(self) -> List[str]:
        """Every live replica at the tip, every key byte-identical."""
        violations: List[str] = []
        for group in self.router.pairs.values():
            tip = group.log.tip
            live = group.live_replicas()
            for rep in live:
                if rep.applier.watermark != tip:
                    violations.append(
                        f"replica_convergence: shard {group.name!r} replica "
                        f"{rep.ssd.name!r} watermark "
                        f"{rep.applier.watermark} != tip {tip}")
            for key in sorted(group.directory, key=repr):
                lpn = group.directory[key]
                try:
                    expected = group.primary.read(lpn)
                except ReproError as exc:
                    violations.append(
                        f"replica_convergence: shard {group.name!r} key "
                        f"{key!r} unreadable on primary: "
                        f"{type(exc).__name__}: {exc}")
                    continue
                for rep in live:
                    if rep.applier.watermark != tip:
                        continue  # already reported above
                    try:
                        actual = rep.ssd.read(lpn)
                    except ReproError as exc:
                        violations.append(
                            f"replica_convergence: shard {group.name!r} key "
                            f"{key!r} unreadable on {rep.ssd.name!r}: "
                            f"{type(exc).__name__}: {exc}")
                        continue
                    if repr(actual) != repr(expected):
                        violations.append(
                            f"replica_convergence: shard {group.name!r} key "
                            f"{key!r}: primary {expected!r} vs "
                            f"{rep.ssd.name!r} {actual!r}")
        return violations

    def recover(self) -> List[DeviceState]:
        """Power-cycle every live device and recover from media."""
        states = []
        for ssd in self.router.devices:
            ssd.power_cycle()
            states.append(DeviceState(ssd.name, ssd, 4))
        return states

    def check_engine(self) -> List[str]:
        """``no_lost_acked_write`` over every key ever acked."""
        violations: List[str] = []
        router = self.router
        for key in sorted(self.durable, key=repr):
            expected = self.durable[key]
            try:
                actual = router.get(key)
            except ReproError as exc:
                violations.append(
                    f"no_lost_acked_write: key {key!r} unreadable after "
                    f"recovery: {type(exc).__name__}: {exc}")
                continue
            observed = None if actual is None else repr(actual)
            if observed != expected:
                violations.append(
                    f"no_lost_acked_write: key {key!r} reads {observed!r}, "
                    f"acked value was {expected!r}")
        return violations


class ClusterChaosResult(NamedTuple):
    """Verdict for one chaos seed."""

    seed: int
    steps: int
    acked_writes: int
    kills: int
    storms: int
    busy_faults: int
    failovers: int
    proactive_promotions: int
    media_trips: int
    migrated_keys: int
    replica_reads: int
    ryw_checks: int
    mid_rebalance_kill: bool
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_record(self, workload: str) -> Dict:
        """The JSONL report row."""
        return {
            "type": "clusterchaos",
            "workload": workload,
            "seed": self.seed,
            "steps": self.steps,
            "acked_writes": self.acked_writes,
            "kills": self.kills,
            "storms": self.storms,
            "busy_faults": self.busy_faults,
            "failovers": self.failovers,
            "proactive_promotions": self.proactive_promotions,
            "media_trips": self.media_trips,
            "migrated_keys": self.migrated_keys,
            "replica_reads": self.replica_reads,
            "ryw_checks": self.ryw_checks,
            "mid_rebalance_kill": self.mid_rebalance_kill,
            "ok": self.ok,
            "violations": list(self.violations),
        }


class ClusterChaosReport(NamedTuple):
    """Aggregate of one chaos sweep (one result per seed)."""

    workload: str
    results: Tuple[ClusterChaosResult, ...]

    @property
    def failures(self) -> List[ClusterChaosResult]:
        return [res for res in self.results if not res.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict:
        return {
            "type": "clusterchaos-summary",
            "workload": self.workload,
            "seeds": len(self.results),
            "acked_writes": sum(res.acked_writes for res in self.results),
            "kills": sum(res.kills for res in self.results),
            "storms": sum(res.storms for res in self.results),
            "busy_faults": sum(res.busy_faults for res in self.results),
            "failovers": sum(res.failovers for res in self.results),
            "proactive_promotions": sum(res.proactive_promotions
                                        for res in self.results),
            "migrated_keys": sum(res.migrated_keys for res in self.results),
            "ryw_checks": sum(res.ryw_checks for res in self.results),
            "mid_rebalance_kills": sum(1 for res in self.results
                                       if res.mid_rebalance_kill),
            "violations": sum(len(res.violations) for res in self.results),
            "ok": self.ok,
        }


def run_chaos_seed(seed: int, steps: int = CHAOS_STEPS) -> ClusterChaosResult:
    """Run one seed end to end and check all three invariants."""
    harness = ClusterChaosHarness(seed, steps=steps)
    harness.run()
    violations = list(harness.violations)
    violations.extend(harness.check_convergence())
    for state in harness.recover():
        violations.extend(check_media(state.name, state.ssd,
                                      max_refs=state.max_refs))
    violations.extend(harness.check_engine())
    stats = harness.router.stats
    return ClusterChaosResult(seed, harness.steps, stats.acked_writes,
                       harness.kills, harness.storms, harness.busy_faults,
                       stats.failovers, stats.proactive_promotions,
                       stats.media_trips, stats.migrated_keys,
                       stats.replica_reads, harness.ryw_checks,
                       harness.mid_rebalance_kill, tuple(violations))


def explore_cluster_chaos(
        seeds=(1, 2, 3),
        steps: int = CHAOS_STEPS,
        workload: str = ClusterChaosHarness.name,
        sink=None,
        progress: Optional[Callable[[int, int, ClusterChaosResult], None]] = None
) -> ClusterChaosReport:
    """The chaos sweep: one full randomized schedule per seed."""
    results: List[ClusterChaosResult] = []
    seeds = list(seeds)
    for index, seed in enumerate(seeds):
        result = run_chaos_seed(seed, steps=steps)
        results.append(result)
        if sink is not None:
            sink.emit(result.as_record(workload))
        if progress is not None:
            progress(index + 1, len(seeds), result)
    report = ClusterChaosReport(workload, tuple(results))
    if sink is not None:
        sink.emit(report.summary())
    return report
