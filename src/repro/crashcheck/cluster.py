"""Cluster crash explorer: single-shard kills at every ack boundary.

The power explorer kills the whole world mid-operation; this sweep
kills exactly one shard's primary device — power-cycle plus a latched
breaker — *after* an acknowledged write, at every ack boundary of a
deterministic linkbench-small KV run over three shard pairs.  The tier
must carry the run through breaker-driven failover and still satisfy
``no_lost_acked_write``: every write the router acked before, at, or
after the kill reads back as its acknowledged value once the dust
settles and every device has been power-cycled.

Same two-phase shape as the other sweeps:

1. **Enumeration** — fresh plan with cluster-ack counting enabled, one
   fault-free run.  Yields the number of acked writes N.
2. **Injection** — for each boundary ``nth`` in 1..N, a fresh harness
   on a fresh plan arms ``ShardKill(nth=nth)``, runs to completion
   (failover happens inline — the run never aborts), recovers, and
   checks the engine-level contract plus the media invariants on all
   six devices.

Because the harness issues ops from one synchronous client, an ack
boundary has nothing in flight: zero violations is the expected result,
and any nonzero count is a real bug in replication, promotion replay,
or epoch fencing.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.cluster import ShardPair, ShardRouter
from repro.crashcheck.explorer import sample_evenly
from repro.crashcheck.invariants import check_media
from repro.crashcheck.workloads import DeviceState, _small_ssd
from repro.errors import ReproError
from repro.sim.clock import SimClock
from repro.sim.events import EventScheduler
from repro.sim.faults import NO_FAULTS, FaultPlan, ShardKill

__all__ = [
    "ClusterHarness",
    "ClusterOccurrence",
    "ClusterResult",
    "ClusterReport",
    "enumerate_acked_writes",
    "explore_cluster_occurrence",
    "explore_cluster",
]

#: Shard pairs in the verification tier (>= 3 per the acceptance bar).
CLUSTER_SHARDS = 3

#: Workload steps; roughly two thirds ack a write, so the full sweep
#: explores on the order of a hundred kill sites.
CLUSTER_STEPS = 150

#: Distinct node keys the run churns over.
CLUSTER_NODES = 30

#: Replication is pumped every this many steps (the replica lag a kill
#: must be able to replay through).
PUMP_EVERY = 12


class ClusterHarness:
    """Three shard pairs under a deterministic linkbench-small KV mix.

    Node-update heavy with gets, SHARE snapshots, and deletes — the
    LinkBench shape reduced to the router's KV verbs.  The oracle maps
    every key ever touched to its last *acknowledged* value (``None``
    after delete); ``check_engine`` replays it through the router after
    recovery."""

    name = "cluster-small"

    def __init__(self, faults: FaultPlan) -> None:
        self.faults = faults
        self.clock = SimClock()
        self.events = EventScheduler(self.clock)
        pairs = []
        for index in range(CLUSTER_SHARDS):
            primary = self._device(f"s{index}p")
            replica = self._device(f"s{index}r")
            pairs.append(ShardPair(f"shard{index}", primary, replica))
        self.pairs = pairs
        # Devices run fault-free (the kill is a router-level event, not
        # a media fault); only the router consults the sweep's plan.
        self.router = ShardRouter(pairs, self.clock, faults=faults)
        self.durable: Dict[object, object] = {}
        self.crashed = False

    def _device(self, name: str):
        # All six devices on one scheduler — completions interleave in
        # global time exactly as they would on one host.
        return _small_ssd(NO_FAULTS, self.clock, block_count=24,
                          pages_per_block=8, overprovision=0.25,
                          share_entries=32, name=name, events=self.events)

    def run(self) -> None:
        rng = random.Random(0xC10C)
        router = self.router
        durable = self.durable
        for step in range(CLUSTER_STEPS):
            node = rng.randrange(CLUSTER_NODES)
            key = ("node", node)
            draw = rng.random()
            if draw < 0.50:
                value = ("v", node, step)
                router.put(key, value)
                durable[key] = value
            elif draw < 0.64:
                router.get(key)
            elif draw < 0.76 and durable.get(key) is not None:
                snap = ("snap", node)
                router.share(snap, key)
                durable[snap] = durable[key]
            elif draw < 0.86:
                if router.delete(key) is not None:
                    durable[key] = None
            else:
                router.get(("snap", node))
            if (step + 1) % PUMP_EVERY == 0:
                router.pump_replication()
        router.pump_replication()
        router.drain()

    def recover(self) -> List[DeviceState]:
        """Finish any pending failover, catch replication up, then
        power-cycle every device and recover from media."""
        router = self.router
        router.ensure_healthy()
        router.pump_replication()
        router.drain()
        states = []
        for pair in self.pairs:
            for ssd in (pair.primary, pair.replica):
                ssd.power_cycle()
                states.append(DeviceState(ssd.name, ssd, 4))
        return states

    def check_engine(self) -> List[str]:
        violations: List[str] = []
        router = self.router
        for key in sorted(self.durable, key=repr):
            expected = self.durable[key]
            try:
                actual = router.get(key)
            except ReproError as exc:
                violations.append(
                    f"no_lost_acked_write: key {key!r} unreadable after "
                    f"recovery: {type(exc).__name__}: {exc}")
                continue
            if repr(actual) != repr(expected):
                violations.append(
                    f"no_lost_acked_write: key {key!r} reads {actual!r}, "
                    f"acked value was {expected!r}")
        for pair in self.pairs:
            if pair.applier.watermark > pair.log.tip:
                violations.append(
                    f"cluster: shard {pair.name!r} watermark "
                    f"{pair.applier.watermark} past log tip {pair.log.tip}")
        kills = self.faults.cluster.fired_faults()
        if kills and self.router.stats.failovers == 0:
            violations.append(
                f"cluster: shard kill fired ({kills[0]!r}) but no "
                f"promotion was recorded")
        return violations

    def guards(self):
        return [pair.guard for pair in self.pairs]


class ClusterOccurrence(NamedTuple):
    """One injection: kill the acking shard after acked write ``nth``."""

    nth: int


class ClusterResult(NamedTuple):
    """Verdict for one injected shard kill."""

    nth: int
    fired: bool
    victim: Optional[str]
    failovers: int
    replayed: int
    repl_applied: int
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_record(self, workload: str) -> Dict:
        """The JSONL report row."""
        return {
            "type": "clustercheck",
            "workload": workload,
            "nth": self.nth,
            "fired": self.fired,
            "victim": self.victim,
            "failovers": self.failovers,
            "replayed": self.replayed,
            "repl_applied": self.repl_applied,
            "ok": self.ok,
            "violations": list(self.violations),
        }


class ClusterReport(NamedTuple):
    """Aggregate of one cluster kill sweep."""

    workload: str
    acked_writes: int
    occurrences: Tuple[ClusterOccurrence, ...]
    results: Tuple[ClusterResult, ...]

    @property
    def failures(self) -> List[ClusterResult]:
        return [res for res in self.results if not res.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict:
        return {
            "type": "clustercheck-summary",
            "workload": self.workload,
            "acked_writes": self.acked_writes,
            "occurrences": len(self.occurrences),
            "explored": len(self.results),
            "fired": sum(1 for res in self.results if res.fired),
            "failovers": sum(res.failovers for res in self.results),
            "replayed": sum(res.replayed for res in self.results),
            "violations": sum(len(res.violations) for res in self.results),
            "ok": self.ok,
        }


def enumerate_acked_writes(
        factory: Callable[[FaultPlan], object] = ClusterHarness) -> int:
    """Phase 1: one counted, fault-free run.  Returns the number of
    acknowledged writes — each is a kill site."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.cluster.enable_counting()
    harness.run()
    return faults.cluster.acked_writes


def explore_cluster_occurrence(
        factory: Callable[[FaultPlan], object],
        occurrence: ClusterOccurrence) -> ClusterResult:
    """Phase 2: one kill at one ack boundary, on a fresh harness."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.arm_cluster(ShardKill(nth=occurrence.nth))
    harness.run()
    fired = faults.cluster.fired_faults()
    victim = fired[0].victim if fired else None
    faults.disarm_cluster()
    devices = harness.recover()
    violations: List[str] = []
    for state in devices:
        violations.extend(check_media(state.name, state.ssd,
                                      max_refs=state.max_refs))
    violations.extend(harness.check_engine())
    stats = harness.router.stats
    return ClusterResult(occurrence.nth, bool(fired), victim,
                         stats.failovers, stats.replayed_records,
                         stats.repl_applied, tuple(violations))


def explore_cluster(
        factory: Callable[[FaultPlan], object] = ClusterHarness,
        workload: str = ClusterHarness.name,
        occurrences: Optional[List[ClusterOccurrence]] = None,
        max_points: Optional[int] = None,
        sink=None,
        progress: Optional[Callable[[int, int, ClusterResult], None]] = None
) -> ClusterReport:
    """The full sweep: enumerate ack boundaries, kill at each one.

    ``max_points`` strides evenly across the boundary list (never
    truncates), so CI smoke runs keep early/middle/late coverage."""
    acked = enumerate_acked_writes(factory)
    if occurrences is None:
        occurrences = [ClusterOccurrence(nth)
                       for nth in range(1, acked + 1)]
    explored = occurrences
    if max_points is not None:
        explored = sample_evenly(occurrences, max_points)
    results: List[ClusterResult] = []
    for index, occurrence in enumerate(explored):
        result = explore_cluster_occurrence(factory, occurrence)
        results.append(result)
        if sink is not None:
            sink.emit(result.as_record(workload))
        if progress is not None:
            progress(index + 1, len(explored), result)
    report = ClusterReport(workload, acked, tuple(occurrences),
                           tuple(results))
    if sink is not None:
        sink.emit(report.summary())
    return report
