"""Media-level crash invariants, checked on every recovered device.

Each check returns a list of violation strings (empty = clean) so the
explorer can aggregate them into one verdict per fault point.  They are
deliberately independent of any engine: they hold for *any* workload on
a correct FTL, no matter where power failed.

* **mapping agreement** — the forward and reverse mapping tables must
  mirror each other and per-block valid counts must match (the FTL's own
  ``check_invariants``).
* **replay idempotence** — running recovery twice over the same media
  must produce identical logical state: the media scan has no side
  effects, so a second crash *during* recovery loses nothing.
* **bounded refs** — no physical page may be referenced by more LPNs
  than the workload's sharing pattern allows (2 for plain SHARE staging;
  3 for couchstore, whose compaction transiently holds old-file,
  scratch and new-file references to one document page).
"""

from __future__ import annotations

from typing import Dict, List

from repro.ftl.pagemap import PageMappingFtl


def mapping_agreement(name: str, ssd) -> List[str]:
    """Forward/reverse map and valid-count consistency."""
    try:
        ssd.ftl.check_invariants()
    except AssertionError as exc:
        return [f"{name}: mapping-agreement: {exc}"]
    return []


def replay_idempotence(name: str, ssd) -> List[str]:
    """Two independent recoveries of the same media must agree."""
    first = PageMappingFtl.recover(ssd.nand, ssd.config.ftl)
    second = PageMappingFtl.recover(ssd.nand, ssd.config.ftl)
    first_map = dict(first.fwd.mapped_lpns())
    second_map = dict(second.fwd.mapped_lpns())
    violations: List[str] = []
    if first_map != second_map:
        drift = set(first_map.items()) ^ set(second_map.items())
        violations.append(
            f"{name}: replay-idempotence: mapping drift across recoveries "
            f"({len(drift)} entries differ)")
    if first._trim_tombstones != second._trim_tombstones:
        violations.append(
            f"{name}: replay-idempotence: trim tombstones differ across "
            f"recoveries")
    if not violations:
        for lpn in first_map:
            if first.read(lpn) != second.read(lpn):
                violations.append(
                    f"{name}: replay-idempotence: LPN {lpn} reads "
                    f"different data across recoveries")
                break
    return violations


def bounded_refs(name: str, ssd, max_refs: int) -> List[str]:
    """No physical page may be shared wider than the workload allows."""
    refs: Dict[int, List[int]] = {}
    for lpn, ppn in ssd.ftl.fwd.mapped_lpns():
        refs.setdefault(ppn, []).append(lpn)
    return [
        f"{name}: bounded-refs: PPN {ppn} referenced by {len(lpns)} LPNs "
        f"{sorted(lpns)} (limit {max_refs})"
        for ppn, lpns in sorted(refs.items()) if len(lpns) > max_refs
    ]


def check_media(name: str, ssd, max_refs: int = 2) -> List[str]:
    """Run every media invariant against one recovered device."""
    violations = mapping_agreement(name, ssd)
    violations += replay_idempotence(name, ssd)
    violations += bounded_refs(name, ssd, max_refs)
    return violations
