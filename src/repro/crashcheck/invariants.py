"""Media-level crash invariants, checked on every recovered device.

Each check returns a list of violation strings (empty = clean) so the
explorer can aggregate them into one verdict per fault point.  They are
deliberately independent of any engine: they hold for *any* workload on
a correct FTL, no matter where power failed.

* **mapping agreement** — the forward and reverse mapping tables must
  mirror each other and per-block valid counts must match (the FTL's own
  ``check_invariants``).
* **replay idempotence** — running recovery twice over the same media
  must produce identical logical state: the media scan has no side
  effects, so a second crash *during* recovery loses nothing.
* **bounded refs** — no physical page may be referenced by more LPNs
  than the workload's sharing pattern allows (2 for plain SHARE staging;
  3 for couchstore, whose compaction transiently holds old-file,
  scratch and new-file references to one document page).
* **media accounting** — grown-bad blocks must never reappear in the
  free pool or as active blocks, spare-pool bookkeeping must balance,
  and no forward mapping may point at a page that failed during program.

On a device degraded by media faults a read may legitimately raise a
typed :class:`MediaError` (the page is dead); the replay check therefore
compares read *outcomes* — the value, or the exact error type — so "both
recoveries surface the same typed error" passes and "one recovery reads
data the other cannot" fails.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import MediaError
from repro.ftl.pagemap import PageMappingFtl


def mapping_agreement(name: str, ssd) -> List[str]:
    """Forward/reverse map and valid-count consistency."""
    try:
        ssd.ftl.check_invariants()
    except AssertionError as exc:
        return [f"{name}: mapping-agreement: {exc}"]
    return []


def _read_outcome(ftl: PageMappingFtl, lpn: int) -> Tuple[str, object]:
    """What a host read of ``lpn`` produces: the value, or the typed
    media-error class (never wrong data, never an untyped failure)."""
    try:
        return ("ok", ftl.read(lpn))
    except MediaError as exc:
        return ("media-error", type(exc).__name__)


def replay_idempotence(name: str, ssd) -> List[str]:
    """Two independent recoveries of the same media must agree."""
    first = PageMappingFtl.recover(ssd.nand, ssd.config.ftl)
    second = PageMappingFtl.recover(ssd.nand, ssd.config.ftl)
    first_map = dict(first.fwd.mapped_lpns())
    second_map = dict(second.fwd.mapped_lpns())
    violations: List[str] = []
    if first_map != second_map:
        drift = set(first_map.items()) ^ set(second_map.items())
        violations.append(
            f"{name}: replay-idempotence: mapping drift across recoveries "
            f"({len(drift)} entries differ)")
    if first._trim_tombstones != second._trim_tombstones:
        violations.append(
            f"{name}: replay-idempotence: trim tombstones differ across "
            f"recoveries")
    if first.grown_bad_blocks != second.grown_bad_blocks:
        violations.append(
            f"{name}: replay-idempotence: grown-bad blocks differ across "
            f"recoveries ({sorted(first.grown_bad_blocks)} vs "
            f"{sorted(second.grown_bad_blocks)})")
    if not violations:
        for lpn in first_map:
            if _read_outcome(first, lpn) != _read_outcome(second, lpn):
                violations.append(
                    f"{name}: replay-idempotence: LPN {lpn} reads "
                    f"different outcomes across recoveries")
                break
    return violations


def media_accounting(name: str, ssd) -> List[str]:
    """Bad-block and spare-pool bookkeeping must stay coherent."""
    ftl = ssd.ftl
    violations: List[str] = []
    grown = ftl.grown_bad_blocks
    free = set(ftl._free_blocks)
    spares = set(ftl._spare_blocks)
    for block in sorted(grown & free):
        violations.append(
            f"{name}: media-accounting: grown-bad block {block} is back "
            f"in the free pool")
    for block in sorted(grown & spares):
        violations.append(
            f"{name}: media-accounting: grown-bad block {block} is held "
            f"as a spare")
    actives = [("gc", ftl._active_gc)]
    actives.extend((f"host(ch{channel})", block)
                   for channel, block in sorted(ftl._active_host.items()))
    for role, active in actives:
        if active is not None and active in grown:
            violations.append(
                f"{name}: media-accounting: grown-bad block {active} is "
                f"the active {role} block")
    expected_spares = max(0, ssd.config.ftl.spare_block_count - len(grown))
    if len(spares) != expected_spares:
        violations.append(
            f"{name}: media-accounting: spare pool holds {len(spares)} "
            f"blocks, expected {expected_spares} "
            f"({ssd.config.ftl.spare_block_count} reserved, "
            f"{len(grown)} grown bad)")
    for lpn, ppn in ftl.fwd.mapped_lpns():
        if ssd.nand.is_failed(ppn):
            violations.append(
                f"{name}: media-accounting: LPN {lpn} maps to PPN {ppn}, "
                f"which failed during program and holds no data")
    return violations


def bounded_refs(name: str, ssd, max_refs: int) -> List[str]:
    """No physical page may be shared wider than the workload allows."""
    refs: Dict[int, List[int]] = {}
    for lpn, ppn in ssd.ftl.fwd.mapped_lpns():
        refs.setdefault(ppn, []).append(lpn)
    return [
        f"{name}: bounded-refs: PPN {ppn} referenced by {len(lpns)} LPNs "
        f"{sorted(lpns)} (limit {max_refs})"
        for ppn, lpns in sorted(refs.items()) if len(lpns) > max_refs
    ]


def check_media(name: str, ssd, max_refs: int = 2) -> List[str]:
    """Run every media invariant against one recovered device."""
    violations = mapping_agreement(name, ssd)
    violations += replay_idempotence(name, ssd)
    violations += bounded_refs(name, ssd, max_refs)
    violations += media_accounting(name, ssd)
    return violations
