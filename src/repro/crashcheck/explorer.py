"""The crash-consistency explorer: enumerate fault points, inject, verify.

The sweep is two-phase and fully deterministic:

1. **Enumeration** — build the harness, enable the fault plan's trace,
   run the workload once with no fault armed.  Every checkpoint the run
   reaches becomes an :class:`Occurrence` ``(point, nth)`` — the nth time
   that named point fires after setup.
2. **Injection** — for each occurrence, build a *fresh* harness on a
   fresh plan, arm ``PowerFailAfter(point, nth)``, run until the injected
   :class:`PowerFailure`, discard all volatile state, recover from the
   persisted media, and check every invariant: the media-level set from
   :mod:`repro.crashcheck.invariants` on each recovered device plus the
   harness's engine-level contract.

Arming happens after setup in both phases, so ``nth`` counts the same
occurrences the trace saw — determinism of the harness is what makes the
sweep exhaustive rather than probabilistic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.crashcheck.invariants import check_media
from repro.errors import PowerFailure
from repro.sim.faults import FaultPlan, PowerFailAfter


def sample_evenly(items: List, limit: int) -> List:
    """At most ``limit`` items, spread evenly across ``items``.

    A naive ``items[::len(items) // limit][:limit]`` degenerates to head
    truncation whenever ``limit <= len(items) < 2 * limit`` (integer
    stride 1), silently dropping the tail — and with it whole sweep
    modes.  Index selection ``i * n // limit`` keeps the spread exact
    for any ratio.
    """
    total = len(items)
    if limit <= 0:
        return []
    if total <= limit:
        return list(items)
    return [items[i * total // limit] for i in range(limit)]


class Occurrence(NamedTuple):
    """One injection site: the nth firing of a named fault point."""

    point: str
    nth: int


class PointResult(NamedTuple):
    """Verdict for one injected crash."""

    point: str
    nth: int
    crashed: bool
    violations: Tuple[str, ...]
    recovery_trace: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_record(self, workload: str) -> Dict:
        """The JSONL report row."""
        return {
            "type": "crashcheck",
            "workload": workload,
            "point": self.point,
            "nth": self.nth,
            "crashed": self.crashed,
            "ok": self.ok,
            "violations": list(self.violations),
            "recovery_trace": list(self.recovery_trace[:24]),
            "recovery_trace_len": len(self.recovery_trace),
        }


class ExplorationReport(NamedTuple):
    """Aggregate of one sweep."""

    workload: str
    occurrences: Tuple[Occurrence, ...]
    results: Tuple[PointResult, ...]

    @property
    def distinct_points(self) -> List[str]:
        return sorted({occ.point for occ in self.occurrences})

    @property
    def failures(self) -> List[PointResult]:
        return [res for res in self.results if not res.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict:
        return {
            "type": "crashcheck-summary",
            "workload": self.workload,
            "occurrences": len(self.occurrences),
            "explored": len(self.results),
            "distinct_points": len(self.distinct_points),
            "crashed": sum(1 for res in self.results if res.crashed),
            "violations": sum(len(res.violations) for res in self.results),
            "ok": self.ok,
        }


def enumerate_occurrences(factory: Callable[[FaultPlan], object]
                          ) -> List[Occurrence]:
    """Phase 1: one traced, fault-free run enumerating every checkpoint
    occurrence the workload reaches (setup excluded)."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.enable_trace()
    harness.run()
    counts: Dict[str, int] = {}
    occurrences: List[Occurrence] = []
    for point in faults.trace:
        counts[point] = counts.get(point, 0) + 1
        occurrences.append(Occurrence(point, counts[point]))
    return occurrences


def explore_occurrence(factory: Callable[[FaultPlan], object],
                       occurrence: Occurrence) -> PointResult:
    """Phase 2 for one site: inject, recover, verify."""
    faults = FaultPlan()
    harness = factory(faults)
    faults.arm(PowerFailAfter(occurrence.point, occurrence.nth))
    crashed = False
    try:
        harness.run()
    except PowerFailure:
        crashed = True
    faults.disarm()        # never fire during recovery
    faults.enable_trace()  # ... but do record the recovery path
    devices = harness.recover()
    recovery_trace = tuple(faults.trace)
    violations: List[str] = []
    for device in devices:
        violations += check_media(device.name, device.ssd, device.max_refs)
    violations += harness.check_engine()
    return PointResult(occurrence.point, occurrence.nth, crashed,
                       tuple(violations), recovery_trace)


def explore(factory: Callable[[FaultPlan], object], workload: str,
            occurrences: Optional[List[Occurrence]] = None,
            max_points: Optional[int] = None,
            sink=None,
            progress: Optional[Callable[[int, int, PointResult], None]]
            = None) -> ExplorationReport:
    """The full sweep: enumerate (unless given), then inject each site.

    ``sink`` is any PR-1 telemetry sink (``emit(dict)``); each site's
    verdict is emitted as it completes, then one summary record.
    """
    if occurrences is None:
        occurrences = enumerate_occurrences(factory)
    explored = (occurrences if max_points is None
                else occurrences[:max_points])
    results: List[PointResult] = []
    for index, occurrence in enumerate(explored):
        result = explore_occurrence(factory, occurrence)
        results.append(result)
        if sink is not None:
            sink.emit(result.as_record(workload))
        if progress is not None:
            progress(index + 1, len(explored), result)
    report = ExplorationReport(workload, tuple(occurrences), tuple(results))
    if sink is not None:
        sink.emit(report.summary())
    return report
