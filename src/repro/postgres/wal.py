"""Write-ahead log with optional full-page images.

The WAL models exactly the accounting that matters to the paper's pgbench
observation: small logical records always; a full page image *in addition*
the first time a page is touched after a checkpoint when
``full_page_writes`` is on.  Records are packed into WAL pages on the log
device; an fsync at commit makes them durable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.ssd.device import Ssd


@dataclass
class WalStats:
    """WAL volume accounting (the paper's 'amount of WAL log data')."""

    records: int = 0
    record_bytes: int = 0
    full_page_images: int = 0
    full_page_bytes: int = 0
    wal_pages_written: int = 0
    commits: int = 0

    @property
    def total_bytes(self) -> int:
        return self.record_bytes + self.full_page_bytes


class Wal:
    """Append-only WAL over a log device.

    ``record_bytes`` models the size of one logical record (a pgbench
    UPDATE record is on the order of 100–200 bytes); full page images
    consume a whole data page.  The WAL fills device pages with whatever
    mix of records and images is pending, so turning full_page_writes off
    shrinks the number of WAL pages per commit — which is the entire
    performance effect the experiment shows.
    """

    def __init__(self, device: Ssd, record_bytes: int = 128,
                 data_page_bytes: int = 4096) -> None:
        if record_bytes < 1:
            raise ValueError(f"record_bytes must be >= 1: {record_bytes}")
        self.device = device
        self.record_bytes = record_bytes
        self.data_page_bytes = data_page_bytes
        self.stats = WalStats()
        self._pending_bytes = 0
        self._pending_payload: List[Any] = []
        self._cursor_lpn = 0
        self._partial_fill = 0  # bytes used in the current WAL page

    def log_record(self, record: Any) -> None:
        """Append one small logical record."""
        self.stats.records += 1
        self.stats.record_bytes += self.record_bytes
        self._pending_bytes += self.record_bytes
        self._pending_payload.append(("rec", record))

    def log_full_page_image(self, page_id: int, image: Any) -> None:
        """Append a full before-image of a data page (full_page_writes)."""
        self.stats.full_page_images += 1
        self.stats.full_page_bytes += self.data_page_bytes
        self._pending_bytes += self.data_page_bytes
        self._pending_payload.append(("fpi", page_id, image))

    def commit(self) -> None:
        """fsync the WAL: write out every pending byte as WAL pages."""
        page_size = self.device.page_size
        total = self._partial_fill + self._pending_bytes
        pages_needed = -(-total // page_size) if total else 0
        already_written = 1 if self._partial_fill else 0
        new_pages = max(0, pages_needed - already_written)
        # Rewriting the current partial page counts as a write too (the
        # WAL's well-known partial-page rewrite cost).
        if self._partial_fill and self._pending_bytes:
            new_pages += 1
        seq = self.stats.commits + 1
        payload = tuple(self._pending_payload)
        region = max(1, self.device.logical_pages // 2)
        for __ in range(new_pages):
            self.device.write(self._cursor_lpn, ("wal", seq, payload))
            self._cursor_lpn = (self._cursor_lpn + 1) % region
            self.stats.wal_pages_written += 1
        self.device.flush()
        self._partial_fill = total % page_size
        self._pending_bytes = 0
        self._pending_payload = []
        self.stats.commits += 1

    def log_checkpoint_marker(self) -> None:
        """Durably record that every commit so far is reflected in the
        heap.  Replay after a crash skips commits at or below the newest
        marker — without it, a surviving stale WAL page could roll a
        checkpointed row backwards."""
        region = max(1, self.device.logical_pages // 2)
        self.device.write(self._cursor_lpn, ("walckpt", self.stats.commits))
        self._cursor_lpn = (self._cursor_lpn + 1) % region
        self.stats.wal_pages_written += 1
        self.device.flush()
        self._partial_fill = 0

    @staticmethod
    def replay_scan(device: Ssd):
        """Post-crash scan of the WAL region.

        Returns the payloads of commits newer than the latest durable
        checkpoint marker, ordered by commit sequence.  Payload pages are
        deduplicated by sequence number (a commit spanning several WAL
        pages repeats its payload on each)."""
        region = max(1, device.logical_pages // 2)
        commits = {}
        horizon = 0
        for lpn in range(region):
            if not device.ftl.is_mapped(lpn):
                continue
            record = device.ftl.read(lpn)
            if not isinstance(record, tuple) or not record:
                continue
            if record[0] == "wal":
                __, seq, payload = record
                commits[seq] = payload
            elif record[0] == "walckpt":
                horizon = max(horizon, record[1])
        return [commits[seq] for seq in sorted(commits) if seq > horizon]
