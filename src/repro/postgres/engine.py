"""Heap-table engine with WAL and the full_page_writes switch.

The pgbench experiment's performance lives entirely in the commit path:
every transaction updates a handful of heap rows, logs WAL, and fsyncs.
With ``full_page_writes`` on, the *first* touch of each heap page after a
checkpoint adds a full page image to the WAL; with it off, only the small
logical records are written — and the paper observes throughput roughly
doubling.  (With a SHARE-capable device, PostgreSQL could turn the option
off safely; the experiment quantifies the headroom.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro.errors import EngineError
from repro.postgres.wal import Wal
from repro.ssd.device import Ssd


@dataclass(frozen=True)
class PostgresConfig:
    """Engine tunables.

    ``checkpoint_interval_commits`` stands in for checkpoint_timeout /
    max_wal_size: how many commits pass between checkpoints, which resets
    the first-touch set and forces dirty heap pages to the data device.
    """

    full_page_writes: bool = True
    rows_per_page: int = 32
    checkpoint_interval_commits: int = 2000
    wal_record_bytes: int = 128

    def __post_init__(self) -> None:
        if self.rows_per_page < 1:
            raise ValueError(f"rows_per_page must be >= 1: {self.rows_per_page}")
        if self.checkpoint_interval_commits < 1:
            raise ValueError("checkpoint_interval_commits must be >= 1")


class PostgresEngine:
    """Minimal heap + WAL engine."""

    def __init__(self, data_ssd: Ssd, wal_ssd: Ssd,
                 config: Optional[PostgresConfig] = None) -> None:
        self.config = config or PostgresConfig()
        self.data_ssd = data_ssd
        self.faults = data_ssd.faults
        self.wal = Wal(wal_ssd, record_bytes=self.config.wal_record_bytes,
                       data_page_bytes=data_ssd.page_size)
        self._tables: Dict[str, int] = {}          # name -> first page id
        self._table_pages: Dict[str, int] = {}     # name -> page count
        self._next_page = 0
        self._buffer: Dict[int, Dict[int, Any]] = {}   # page id -> rows
        self._dirty: Set[int] = set()
        self._fpw_logged: Set[int] = set()
        self.commits = 0
        self.checkpoints = 0

    # -------------------------------------------------------------- schema

    def create_table(self, name: str, rows: int) -> None:
        """Create a heap table sized for ``rows`` rows, zero-filled."""
        if name in self._tables:
            raise EngineError(f"table exists: {name}")
        pages = -(-rows // self.config.rows_per_page)
        self._tables[name] = self._next_page
        self._table_pages[name] = pages
        for page_id in range(self._next_page, self._next_page + pages):
            self.data_ssd.write(page_id, ("heap", page_id, ()))
        self._next_page += pages

    def _page_of(self, table: str, row_id: int) -> int:
        first = self._tables.get(table)
        if first is None:
            raise EngineError(f"no such table: {table}")
        page_index = row_id // self.config.rows_per_page
        if page_index >= self._table_pages[table]:
            raise EngineError(
                f"row {row_id} beyond table {table!r} of "
                f"{self._table_pages[table]} pages")
        return first + page_index

    # ------------------------------------------------------------ row I/O

    def _load_page(self, page_id: int) -> Dict[int, Any]:
        rows = self._buffer.get(page_id)
        if rows is None:
            image = self.data_ssd.read(page_id)
            rows = dict(image[2])
            self._buffer[page_id] = rows
        return rows

    def read_row(self, table: str, row_id: int) -> Any:
        page_id = self._page_of(table, row_id)
        return self._load_page(page_id).get(row_id)

    def update_row(self, table: str, row_id: int, value: Any) -> None:
        """WAL-before-data update of one row."""
        page_id = self._page_of(table, row_id)
        rows = self._load_page(page_id)
        if self.config.full_page_writes and page_id not in self._fpw_logged:
            self.wal.log_full_page_image(page_id, ("before", tuple(rows.items())))
            self._fpw_logged.add(page_id)
        self.wal.log_record(("update", table, row_id, value))
        rows[row_id] = value
        self._dirty.add(page_id)

    def insert_row(self, table: str, row_id: int, value: Any) -> None:
        """Append-style insert (pgbench's history table)."""
        self.update_row(table, row_id, value)

    # -------------------------------------------------------------- commit

    def commit(self) -> None:
        """fsync the WAL; checkpoint on schedule."""
        self.wal.commit()
        self.faults.checkpoint("postgres.wal_commit")
        self.commits += 1
        if self.commits % self.config.checkpoint_interval_commits == 0:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Flush dirty heap pages to the data device and reset the
        first-touch (full-page-image) tracking."""
        self.faults.checkpoint("postgres.ckpt_begin")
        for page_id in sorted(self._dirty):
            rows = self._buffer[page_id]
            self.data_ssd.write(page_id,
                                ("heap", page_id, tuple(rows.items())))
        self.data_ssd.flush()
        self.wal.log_checkpoint_marker()
        self._dirty.clear()
        self._fpw_logged.clear()
        self.checkpoints += 1
        self.faults.checkpoint("postgres.ckpt_end")

    # --------------------------------------------------------------- stats

    @property
    def wal_stats(self):
        return self.wal.stats


def recover_row_state(data_ssd: Ssd, wal_ssd: Ssd,
                      tables: Dict[str, tuple]) -> Dict[str, Dict[int, Any]]:
    """Rebuild committed row state after a crash: read the surviving heap
    pages, then replay WAL commits past the last checkpoint marker.

    ``tables`` maps table name to ``(first_page, page_count)`` — the
    catalog lives with the workload harness, not on the device.  Full
    page images are ignored (they protect torn heap pages, which the
    simulated device never produces); ``update`` records carry the new
    value and are idempotent, so replay order only has to be by commit
    sequence, which :meth:`Wal.replay_scan` guarantees."""
    state: Dict[str, Dict[int, Any]] = {name: {} for name in tables}
    for name, (first, count) in tables.items():
        for page_id in range(first, first + count):
            if not data_ssd.ftl.is_mapped(page_id):
                continue
            record = data_ssd.ftl.read(page_id)
            if isinstance(record, tuple) and record and record[0] == "heap":
                state[name].update(dict(record[2]))
    for payload in Wal.replay_scan(wal_ssd):
        for entry in payload:
            if entry[0] != "rec":
                continue
            record = entry[1]
            if record[0] == "update" and record[1] in state:
                __, table, row_id, value = record
                state[table][row_id] = value
    return state
