"""PostgreSQL-like engine for the paper's in-text pgbench experiment.

Section 5.3.1 reports a side experiment: with ``full_page_writes`` off,
pgbench throughput roughly doubles and the WAL shrinks by about the volume
of the data pages it no longer embeds.  This package implements the two
mechanisms that experiment exercises: a heap with WAL-before-data, and the
full-page-image rule ("whenever a page is updated first after the last
checkpoint, the before-image of the page is saved in the WAL log").
"""

from repro.postgres.engine import PostgresConfig, PostgresEngine
from repro.postgres.wal import Wal, WalStats

__all__ = ["PostgresConfig", "PostgresEngine", "Wal", "WalStats"]
