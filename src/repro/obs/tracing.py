"""Span tracing on the virtual clock.

A span brackets one unit of work with virtual-time start/end stamps and
free-form attributes.  Spans nest: the tracer keeps an open-span stack, so
a single host operation is attributed all the way down —

    innodb.txn -> innodb.flush_batch -> innodb.dwb.flush
      -> host.file.pwrite -> device.write -> ftl.gc

— and the GC pass that stalled a doublewrite batch is one parent-chain
walk away.  Finished spans are emitted to the telemetry sink as plain
dicts (``{"type": "span", ...}``), which is also the JSONL schema.

All timestamps come from the shared :class:`repro.sim.clock.SimClock`;
the tracer never reads wall-clock time, so traces are exactly
reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.clock import SimClock


class Span:
    """One traced operation.  Use as a context manager; attach data with
    :meth:`set`.  Attributes must be JSON-serialisable."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "trace_id",
                 "start_us", "end_us", "attrs")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], trace_id: int, start_us: int,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.start_us = start_us
        self.end_us: Optional[int] = None
        self.attrs = attrs

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    @property
    def duration_us(self) -> int:
        if self.end_us is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_us - self.start_us

    def to_record(self) -> Dict[str, Any]:
        """The JSONL schema of a finished span."""
        return {
            "type": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "duration_us": self.duration_us,
            "attrs": self.attrs,
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer.finish(self)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, start_us={self.start_us})")


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    trace_id = 0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SuppressedRoot:
    """Marker for a sampled-out *root* span.

    While it is open the tracer hands NULL_SPAN to every child, so a
    skipped operation skips its whole subtree — the emitted trace never
    contains orphaned children whose parent was dropped.  Closing it
    (``__exit__``) re-arms the tracer for the next root."""

    __slots__ = ("_tracer",)
    name = ""
    span_id = 0
    parent_id = None
    trace_id = 0

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def set(self, **attrs: Any) -> "_SuppressedRoot":
        return self

    def __enter__(self) -> "_SuppressedRoot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._suppressing = False


class Tracer:
    """Factory and stack for nested spans.

    The sink is any object with ``emit(record: dict)``; the clock is bound
    late (the harness builds the telemetry object before the stack's
    clock exists).  Disabling the tracer (``enabled = False``) makes
    :meth:`span` return the shared null span, so paused telemetry skips
    record construction entirely.

    ``sample_every`` (1 = keep everything) implements sampled telemetry
    mode at *root-span* granularity: 1-in-N roots are traced in full, the
    other N-1 are suppressed together with their entire subtree.  Keeping
    whole trees (rather than sampling spans independently) preserves
    parent chains in the output, which the Chrome-trace exporter and the
    report's span tables both rely on.
    """

    def __init__(self, sink: Any, clock: Optional[SimClock] = None,
                 sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        self._sink = sink
        self._clock = clock
        self._stack: List[Span] = []
        self._next_id = 1
        self.enabled = True
        self.sample_every = sample_every
        self._root_seq = 0
        self._suppressing = False
        self._suppressed_root = _SuppressedRoot(self)

    def bind_clock(self, clock: SimClock) -> None:
        self._clock = clock

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current(self) -> Any:
        """The innermost open span (the null span when none is open)."""
        return self._stack[-1] if self._stack else NULL_SPAN

    def span(self, name: str, **attrs: Any) -> Any:
        """Open a child of the current span (or a new root)."""
        if not self.enabled or self._suppressing:
            return NULL_SPAN
        if not self._stack and self.sample_every > 1:
            self._root_seq += 1
            if (self._root_seq - 1) % self.sample_every:
                self._suppressing = True
                return self._suppressed_root
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=parent.trace_id if parent is not None else span_id,
            start_us=self._clock.now_us if self._clock is not None else 0,
            attrs=attrs,
        )
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close ``span`` and emit its record.  Closing out of order also
        closes any younger spans still open (defensive; normal use is
        strictly nested ``with`` blocks)."""
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.end_us = self._clock.now_us if self._clock is not None else 0
            self._sink.emit(top.to_record())
        span.end_us = self._clock.now_us if self._clock is not None else 0
        self._sink.emit(span.to_record())


class NullTracer:
    """Tracer stand-in for disabled telemetry."""

    __slots__ = ()
    enabled = False
    depth = 0
    current = NULL_SPAN

    def bind_clock(self, clock: SimClock) -> None:
        pass

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def finish(self, span: Any) -> None:
        pass


NULL_TRACER = NullTracer()
