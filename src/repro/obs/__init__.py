"""Unified observability for the SHARE reproduction stack.

Three pieces, one facade:

* :class:`MetricsRegistry` — counters / gauges / bounded histograms under
  hierarchical dotted names (``ftl.gc.copyback_pages``,
  ``innodb.dwb.share_batches``, ``couch.compaction.pages_moved``),
* :class:`Tracer` — nestable spans on the virtual clock, attributing one
  host operation through engine -> host file -> device command -> FTL ->
  GC/copyback work,
* sinks — JSONL export (:class:`JsonlSink`), in-memory capture
  (:class:`MemorySink`), and the no-op :class:`NullSink`.

Enable telemetry by building a :class:`Telemetry` and passing it to the
stack builders (or directly to :class:`repro.ssd.device.Ssd` and the
engines).  Components default to :data:`NULL_TELEMETRY`, whose
instruments and spans are shared no-ops, so the instrumentation is free
when disabled.  Render an artifact with ``python -m repro.tools.report``.
See ``docs/observability.md`` for the metric catalog, span hierarchy,
and JSONL schema.
"""

from repro.obs.registry import (
    DEFAULT_MAX_SAMPLES,
    BoundedHistogram,
    CounterMetric,
    GaugeMetric,
    MetricsRegistry,
    MetricsScope,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    NULL_SINK,
    NullSink,
    TeeSink,
    read_jsonl,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BoundedHistogram",
    "CounterMetric",
    "DEFAULT_MAX_SAMPLES",
    "GaugeMetric",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MetricsScope",
    "NULL_REGISTRY",
    "NULL_SINK",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullSink",
    "NullTracer",
    "Span",
    "TeeSink",
    "Telemetry",
    "Tracer",
    "read_jsonl",
]
