"""Unified observability for the SHARE reproduction stack.

Three pieces, one facade:

* :class:`MetricsRegistry` — counters / gauges / bounded histograms under
  hierarchical dotted names (``ftl.gc.copyback_pages``,
  ``innodb.dwb.share_batches``, ``couch.compaction.pages_moved``),
* :class:`Tracer` — nestable spans on the virtual clock, attributing one
  host operation through engine -> host file -> device command -> FTL ->
  GC/copyback work,
* sinks — JSONL export (:class:`JsonlSink`), in-memory capture
  (:class:`MemorySink`), and the no-op :class:`NullSink`.

Enable telemetry by building a :class:`Telemetry` and passing it to the
stack builders (or directly to :class:`repro.ssd.device.Ssd` and the
engines).  Components default to :data:`NULL_TELEMETRY`, whose
instruments and spans are shared no-ops, so the instrumentation is free
when disabled.  Render an artifact with ``python -m repro.tools.report``.
See ``docs/observability.md`` for the metric catalog, span hierarchy,
and JSONL schema.
"""

from repro.obs.chrometrace import (
    chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.profiling import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    PhaseTimer,
    hot_timer,
    run_with_cprofile,
)
from repro.obs.registry import (
    DEFAULT_MAX_SAMPLES,
    BoundedHistogram,
    CounterMetric,
    GaugeMetric,
    MetricsRegistry,
    MetricsScope,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    NULL_SINK,
    NullSink,
    TeeSink,
    read_jsonl,
)
from repro.obs.telemetry import (
    DEFAULT_SAMPLE_EVERY,
    NEVER_SAMPLER,
    NULL_TELEMETRY,
    OBS_MODES,
    Sampler,
    Telemetry,
    obs_mode,
    obs_sample_every,
)
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BoundedHistogram",
    "CounterMetric",
    "DEFAULT_MAX_SAMPLES",
    "DEFAULT_SAMPLE_EVERY",
    "GaugeMetric",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MetricsScope",
    "NEVER_SAMPLER",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_SINK",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullProfiler",
    "NullRegistry",
    "NullSink",
    "NullTracer",
    "OBS_MODES",
    "PhaseProfiler",
    "PhaseTimer",
    "Sampler",
    "Span",
    "TeeSink",
    "Telemetry",
    "Tracer",
    "chrome_trace",
    "export_chrome_trace",
    "hot_timer",
    "obs_mode",
    "obs_sample_every",
    "read_jsonl",
    "run_with_cprofile",
    "validate_chrome_trace",
]
