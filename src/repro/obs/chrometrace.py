"""Chrome-trace (Trace Event Format) export of a simulated run.

Produces a ``trace.json`` loadable by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev), combining the three timelines the stack
records on the virtual clock:

* **host spans** (pid 1) — the span tracer's nested operations
  (``innodb.txn`` → ``device.write`` → ``ftl.gc`` ...), one thread lane
  per nesting depth;
* **device commands** (one pid per device) — each host command drawn
  from its queue *arrival* to its completion, so admission wait is
  visible as bar length beyond the service time;
* **channel busy intervals** — one lane per flash channel showing when
  the media was actually occupied.

All timestamps are virtual microseconds, which is exactly the ``ts``
unit the Trace Event Format specifies — no conversion needed.  The
format reference is the "Trace Event Format" document; only ``"X"``
(complete) and ``"M"`` (metadata) events are emitted, the safest common
subset.

Typical use (what ``repro.tools.benchspeed`` does)::

    sink = MemorySink()
    telemetry = Telemetry(sink=sink)
    ...run...
    trace = chrome_trace(span_records=sink.records,
                         devices=[("ssd0", ssd.trace, ssd.intervals)])
    export_chrome_trace("results/trace.json", trace)
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

HOST_PID = 1
_METADATA_NAMES = ("process_name", "process_sort_index", "thread_name",
                   "thread_sort_index")


def _metadata(pid: int, tid: Optional[int], name: str,
              value: Any) -> Dict[str, Any]:
    event: Dict[str, Any] = {"name": name, "ph": "M", "pid": pid,
                             "args": {"name": value}
                             if name.endswith("_name")
                             else {"sort_index": value}}
    if tid is not None:
        event["tid"] = tid
    return event


def _span_depths(records: Sequence[Dict[str, Any]]) -> Dict[int, int]:
    """Nesting depth per span_id (roots are depth 0).  Records arrive
    children-first (a span is emitted when it *closes*), so depths are
    resolved by walking parent chains over the full id map."""
    parents = {r["span_id"]: r.get("parent_id") for r in records}
    depths: Dict[int, int] = {}

    def depth_of(span_id: int) -> int:
        known = depths.get(span_id)
        if known is not None:
            return known
        chain: List[int] = []
        current: Optional[int] = span_id
        while current is not None and current not in depths:
            chain.append(current)
            current = parents.get(current)
        base = depths[current] + 1 if current is not None else 0
        for offset, sid in enumerate(reversed(chain)):
            depths[sid] = base + offset
        return depths[span_id]

    for span_id in parents:
        depth_of(span_id)
    return depths


def chrome_trace(span_records: Iterable[Dict[str, Any]] = (),
                 devices: Sequence[Tuple[str, Any, Any]] = (),
                 ) -> Dict[str, Any]:
    """Build the Chrome-trace dict.

    ``span_records`` — finished-span dicts (``{"type": "span", ...}``)
    as captured by a :class:`~repro.obs.sinks.MemorySink` or loaded from
    a JSONL artifact; non-span records are ignored.

    ``devices`` — ``(name, io_trace, interval_trace)`` triples; either
    trace may be ``None``.  Each device becomes its own process with a
    ``commands`` lane (from the :class:`~repro.ssd.trace.IoTrace`) and
    one lane per flash channel (from the
    :class:`~repro.ssd.trace.IntervalTrace`).
    """
    events: List[Dict[str, Any]] = []

    spans = [r for r in span_records if r.get("type") == "span"]
    if spans:
        events.append(_metadata(HOST_PID, None, "process_name", "host spans"))
        events.append(_metadata(HOST_PID, None, "process_sort_index", 0))
        depths = _span_depths(spans)
        seen_tids = set()
        for record in spans:
            tid = depths.get(record["span_id"], 0)
            if tid not in seen_tids:
                seen_tids.add(tid)
                events.append(_metadata(HOST_PID, tid, "thread_name",
                                        f"depth {tid}"))
                events.append(_metadata(HOST_PID, tid, "thread_sort_index",
                                        tid))
            events.append({
                "name": record["name"],
                "cat": "span",
                "ph": "X",
                "ts": record["start_us"],
                "dur": max(0, record["end_us"] - record["start_us"]),
                "pid": HOST_PID,
                "tid": tid,
                "args": dict(record.get("attrs", {})),
            })

    for index, (name, io_trace, interval_trace) in enumerate(devices):
        pid = HOST_PID + 1 + index
        events.append(_metadata(pid, None, "process_name", f"device {name}"))
        events.append(_metadata(pid, None, "process_sort_index", pid))
        if io_trace is not None and len(io_trace):
            events.append(_metadata(pid, 0, "thread_name", "commands"))
            events.append(_metadata(pid, 0, "thread_sort_index", 0))
            for ev in io_trace:
                if ev.arrival_us:
                    ts = ev.arrival_us
                    dur = max(0, ev.timestamp_us - ev.arrival_us)
                else:
                    # Legacy event without arrival: draw the service time
                    # ending at completion.
                    ts = max(0, int(ev.timestamp_us - ev.latency_us))
                    dur = ev.latency_us
                events.append({
                    "name": ev.kind,
                    "cat": "command",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "lpn": ev.lpn,
                        "count": ev.count,
                        "latency_us": ev.latency_us,
                        "wait_us": ev.wait_us,
                        "gc_events": ev.gc_events,
                        "copyback_pages": ev.copyback_pages,
                    },
                })
        if interval_trace is not None and len(interval_trace):
            for channel in interval_trace.channels():
                tid = 1 + channel
                events.append(_metadata(pid, tid, "thread_name",
                                        f"channel {channel}"))
                events.append(_metadata(pid, tid, "thread_sort_index", tid))
            for channel, start_us, end_us in interval_trace.intervals():
                events.append({
                    "name": "busy",
                    "cat": "channel",
                    "ph": "X",
                    "ts": start_us,
                    "dur": max(0, end_us - start_us),
                    "pid": pid,
                    "tid": 1 + channel,
                    "args": {"channel": channel},
                })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: Dict[str, Any]) -> Dict[str, Any]:
    """Schema-check a trace dict against the Trace Event Format subset
    this exporter emits.  Raises :class:`ValueError` on the first
    violation; returns the trace unchanged so calls chain."""
    if not isinstance(trace, dict):
        raise ValueError(f"trace must be a dict, got {type(trace).__name__}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: events must be dicts")
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") not in _METADATA_NAMES:
                raise ValueError(
                    f"{where}: unknown metadata event {event.get('name')!r}")
            if not isinstance(event.get("args"), dict):
                raise ValueError(f"{where}: metadata events need dict args")
        elif ph == "X":
            if not isinstance(event.get("name"), str) or not event["name"]:
                raise ValueError(f"{where}: complete events need a name")
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"{where}: {key!r} must be a non-negative number, "
                        f"got {value!r}")
            for key in ("pid", "tid"):
                if not isinstance(event.get(key), int):
                    raise ValueError(f"{where}: {key!r} must be an int")
        else:
            raise ValueError(f"{where}: unsupported phase {ph!r}")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"trace is not JSON-serialisable: {exc}") from exc
    return trace


def export_chrome_trace(path: str, trace: Dict[str, Any]) -> str:
    """Validate and write ``trace`` to ``path``; returns the path."""
    validate_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
        fh.write("\n")
    return path
