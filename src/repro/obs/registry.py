"""Hierarchical metrics registry: counters, gauges, bounded histograms.

Every subsystem registers its instruments under dotted names
(``ftl.gc.copyback_pages``, ``innodb.dwb.share_batches``, ...) so one
:meth:`MetricsRegistry.snapshot` call yields the whole stack's state as a
flat, JSON-serialisable mapping.  Instruments are cached by name: looking
one up twice returns the same object, so hot paths resolve their handles
once at construction time and pay a single attribute call per event.

The null registry (:data:`NULL_REGISTRY`) hands out a shared no-op
instrument, which is how disabled telemetry costs ~nothing: the device
still calls ``self._m_writes.inc()``, but the call body is ``pass``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.sim.stats import distribution_summary, percentile

#: Reservoir size bounding a histogram's memory (see BoundedHistogram).
DEFAULT_MAX_SAMPLES = 4096

SnapshotValue = Union[int, float, Dict[str, float]]


def _check_name(name: str) -> str:
    if not name or any(c.isspace() for c in name):
        raise ValueError(f"metric names must be non-empty, no spaces: {name!r}")
    if name.startswith(".") or name.endswith(".") or ".." in name:
        raise ValueError(f"malformed dotted metric name: {name!r}")
    return name


class CounterMetric:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative: {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class GaugeMetric:
    """Last-write-wins value (queue depths, free-block counts, ratios)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


class BoundedHistogram:
    """Latency/size distribution with bounded memory.

    Count, total, min, and max are exact.  Percentiles come from a
    deterministic reservoir: the first ``max_samples`` values are kept
    verbatim; after that each new value replaces a pseudo-random slot with
    probability ``max_samples / seen`` (Vitter's algorithm R, driven by a
    private LCG so runs stay reproducible).  Percentile math reuses
    :func:`repro.sim.stats.percentile`, so summaries agree exactly with
    :class:`repro.sim.stats.Histogram` while the reservoir is not full.
    """

    __slots__ = ("name", "_samples", "_cap", "_seen", "_total", "_min",
                 "_max", "_lcg")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1: {max_samples}")
        self.name = name
        self._samples: List[float] = []
        self._cap = max_samples
        self._seen = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lcg = 0x2545F4914F6CDD1D

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be non-negative: {value}")
        value = float(value)
        self._seen += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._samples) < self._cap:
            self._samples.append(value)
            return
        # Reservoir replacement (algorithm R) with a deterministic LCG.
        self._lcg = (self._lcg * 6364136223846793005 + 1442695040888963407) \
            & 0xFFFFFFFFFFFFFFFF
        slot = (self._lcg >> 16) % self._seen
        if slot < self._cap:
            self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._seen

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if not self._seen:
            raise ValueError("mean of empty histogram")
        return self._total / self._seen

    @property
    def max(self) -> float:
        if not self._seen:
            raise ValueError("max of empty histogram")
        return self._max

    @property
    def min(self) -> float:
        if not self._seen:
            raise ValueError("min of empty histogram")
        return self._min

    def pct(self, p: float) -> float:
        if not self._samples:
            raise ValueError("percentile of empty histogram")
        return percentile(sorted(self._samples), p)

    def summary(self) -> Dict[str, float]:
        """Table-1-shaped summary (count/mean/p25/p50/p75/p99/max)."""
        if not self._seen:
            return {"count": 0}
        out: Dict[str, float] = {
            "count": self._seen,
            "total": self._total,
            "mean": self.mean,
        }
        out.update(distribution_summary(sorted(self._samples)))
        out["max"] = self._max
        return out

    def reset(self) -> None:
        self._samples.clear()
        self._seen = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")


class MetricsRegistry:
    """The stack-wide instrument namespace.

    ``counter``/``gauge``/``histogram`` create-or-return by dotted name;
    re-registering a name as a different kind is an error (two subsystems
    fighting over one name is always a bug).  :meth:`scope` returns a
    prefixed view so a component can register relative names.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind: type, *args) -> object:
        name = _check_name(name)
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {kind.__name__}")
        return instrument

    def counter(self, name: str) -> CounterMetric:
        return self._get(name, CounterMetric)

    def gauge(self, name: str) -> GaugeMetric:
        return self._get(name, GaugeMetric)

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_MAX_SAMPLES) -> BoundedHistogram:
        return self._get(name, BoundedHistogram, max_samples)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self, _check_name(prefix))

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, SnapshotValue]:
        """Flat dotted-name -> value (counters/gauges) or summary dict
        (histograms).  JSON-serialisable as-is."""
        out: Dict[str, SnapshotValue] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, BoundedHistogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value  # type: ignore[union-attr]
        return out

    def reset(self) -> None:
        """Zero every instrument (registrations survive; handles held by
        components stay valid).  Used at measurement-interval boundaries,
        mirroring ``Ssd.reset_measurement``."""
        for instrument in self._instruments.values():
            instrument.reset()  # type: ignore[union-attr]


class MetricsScope:
    """A registry view that prefixes every name with ``<prefix>.``."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    def counter(self, name: str) -> CounterMetric:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> GaugeMetric:
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_MAX_SAMPLES) -> BoundedHistogram:
        return self._registry.histogram(f"{self._prefix}.{name}", max_samples)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self._registry, f"{self._prefix}.{prefix}")


class _NullInstrument:
    """Accepts every instrument method as a no-op (shared singleton)."""

    __slots__ = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def record(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Registry stand-in for disabled telemetry: every lookup returns the
    shared no-op instrument and snapshots are empty."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_MAX_SAMPLES) -> _NullInstrument:
        return NULL_INSTRUMENT

    def scope(self, prefix: str) -> "NullRegistry":
        return self

    def names(self) -> List[str]:
        return []

    def snapshot(self) -> Dict[str, SnapshotValue]:
        return {}

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()
