"""Telemetry sinks: where finished spans and metric snapshots go.

Every record is a plain dict with a ``"type"`` key (``"span"`` or
``"metrics"``).  The JSONL format is one JSON object per line, so
artifacts stream to disk during a run and load back with
:func:`read_jsonl` for post-processing (``python -m repro.tools.report``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


class NullSink:
    """Drops everything.  The default, so telemetry wiring costs ~nothing
    when nobody asked for an artifact."""

    __slots__ = ()

    def emit(self, record: Dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


NULL_SINK = NullSink()


class MemorySink:
    """Keeps records in a list — the test/analysis sink."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("type") == "span"
                and (name is None or r.get("name") == name)]

    def metrics(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("type") == "metrics"]


class JsonlSink:
    """Streams records to a file, one JSON object per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self._emitted = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"sink for {self.path!r} is closed")
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")
        self._emitted += 1

    @property
    def emitted(self) -> int:
        return self._emitted

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TeeSink:
    """Fans every record out to several sinks (e.g. file + memory)."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks = list(sinks)

    def emit(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a telemetry artifact back into record dicts."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSONL: {exc}") from exc
    return records
