"""Wall-clock phase profiler for the simulator's hot paths.

Everything else in ``repro.obs`` measures *virtual* time — the simulated
device's microseconds.  This module measures the opposite axis: how many
*real* nanoseconds the pure-python simulator spends inside each hot
phase, which is what bounds large sweeps now that the event-driven core
(PR 5) made modeled time cheap.  The instrumented phases are the ones
ROADMAP item 2 names:

==================== =====================================================
phase                where it is charged
==================== =====================================================
``sim.dispatch``     :meth:`repro.sim.events.EventScheduler.step` firing
                     one event callback
``ncq.admit``        :meth:`repro.ssd.device.Ssd._issue` — queue
                     admission, media pricing, channel acquisition and
                     completion-event scheduling
``device.complete``  the whole completion callback (includes the two
                     below)
``obs.emit``         telemetry + trace delivery inside the completion
``ftl.l2p``          forward-map lookups/updates on the FTL read/write
                     path
``ftl.gc``           one whole reclaim pass (evacuate + erase)
``ftl.deltalog``     sealing/appending mapping-delta pages
==================== =====================================================

Phases may nest (``obs.emit`` runs inside ``device.complete``), so the
per-phase wall seconds are attributions, not a partition — the report
gives each phase's share of the *total* wall time, not of a sum.

Design for the hot path: a :class:`PhaseTimer` is resolved once at
component construction; per event the cost is one ``perf_counter_ns``
pair and two integer adds.  Components cache ``None`` instead of a timer
when profiling is disabled, so an unprofiled run pays a single attribute
load and branch per hook.  :data:`NULL_PROFILER` is the disabled
singleton the :class:`~repro.obs.telemetry.Telemetry` facade defaults
to.

``python -m repro.tools.benchspeed --cprofile out.pstats`` layers a full
:mod:`cProfile` capture (via :func:`run_with_cprofile`) on top when the
per-phase numbers are not enough.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Callable, Dict, Optional

#: Canonical phase names, in report order.
HOT_PHASES = ("sim.dispatch", "ncq.admit", "device.complete", "obs.emit",
              "ftl.l2p", "ftl.gc", "ftl.deltalog")


class PhaseTimer:
    """Accumulator for one phase: total nanoseconds and event count.

    Two usage styles:

    * hot path — ``t0 = perf_counter_ns(); ...; timer.add(perf_counter_ns() - t0)``
      (no allocation, no context-manager dispatch);
    * cold path — ``with timer: ...`` (re-entrant: only the outermost
      entry accumulates, so a GC pass that triggers a nested pass is
      counted once).
    """

    __slots__ = ("name", "ns", "count", "_depth", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self.ns = 0
        self.count = 0
        self._depth = 0
        self._t0 = 0

    def add(self, elapsed_ns: int) -> None:
        """Charge one timed interval (hot-path API)."""
        self.ns += elapsed_ns
        self.count += 1

    @property
    def seconds(self) -> float:
        return self.ns / 1e9

    def __enter__(self) -> "PhaseTimer":
        self._depth += 1
        if self._depth == 1:
            self._t0 = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._depth -= 1
        if self._depth == 0:
            self.add(perf_counter_ns() - self._t0)

    def reset(self) -> None:
        self.ns = 0
        self.count = 0

    def __repr__(self) -> str:
        return (f"PhaseTimer({self.name!r}, {self.seconds:.6f}s, "
                f"count={self.count})")


class PhaseProfiler:
    """Registry of :class:`PhaseTimer` accumulators by phase name.

    Create one, hand it to :class:`~repro.obs.telemetry.Telemetry`
    (``Telemetry(profiler=PhaseProfiler())``), build the stack — every
    instrumented layer resolves its timers from
    ``telemetry.profiler`` at construction.  After the run,
    :meth:`report` renders the wall-clock accounting.
    """

    enabled = True

    def __init__(self) -> None:
        self._timers: Dict[str, PhaseTimer] = {}

    def timer(self, name: str) -> PhaseTimer:
        """Create-or-return the accumulator for ``name``."""
        timer = self._timers.get(name)
        if timer is None:
            timer = PhaseTimer(name)
            self._timers[name] = timer
        return timer

    def phase(self, name: str) -> PhaseTimer:
        """Context-manager convenience for cold paths:
        ``with profiler.phase("ftl.gc"): ...``."""
        return self.timer(name)

    def timers(self) -> Dict[str, PhaseTimer]:
        return dict(self._timers)

    def total_seconds(self) -> float:
        """Sum of all phase seconds.  Phases nest, so this can exceed
        the real elapsed wall time — use it for sanity checks only."""
        return sum(t.seconds for t in self._timers.values())

    def report(self, total_wall_s: Optional[float] = None
               ) -> Dict[str, Any]:
        """JSON-serialisable accounting: per-phase wall seconds, event
        counts, mean microseconds per event, and events/sec — plus each
        phase's share of ``total_wall_s`` when the caller measured the
        run's envelope."""
        phases: Dict[str, Dict[str, float]] = {}
        ordered = [n for n in HOT_PHASES if n in self._timers]
        ordered += [n for n in sorted(self._timers) if n not in HOT_PHASES]
        for name in ordered:
            timer = self._timers[name]
            seconds = timer.seconds
            entry: Dict[str, float] = {
                "wall_s": seconds,
                "count": timer.count,
                "mean_us": (seconds * 1e6 / timer.count
                            if timer.count else 0.0),
                "events_per_s": (timer.count / seconds
                                 if seconds > 0 else 0.0),
            }
            if total_wall_s and total_wall_s > 0:
                entry["share_of_total"] = seconds / total_wall_s
            phases[name] = entry
        out: Dict[str, Any] = {"phases": phases}
        if total_wall_s is not None:
            out["total_wall_s"] = total_wall_s
        return out

    def format(self, total_wall_s: Optional[float] = None) -> str:
        """Human-readable table of :meth:`report`."""
        report = self.report(total_wall_s)
        lines = ["phase                    wall_s      count   mean_us  share"]
        for name, row in report["phases"].items():
            share = row.get("share_of_total")
            share_text = f"{share * 100:5.1f}%" if share is not None else "    —"
            lines.append(f"{name:<22} {row['wall_s']:8.4f} {row['count']:>10,}"
                         f" {row['mean_us']:>9.2f}  {share_text}")
        if total_wall_s is not None:
            lines.append(f"{'(total run)':<22} {total_wall_s:8.4f}")
        return "\n".join(lines)

    def reset(self) -> None:
        for timer in self._timers.values():
            timer.reset()


class _NullTimer:
    """Shared no-op accumulator (context-manager compatible)."""

    __slots__ = ()
    name = ""
    ns = 0
    count = 0
    seconds = 0.0

    def add(self, elapsed_ns: int) -> None:
        pass

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def reset(self) -> None:
        pass


NULL_TIMER = _NullTimer()


class NullProfiler:
    """Disabled profiler: ``enabled`` is False (components cache ``None``
    instead of hot-path timers) and every lookup returns the shared
    no-op timer (cold-path ``with`` blocks stay valid)."""

    __slots__ = ()
    enabled = False

    def timer(self, name: str) -> _NullTimer:
        return NULL_TIMER

    def phase(self, name: str) -> _NullTimer:
        return NULL_TIMER

    def timers(self) -> Dict[str, PhaseTimer]:
        return {}

    def total_seconds(self) -> float:
        return 0.0

    def report(self, total_wall_s: Optional[float] = None) -> Dict[str, Any]:
        out: Dict[str, Any] = {"phases": {}}
        if total_wall_s is not None:
            out["total_wall_s"] = total_wall_s
        return out

    def format(self, total_wall_s: Optional[float] = None) -> str:
        return "profiling disabled"

    def reset(self) -> None:
        pass


NULL_PROFILER = NullProfiler()


def hot_timer(profiler: Any, name: str) -> Optional[PhaseTimer]:
    """Resolve a hot-path timer handle: a real :class:`PhaseTimer` when
    ``profiler`` is enabled, else ``None`` — the convention hot loops
    use (``if pt is not None: ...``) so disabled profiling costs one
    branch."""
    if profiler is not None and getattr(profiler, "enabled", False):
        return profiler.timer(name)
    return None


def run_with_cprofile(fn: Callable[[], Any], pstats_path: str):
    """Run ``fn`` under :mod:`cProfile` and dump the stats to
    ``pstats_path`` (loadable with ``python -m pstats``).  Returns
    ``fn``'s result."""
    import cProfile
    profile = cProfile.Profile()
    try:
        return profile.runcall(fn)
    finally:
        profile.dump_stats(pstats_path)
