"""The telemetry facade wired through the stack.

One :class:`Telemetry` object is shared by every layer of a simulated
stack (device, FTL, filesystem, engines, benchmark driver).  It bundles

* a :class:`~repro.obs.registry.MetricsRegistry` components register
  instruments into,
* a :class:`~repro.obs.tracing.Tracer` whose span stack threads
  attribution across layers, and
* a sink receiving finished spans and periodic metric snapshots.

Construction order: the harness creates the telemetry (with its sink and
snapshot interval), then builds the stack; the device binds the shared
clock via :meth:`bind_clock` and calls :meth:`maybe_snapshot` as virtual
time passes, which is what drives the periodic snapshotter.

``NULL_TELEMETRY`` is the always-disabled singleton every component
defaults to.  Its registry hands out shared no-op instruments and its
tracer returns a shared no-op span, so instrumented hot paths cost one
or two trivially-inlined method calls when telemetry is off.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.sinks import NULL_SINK, NullSink
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.clock import SimClock


class Telemetry:
    """Live telemetry: metrics + tracing + sink + periodic snapshots."""

    def __init__(self, sink: Optional[Any] = None,
                 snapshot_interval_us: int = 0) -> None:
        if snapshot_interval_us < 0:
            raise ValueError(
                f"snapshot interval must be >= 0: {snapshot_interval_us}")
        self.sink = sink if sink is not None else NullSink()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self.sink)
        self.enabled = True
        self.snapshot_interval_us = snapshot_interval_us
        self._last_snapshot_us = 0
        self._clock: Optional[SimClock] = None

    # ----------------------------------------------------------- lifecycle

    def bind_clock(self, clock: SimClock) -> None:
        """Attach the stack's virtual clock (idempotent; the first device
        built does this)."""
        self._clock = clock
        self.tracer.bind_clock(clock)

    def pause(self) -> None:
        """Stop emitting spans and snapshots (load/warm-up phases).
        Metric instruments keep counting; call ``metrics.reset()`` at the
        measurement boundary to zero them."""
        self.enabled = False
        self.tracer.enabled = False

    def resume(self) -> None:
        self.enabled = True
        self.tracer.enabled = True

    def reset_measurement(self) -> None:
        """Zero metrics and restart the snapshot cadence — the telemetry
        side of ``Ssd.reset_measurement``."""
        self.metrics.reset()
        self._last_snapshot_us = self._clock.now_us if self._clock else 0

    # ----------------------------------------------------------- snapshots

    def maybe_snapshot(self, now_us: int) -> bool:
        """Emit a metrics snapshot when at least one snapshot interval of
        virtual time has passed.  Called from the device's command
        completion path; cheap when disabled or not yet due."""
        if (not self.enabled or not self.snapshot_interval_us
                or now_us - self._last_snapshot_us < self.snapshot_interval_us):
            return False
        self._last_snapshot_us = now_us
        self.snapshot(now_us)
        return True

    def snapshot(self, now_us: Optional[int] = None) -> Dict[str, Any]:
        """Emit (and return) a metrics snapshot record."""
        if now_us is None:
            now_us = self._clock.now_us if self._clock else 0
        record = {"type": "metrics", "t_us": now_us,
                  "metrics": self.metrics.snapshot()}
        self.sink.emit(record)
        return record

    def close(self) -> Dict[str, Any]:
        """Final snapshot, then close the sink.  Returns the snapshot so
        callers can report without re-reading the artifact."""
        record = self.snapshot()
        self.sink.close()
        return record


class _NullTelemetry:
    """The disabled singleton.  Everything is a no-op; ``enabled`` is
    False forever so guards can skip optional work."""

    __slots__ = ()
    enabled = False
    metrics = NULL_REGISTRY
    tracer = NULL_TRACER
    sink = NULL_SINK
    snapshot_interval_us = 0

    def bind_clock(self, clock: SimClock) -> None:
        pass

    def pause(self) -> None:
        pass

    def resume(self) -> None:
        pass

    def reset_measurement(self) -> None:
        pass

    def maybe_snapshot(self, now_us: int) -> bool:
        return False

    def snapshot(self, now_us: Optional[int] = None) -> Dict[str, Any]:
        return {"type": "metrics", "t_us": now_us or 0, "metrics": {}}

    def close(self) -> Dict[str, Any]:
        return self.snapshot()


NULL_TELEMETRY = _NullTelemetry()
