"""The telemetry facade wired through the stack.

One :class:`Telemetry` object is shared by every layer of a simulated
stack (device, FTL, filesystem, engines, benchmark driver).  It bundles

* a :class:`~repro.obs.registry.MetricsRegistry` components register
  instruments into,
* a :class:`~repro.obs.tracing.Tracer` whose span stack threads
  attribution across layers, and
* a sink receiving finished spans and periodic metric snapshots.

Construction order: the harness creates the telemetry (with its sink and
snapshot interval), then builds the stack; the device binds the shared
clock via :meth:`bind_clock` and calls :meth:`maybe_snapshot` as virtual
time passes, which is what drives the periodic snapshotter.

``NULL_TELEMETRY`` is the always-disabled singleton every component
defaults to.  Its registry hands out shared no-op instruments and its
tracer returns a shared no-op span, so instrumented hot paths cost one
or two trivially-inlined method calls when telemetry is off.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.obs.profiling import NULL_PROFILER
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.sinks import NULL_SINK, NullSink
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.clock import SimClock

#: Valid values of the REPRO_OBS environment variable / ``mode`` argument.
OBS_MODES = ("off", "sampled", "full")

#: Default 1-in-N rate for sampled mode (REPRO_OBS_SAMPLE overrides).
DEFAULT_SAMPLE_EVERY = 64


def obs_mode(default: str = "full") -> str:
    """Resolve the telemetry mode from ``REPRO_OBS`` (off|sampled|full)."""
    mode = os.environ.get("REPRO_OBS", default).strip().lower() or default
    if mode not in OBS_MODES:
        raise ValueError(
            f"REPRO_OBS must be one of {OBS_MODES}, got {mode!r}")
    return mode


def obs_sample_every(default: int = DEFAULT_SAMPLE_EVERY) -> int:
    """Resolve the sampled-mode 1-in-N rate from ``REPRO_OBS_SAMPLE``.

    A malformed value fails fast with an error naming the variable and
    what it accepts, instead of an anonymous ``int()`` traceback from
    deep inside telemetry setup."""
    raw = os.environ.get("REPRO_OBS_SAMPLE", "").strip()
    if not raw:
        return default
    try:
        every = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_OBS_SAMPLE must be an integer >= 1 (the 1-in-N "
            f"sampling rate for REPRO_OBS=sampled), got {raw!r}") from None
    if every < 1:
        raise ValueError(
            f"REPRO_OBS_SAMPLE must be an integer >= 1 (the 1-in-N "
            f"sampling rate for REPRO_OBS=sampled), got {every}")
    return every


class Sampler:
    """Deterministic 1-in-N gate for hot-path recordings.

    ``hit()`` is True on the first call and then every ``every``-th call
    — counting, not randomness, so sampled runs are exactly reproducible.
    With ``every == 1`` it is always True (full mode).
    """

    __slots__ = ("every", "_countdown")

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"sampler period must be >= 1: {every}")
        self.every = every
        self._countdown = 1  # first event always hits

    def hit(self) -> bool:
        self._countdown -= 1
        if self._countdown:
            return False
        self._countdown = self.every
        return True

    def reset(self) -> None:
        self._countdown = 1


class _NeverSampler:
    """Shared always-miss gate used when telemetry is off entirely."""

    __slots__ = ()
    every = 0

    def hit(self) -> bool:
        return False

    def reset(self) -> None:
        pass


NEVER_SAMPLER = _NeverSampler()


class Telemetry:
    """Live telemetry: metrics + tracing + sink + periodic snapshots.

    ``mode`` selects the observability cost tier (default: the
    ``REPRO_OBS`` environment variable, falling back to ``"full"``):

    * ``"full"`` — every event recorded, every span traced (the
      behaviour of earlier PRs, bit-identical).
    * ``"sampled"`` — per-op histogram/gauge recordings pass a 1-in-N
      :class:`Sampler` gate and only 1-in-N root spans (with their whole
      subtree) are traced; counters stay exact.  N defaults to
      ``REPRO_OBS_SAMPLE`` (64).
    * ``"off"`` — the registry is swapped for the shared null registry
      and the tracer is disabled, so even components that don't guard
      their metric handles record nothing; :meth:`resume` stays off.

    ``profiler`` optionally attaches a
    :class:`~repro.obs.profiling.PhaseProfiler`; instrumented layers
    resolve wall-clock timers from ``telemetry.profiler`` at
    construction time.
    """

    def __init__(self, sink: Optional[Any] = None,
                 snapshot_interval_us: int = 0,
                 mode: Optional[str] = None,
                 sample_every: Optional[int] = None,
                 profiler: Optional[Any] = None) -> None:
        if snapshot_interval_us < 0:
            raise ValueError(
                f"snapshot interval must be >= 0: {snapshot_interval_us}")
        if mode is None:
            mode = obs_mode()
        if mode not in OBS_MODES:
            raise ValueError(f"mode must be one of {OBS_MODES}, got {mode!r}")
        self.mode = mode
        self.sink = sink if sink is not None else NullSink()
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        if mode == "sampled":
            if sample_every is None:
                sample_every = obs_sample_every()
            self.sample_every = sample_every
            self.sampler: Any = Sampler(sample_every)
            self.metrics: Any = MetricsRegistry()
            self.tracer: Any = Tracer(self.sink, sample_every=sample_every)
            self.enabled = True
        elif mode == "off":
            self.sample_every = 0
            self.sampler = NEVER_SAMPLER
            self.metrics = NULL_REGISTRY
            self.tracer = Tracer(self.sink)
            self.tracer.enabled = False
            self.enabled = False
        else:  # full
            self.sample_every = 1
            self.sampler = Sampler(1)
            self.metrics = MetricsRegistry()
            self.tracer = Tracer(self.sink)
            self.enabled = True
        self.snapshot_interval_us = snapshot_interval_us
        self._last_snapshot_us = 0
        self._clock: Optional[SimClock] = None

    # ----------------------------------------------------------- lifecycle

    def bind_clock(self, clock: SimClock) -> None:
        """Attach the stack's virtual clock (idempotent; the first device
        built does this)."""
        self._clock = clock
        self.tracer.bind_clock(clock)

    def pause(self) -> None:
        """Stop emitting spans and snapshots (load/warm-up phases).
        Metric instruments keep counting; call ``metrics.reset()`` at the
        measurement boundary to zero them."""
        self.enabled = False
        self.tracer.enabled = False

    def resume(self) -> None:
        if self.mode == "off":
            return
        self.enabled = True
        self.tracer.enabled = True

    def reset_measurement(self) -> None:
        """Zero metrics and restart the snapshot cadence — the telemetry
        side of ``Ssd.reset_measurement``."""
        self.metrics.reset()
        self._last_snapshot_us = self._clock.now_us if self._clock else 0

    # ----------------------------------------------------------- snapshots

    def maybe_snapshot(self, now_us: int) -> bool:
        """Emit a metrics snapshot when at least one snapshot interval of
        virtual time has passed.  Called from the device's command
        completion path; cheap when disabled or not yet due."""
        if (not self.enabled or not self.snapshot_interval_us
                or now_us - self._last_snapshot_us < self.snapshot_interval_us):
            return False
        self._last_snapshot_us = now_us
        self.snapshot(now_us)
        return True

    def snapshot(self, now_us: Optional[int] = None) -> Dict[str, Any]:
        """Emit (and return) a metrics snapshot record."""
        if now_us is None:
            now_us = self._clock.now_us if self._clock else 0
        record = {"type": "metrics", "t_us": now_us,
                  "metrics": self.metrics.snapshot()}
        self.sink.emit(record)
        return record

    def close(self) -> Dict[str, Any]:
        """Final snapshot, then close the sink.  Returns the snapshot so
        callers can report without re-reading the artifact."""
        record = self.snapshot()
        self.sink.close()
        return record


class _NullTelemetry:
    """The disabled singleton.  Everything is a no-op; ``enabled`` is
    False forever so guards can skip optional work."""

    __slots__ = ()
    enabled = False
    mode = "off"
    metrics = NULL_REGISTRY
    tracer = NULL_TRACER
    sink = NULL_SINK
    sampler = NEVER_SAMPLER
    sample_every = 0
    profiler = NULL_PROFILER
    snapshot_interval_us = 0

    def bind_clock(self, clock: SimClock) -> None:
        pass

    def pause(self) -> None:
        pass

    def resume(self) -> None:
        pass

    def reset_measurement(self) -> None:
        pass

    def maybe_snapshot(self, now_us: int) -> bool:
        return False

    def snapshot(self, now_us: Optional[int] = None) -> Dict[str, Any]:
        return {"type": "metrics", "t_us": now_us or 0, "metrics": {}}

    def close(self) -> Dict[str, Any]:
        return self.snapshot()


NULL_TELEMETRY = _NullTelemetry()
