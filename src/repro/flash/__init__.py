"""NAND flash array model: geometry, timing, and the chip-level rules
(no overwrite, erase-before-rewrite, sequential in-block programming)."""

from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray, PageState
from repro.flash.timing import FlashTiming, MLC_TIMING, FAST_TIMING

__all__ = [
    "FlashGeometry",
    "NandArray",
    "PageState",
    "FlashTiming",
    "MLC_TIMING",
    "FAST_TIMING",
]
