"""Flash array geometry.

The OpenSSD generation used in the paper exposes a page-mapped array of MLC
NAND; for the reproduction what matters is the page/block structure (GC works
in block units, programs in page units) and the capacity arithmetic, so the
geometry is parameterised and kept modest by default so experiments stay
laptop-fast.
"""

from __future__ import annotations

from dataclasses import dataclass

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class FlashGeometry:
    """Physical shape of the NAND array.

    Attributes
    ----------
    page_size:
        Bytes per physical page.  The FTL maps whole pages, matching the
        paper's "FTL mapping granularity".
    pages_per_block:
        Program/erase asymmetry: programs address pages, erases address
        blocks of this many pages.
    block_count:
        Total physical blocks, including over-provisioned ones not exposed
        through the logical address space.
    overprovision_ratio:
        Fraction of raw capacity hidden from the host; the paper's OpenSSD
        aging pre-run drives GC behaviour that only exists because the
        exposed logical space is smaller than the raw space.
    channel_count:
        Independent NAND channels.  Blocks are striped across channels
        (``block % channel_count``), so programs/reads/erases on blocks
        of different channels can overlap in time.  1 (the default)
        reproduces the fully serial device model exactly.
    """

    page_size: int = 4 * KIB
    pages_per_block: int = 128
    block_count: int = 1024
    overprovision_ratio: float = 0.08
    channel_count: int = 1

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size % 512:
            raise ValueError(f"page_size must be a positive multiple of 512: {self.page_size}")
        if self.pages_per_block <= 0:
            raise ValueError(f"pages_per_block must be positive: {self.pages_per_block}")
        if self.block_count <= 1:
            raise ValueError(f"block_count must be > 1: {self.block_count}")
        if not 0.0 < self.overprovision_ratio < 0.5:
            raise ValueError(
                f"overprovision_ratio must be in (0, 0.5): {self.overprovision_ratio}")
        if not 1 <= self.channel_count <= self.block_count:
            raise ValueError(
                f"channel_count must be in [1, block_count]: {self.channel_count}")

    @property
    def total_pages(self) -> int:
        """Raw physical pages in the array."""
        return self.block_count * self.pages_per_block

    @property
    def raw_capacity_bytes(self) -> int:
        return self.total_pages * self.page_size

    @property
    def logical_pages(self) -> int:
        """Pages exposed through the logical (LPN) address space."""
        return int(self.total_pages * (1.0 - self.overprovision_ratio))

    @property
    def logical_capacity_bytes(self) -> int:
        return self.logical_pages * self.page_size

    def block_of(self, ppn: int) -> int:
        """Block index containing physical page ``ppn``."""
        self.check_ppn(ppn)
        return ppn // self.pages_per_block

    def page_in_block(self, ppn: int) -> int:
        """Offset of ``ppn`` within its block."""
        self.check_ppn(ppn)
        return ppn % self.pages_per_block

    def first_ppn(self, block: int) -> int:
        """First physical page number of ``block``."""
        self.check_block(block)
        return block * self.pages_per_block

    def channel_of(self, block: int) -> int:
        """NAND channel serving ``block`` (blocks stripe round-robin)."""
        self.check_block(block)
        return block % self.channel_count

    def channel_of_ppn(self, ppn: int) -> int:
        """NAND channel serving physical page ``ppn``."""
        self.check_ppn(ppn)
        return (ppn // self.pages_per_block) % self.channel_count

    def check_ppn(self, ppn: int) -> None:
        if not 0 <= ppn < self.total_pages:
            raise ValueError(f"PPN out of range [0, {self.total_pages}): {ppn}")

    def check_block(self, block: int) -> None:
        if not 0 <= block < self.block_count:
            raise ValueError(f"block out of range [0, {self.block_count}): {block}")

    @classmethod
    def small(cls, page_size: int = 4 * KIB,
              channel_count: int = 1) -> "FlashGeometry":
        """A tiny array for unit tests (64 blocks x 32 pages)."""
        return cls(page_size=page_size, pages_per_block=32, block_count=64,
                   overprovision_ratio=0.125, channel_count=channel_count)
