"""NAND array: the persistent media under the FTL.

The array enforces the three chip-level rules the paper's design hinges on:

1. a programmed page cannot be overwritten (*no-overwrite*),
2. a block must be erased before any of its pages are reprogrammed,
3. pages inside a block are programmed in ascending order (MLC rule).

Page payloads are opaque Python objects ("page images") plus a spare-area
record written alongside the data; the FTL uses the spare area to stamp the
owning LPN / metadata tag, exactly as real firmware stamps out-of-band
bytes.  The array is the *only* state that survives an injected power
failure — everything above it (mapping tables in DRAM, buffer pools) is
volatile and rebuilt during recovery.

When a :class:`~repro.sim.faults.FaultPlan` with armed media faults is
attached, chip operations can fail the way real NAND fails:

* ``read`` raises :class:`UncorrectableReadError` (transient or sticky) or
  returns a :data:`~repro.sim.faults.CORRUPT_PAYLOAD`-wrapped payload;
* ``program`` raises :class:`ProgramFailError` and leaves the page
  *failed* — it consumed its program slot (the in-order rule still holds)
  but holds no readable data;
* ``erase`` raises :class:`EraseFailError` and leaves the block's contents
  untouched.

The spare area is modelled as separately protected (real firmware guards
OOB bytes with their own ECC), so ``read_spare`` and ``scan_block`` never
consult read faults — recovery's OOB scan stays deterministic even on a
degraded device.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, List, Optional, Tuple

from repro.errors import (EraseFailError, ProgramError, ProgramFailError,
                          ReadError, UncorrectableReadError)
from repro.flash.geometry import FlashGeometry
from repro.sim.faults import CORRUPT_PAYLOAD, NO_FAULTS, FaultPlan


class PageState(Enum):
    """Lifecycle of one physical page."""

    ERASED = "erased"
    PROGRAMMED = "programmed"


@dataclass
class _Page:
    state: PageState = PageState.ERASED
    data: Any = None
    spare: Any = None
    failed: bool = False   # program failure consumed the page; no payload


class NandArray:
    """The raw flash media.

    The array tracks per-block erase counts (device wear, which the paper's
    lifespan argument is about) and cumulative program/read/erase operation
    counts.  It charges **no** time itself — latency accounting lives in the
    SSD facade so GC-internal copybacks can be priced differently from
    host-visible transfers.
    """

    def __init__(self, geometry: FlashGeometry,
                 faults: FaultPlan = NO_FAULTS) -> None:
        self.geometry = geometry
        self.faults = faults
        # Geometry constants cached as plain attributes: program/read run
        # once per simulated chip operation, and the attribute+method hop
        # through ``geometry`` is measurable at that rate.
        self._total_pages = geometry.total_pages
        self._pages_per_block = geometry.pages_per_block
        self._channel_count = geometry.channel_count
        self._pages: List[_Page] = [_Page() for _ in range(geometry.total_pages)]
        self._next_program_offset: List[int] = [0] * geometry.block_count
        self.erase_counts: List[int] = [0] * geometry.block_count
        self.total_programs = 0
        self.total_reads = 0
        self.total_erases = 0
        # Chip operations per channel (programs + reads + erases): the
        # raw demand the channel-striped allocator is trying to balance.
        self.channel_ops: List[int] = [0] * geometry.channel_count
        # Media-failure accounting (injected faults that actually fired).
        self.failed_reads = 0
        self.failed_programs = 0
        self.failed_erases = 0

    def _count_channel_op(self, block: int) -> None:
        self.channel_ops[block % self.geometry.channel_count] += 1

    # ------------------------------------------------------------------ ops

    def program(self, ppn: int, data: Any, spare: Any = None) -> None:
        """Program one page.  Enforces no-overwrite and in-order rules.

        On an injected program failure the page transitions to a *failed*
        PROGRAMMED state: it consumed its program slot (so the in-order
        rule is preserved for the rest of the block) but holds no data —
        any read of it raises :class:`UncorrectableReadError`, and the
        OOB scan skips it."""
        if not 0 <= ppn < self._total_pages:
            self.geometry.check_ppn(ppn)   # raises with the range message
        page = self._pages[ppn]
        if page.state is not PageState.ERASED:
            raise ProgramError(f"PPN {ppn} already programmed; erase block first")
        block = ppn // self._pages_per_block
        offset = ppn - block * self._pages_per_block
        expected = self._next_program_offset[block]
        if offset != expected:
            raise ProgramError(
                f"out-of-order program in block {block}: page offset {offset}, "
                f"expected {expected}")
        media = self.faults.media
        if media.active:
            try:
                media.on_program(ppn)
            except ProgramFailError:
                page.state = PageState.PROGRAMMED
                page.data = None
                page.spare = None
                page.failed = True
                self._next_program_offset[block] = offset + 1
                self.total_programs += 1
                self.channel_ops[block % self._channel_count] += 1
                self.failed_programs += 1
                raise
        page.state = PageState.PROGRAMMED
        page.data = data
        page.spare = spare
        page.failed = False
        self._next_program_offset[block] = offset + 1
        self.total_programs += 1
        self.channel_ops[block % self._channel_count] += 1

    def read(self, ppn: int) -> Any:
        """Read the data payload of a programmed page."""
        if not 0 <= ppn < self._total_pages:
            self.geometry.check_ppn(ppn)   # raises with the range message
        page = self._pages[ppn]
        if page.state is not PageState.PROGRAMMED:
            raise ReadError(f"PPN {ppn} is erased; nothing to read")
        self.total_reads += 1
        self.channel_ops[(ppn // self._pages_per_block)
                         % self._channel_count] += 1
        if page.failed:
            self.failed_reads += 1
            raise UncorrectableReadError(
                f"PPN {ppn} failed during program; payload unreadable")
        media = self.faults.media
        if media.active:
            block = self.geometry.block_of(ppn)
            try:
                corrupt = media.on_read(ppn, self.erase_counts[block])
            except UncorrectableReadError:
                self.failed_reads += 1
                raise
            if corrupt:
                return (CORRUPT_PAYLOAD, ppn)
        return page.data

    def read_spare(self, ppn: int) -> Any:
        """Read only the spare-area record (cheap OOB scan during recovery).

        The spare area is modelled as separately protected, so this never
        consults read faults; a *failed* page still has no spare to give."""
        self.geometry.check_ppn(ppn)
        page = self._pages[ppn]
        if page.state is not PageState.PROGRAMMED:
            raise ReadError(f"PPN {ppn} is erased; no spare data")
        return page.spare

    def erase(self, block: int) -> None:
        """Erase a whole block, returning every page in it to ERASED.

        An injected erase failure leaves the block's contents untouched
        (still readable, still counted as programmed) — the FTL is
        expected to retire the block instead of reusing it."""
        self.geometry.check_block(block)
        media = self.faults.media
        if media.active:
            try:
                media.on_erase(block)
            except EraseFailError:
                self.failed_erases += 1
                raise
        start = self.geometry.first_ppn(block)
        for ppn in range(start, start + self.geometry.pages_per_block):
            page = self._pages[ppn]
            page.state = PageState.ERASED
            page.data = None
            page.spare = None
            page.failed = False
        self._next_program_offset[block] = 0
        self.erase_counts[block] += 1
        self.total_erases += 1
        self._count_channel_op(block)

    # -------------------------------------------------------------- queries

    def state_of(self, ppn: int) -> PageState:
        self.geometry.check_ppn(ppn)
        return self._pages[ppn].state

    def is_programmed(self, ppn: int) -> bool:
        """True when the page holds *readable* programmed data (a page that
        failed during program is not usable and reports False)."""
        self.geometry.check_ppn(ppn)
        page = self._pages[ppn]
        return page.state is PageState.PROGRAMMED and not page.failed

    def is_failed(self, ppn: int) -> bool:
        """True when the page consumed its program slot but failed."""
        self.geometry.check_ppn(ppn)
        return self._pages[ppn].failed

    def programmed_pages_in_block(self, block: int) -> int:
        """How many pages of ``block`` have been programmed since its last
        erase."""
        self.geometry.check_block(block)
        return self._next_program_offset[block]

    def scan_block(self, block: int) -> List[Tuple[int, Any]]:
        """(ppn, spare) for every readable programmed page of a block, in
        program order.  This is the recovery-time OOB scan; pages that
        failed during program are skipped (they hold no spare stamp)."""
        self.geometry.check_block(block)
        start = self.geometry.first_ppn(block)
        out: List[Tuple[int, Any]] = []
        for offset in range(self._next_program_offset[block]):
            ppn = start + offset
            page = self._pages[ppn]
            if page.failed:
                continue
            out.append((ppn, page.spare))
        return out

    @property
    def max_erase_count(self) -> int:
        return max(self.erase_counts)

    @property
    def total_erase_count(self) -> int:
        return sum(self.erase_counts)

    def wear_summary(self) -> Optional[dict]:
        """Min/mean/max erase counts — the lifespan metric of §5.3.1."""
        counts = self.erase_counts
        if not counts:
            return None
        return {
            "min": min(counts),
            "mean": sum(counts) / len(counts),
            "max": max(counts),
        }
