"""Latency parameters for the NAND array and the host interface.

Values follow the MLC-class chips on the first-generation OpenSSD (Samsung
K9LCG08U1M-class): reads are tens of microseconds, programs are on the
order of a millisecond (MLC tPROG), erases are milliseconds.  The paper argues its
results are independent of absolute device speed; the timing model exists so
the benchmark harness can convert operation counts into throughput and
latency *shapes* comparable to the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlashTiming:
    """Per-operation latencies in microseconds.

    ``transfer_us_per_kib`` models the channel/SATA transfer cost, charged
    per KiB moved in addition to the array operation itself.
    ``copyback_us`` is the internal GC valid-page move (read + program
    without crossing the host interface).
    """

    read_us: float = 60.0
    program_us: float = 1300.0
    erase_us: float = 2500.0
    transfer_us_per_kib: float = 25.0
    copyback_us: float = 1360.0
    # Firmware costs: mapping-table ops are DRAM-speed, command handling has
    # a small fixed overhead per host command (SATA round trip, §3.2's
    # motivation for batching SHARE pairs).
    command_overhead_us: float = 20.0
    map_update_us: float = 0.2

    def __post_init__(self) -> None:
        for name in ("read_us", "program_us", "erase_us", "transfer_us_per_kib",
                     "copyback_us", "command_overhead_us", "map_update_us"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative: {value}")

    def read_latency(self, size_bytes: int) -> float:
        """Host-visible read of ``size_bytes`` from one page."""
        return self.read_us + self.transfer_us_per_kib * (size_bytes / 1024.0)

    def program_latency(self, size_bytes: int) -> float:
        """Host-visible program of ``size_bytes`` into one page."""
        return self.program_us + self.transfer_us_per_kib * (size_bytes / 1024.0)


#: OpenSSD-class MLC timing used by the paper-shaped experiments.
MLC_TIMING = FlashTiming()

#: Datacenter-SATA-SSD-class timing (the Samsung PM853T log device of the
#: experimental setup): faster programs, deeper internal parallelism
#: folded into the per-op figures.
SATA_SSD_TIMING = FlashTiming(read_us=60.0, program_us=90.0,
                              erase_us=1200.0, transfer_us_per_kib=10.0,
                              copyback_us=100.0, command_overhead_us=15.0,
                              map_update_us=0.2)

#: Cheap timing for unit tests where only counts matter.
FAST_TIMING = FlashTiming(read_us=1.0, program_us=10.0, erase_us=30.0,
                          transfer_us_per_kib=0.5, copyback_us=11.0,
                          command_overhead_us=1.0, map_update_us=0.01)
