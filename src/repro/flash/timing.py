"""Latency parameters for the NAND array and the host interface.

Values follow the MLC-class chips on the first-generation OpenSSD (Samsung
K9LCG08U1M-class): reads are tens of microseconds, programs are on the
order of a millisecond (MLC tPROG), erases are milliseconds.  The paper argues its
results are independent of absolute device speed; the timing model exists so
the benchmark harness can convert operation counts into throughput and
latency *shapes* comparable to the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class FlashTiming:
    """Per-operation latencies in microseconds.

    ``transfer_us_per_kib`` models the channel/SATA transfer cost, charged
    per KiB moved in addition to the array operation itself.
    ``copyback_us`` is the internal GC valid-page move (read + program
    without crossing the host interface).
    """

    read_us: float = 60.0
    program_us: float = 1300.0
    erase_us: float = 2500.0
    transfer_us_per_kib: float = 25.0
    copyback_us: float = 1360.0
    # Firmware costs: mapping-table ops are DRAM-speed, command handling has
    # a small fixed overhead per host command (SATA round trip, §3.2's
    # motivation for batching SHARE pairs).
    command_overhead_us: float = 20.0
    map_update_us: float = 0.2

    def __post_init__(self) -> None:
        for name in ("read_us", "program_us", "erase_us", "transfer_us_per_kib",
                     "copyback_us", "command_overhead_us", "map_update_us"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative: {value}")

    def read_latency(self, size_bytes: int) -> float:
        """Host-visible read of ``size_bytes`` from one page."""
        return self.read_us + self.transfer_us_per_kib * (size_bytes / 1024.0)

    def program_latency(self, size_bytes: int) -> float:
        """Host-visible program of ``size_bytes`` into one page."""
        return self.program_us + self.transfer_us_per_kib * (size_bytes / 1024.0)


#: OpenSSD-class MLC timing used by the paper-shaped experiments.
MLC_TIMING = FlashTiming()

#: Datacenter-SATA-SSD-class timing (the Samsung PM853T log device of the
#: experimental setup): faster programs, deeper internal parallelism
#: folded into the per-op figures.
SATA_SSD_TIMING = FlashTiming(read_us=60.0, program_us=90.0,
                              erase_us=1200.0, transfer_us_per_kib=10.0,
                              copyback_us=100.0, command_overhead_us=15.0,
                              map_update_us=0.2)

#: Cheap timing for unit tests where only counts matter.
FAST_TIMING = FlashTiming(read_us=1.0, program_us=10.0, erase_us=30.0,
                          transfer_us_per_kib=0.5, copyback_us=11.0,
                          command_overhead_us=1.0, map_update_us=0.01)


class ChannelSet:
    """Per-channel (and per-plane-way) busy resources.

    Each channel owns ``ways`` interleave units (plane pairs on real
    chips); an operation acquires the earliest-free way of its channel
    and occupies it for its duration.  Different channels — and
    different ways of one channel — overlap freely; operations on the
    same way serialise.  All times are integer microseconds so the
    event-driven device reproduces the serial model's per-command
    rounding exactly at one channel.

    ``busy_us`` accumulates occupied time per channel since the last
    :meth:`reset_accounting`, which is what the per-channel utilisation
    gauges report.
    """

    __slots__ = ("channel_count", "ways", "_free_us", "busy_us")

    def __init__(self, channel_count: int = 1, ways: int = 1) -> None:
        if channel_count < 1:
            raise ValueError(f"need at least one channel: {channel_count}")
        if ways < 1:
            raise ValueError(f"need at least one way per channel: {ways}")
        self.channel_count = channel_count
        self.ways = ways
        self._free_us: List[int] = [0] * (channel_count * ways)
        self.busy_us: List[int] = [0] * channel_count

    def acquire(self, channel: int, earliest_us: int,
                duration_us: int) -> Tuple[int, int]:
        """Occupy ``channel`` for ``duration_us`` starting no earlier
        than ``earliest_us``; returns ``(start_us, end_us)``."""
        if not 0 <= channel < self.channel_count:
            raise ValueError(
                f"channel out of range [0, {self.channel_count}): {channel}")
        free_us = self._free_us
        if self.ways == 1:
            # One way per channel (every stack the harness builds): the
            # unit *is* the channel — skip the min() scan.
            unit = channel
        else:
            base = channel * self.ways
            unit = min(range(base, base + self.ways),
                       key=lambda u: free_us[u])
        start = free_us[unit]
        earliest_us = int(earliest_us)
        if earliest_us > start:
            start = earliest_us
        duration_us = int(duration_us)
        end = start + duration_us
        free_us[unit] = end
        self.busy_us[channel] += duration_us
        return start, end

    def free_at(self, channel: int) -> int:
        """Earliest time ``channel`` has an idle way."""
        base = channel * self.ways
        return min(self._free_us[base:base + self.ways])

    def horizon_us(self) -> int:
        """Latest busy-until across all channels."""
        return max(self._free_us)

    def utilization(self, elapsed_us: int) -> List[float]:
        """Per-channel busy fraction over ``elapsed_us``."""
        if elapsed_us <= 0:
            return [0.0] * self.channel_count
        return [min(1.0, busy / elapsed_us) for busy in self.busy_us]

    def reset_accounting(self) -> None:
        """Zero the utilisation accumulators (measurement boundary);
        busy-until horizons are kept — in-flight work stays in flight."""
        self.busy_us = [0] * self.channel_count

    def reset(self) -> None:
        """Forget all state (power cycle)."""
        self._free_us = [0] * (self.channel_count * self.ways)
        self.busy_us = [0] * self.channel_count
