"""Reverse (P2L) mapping and the bounded share table.

A page-mapping FTL normally needs exactly one reverse mapping per physical
page (stamped into the spare area at program time) so garbage collection
can find the owning LPN of each valid page.  SHARE breaks that 1:1
assumption: after ``share(LPN1, LPN2)`` the physical page of LPN2 is
referenced by *two* LPNs.  Section 4.2.1 solves this with an in-DRAM
reverse-mapping table holding the extra references, sized to a small fixed
budget (250 entries for 4 KiB pages, 500 for 8 KiB) traded against the I/O
cache.

This module tracks, per physical page, the full set of referencing LPNs:

* the *primary* reference — whichever LPN was stamped in the spare area at
  program time (free: it lives on the media),
* *extra* references created by SHARE — these consume share-table capacity.

When the share table is full, the FTL reconciles the oldest extra entry by
materialising a private copy of the page for that LPN (a real page program,
reported as a ``share_spill``), exactly the safety valve a bounded table
needs.  The reproduction counts spills so experiments can show the table is
effectively never exhausted under the paper's workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple


class ReverseMap:
    """Tracks LPN references per physical page with a bounded extra-entry
    budget.

    The structure maintains the invariant that ``refs(ppn)`` equals the set
    of LPNs whose forward mapping currently points at ``ppn``; the FTL calls
    :meth:`add_ref` / :meth:`drop_ref` around every forward-map change.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"share table capacity must be >= 1: {capacity}")
        self._capacity = capacity
        self._refs: Dict[int, Set[int]] = {}
        self._primary: Dict[int, int] = {}
        # Extra (share) entries in insertion order for FIFO reconciliation:
        # key (ppn, lpn) -> None.
        self._extras: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        # Entries that did not fit the DRAM table, indexed by PPN.  They
        # remain resolvable (the mapping log persists every share delta,
        # so firmware can re-read them from flash); membership here marks
        # that resolving them costs a flash read instead of a DRAM lookup.
        self._spilled: Dict[int, Set[int]] = {}
        self._spilled_count = 0
        self._spilled_peak = 0

    def _note_spill(self) -> None:
        self._spilled_count += 1
        if self._spilled_count > self._spilled_peak:
            self._spilled_peak = self._spilled_count

    # ---------------------------------------------------------------- refs

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def extra_entries(self) -> int:
        """DRAM share-table entries currently in use."""
        return len(self._extras)

    @property
    def spilled_entries(self) -> int:
        """Extra references currently resolvable only from the flash log."""
        return self._spilled_count

    @property
    def spilled_peak(self) -> int:
        """High-water mark of :attr:`spilled_entries` over the map's life
        (not reset by drops; :meth:`rebuild` restarts it for the new
        incarnation) — how far past its DRAM budget the share table ever
        went."""
        return self._spilled_peak

    @property
    def is_full(self) -> bool:
        return len(self._extras) >= self._capacity

    def refs(self, ppn: int) -> Set[int]:
        """LPNs currently referencing ``ppn`` (possibly empty)."""
        return set(self._refs.get(ppn, ()))

    def ref_count(self, ppn: int) -> int:
        return len(self._refs.get(ppn, ()))

    def is_valid(self, ppn: int) -> bool:
        """A physical page is valid while any LPN references it."""
        return bool(self._refs.get(ppn))

    def primary_of(self, ppn: int) -> Optional[int]:
        return self._primary.get(ppn)

    # ------------------------------------------------------------- updates

    def set_primary(self, ppn: int, lpn: int) -> None:
        """Record the spare-area stamp created when ``ppn`` was programmed
        for ``lpn``.  Clears any stale state from the page's previous life."""
        self._forget_page(ppn)
        self._primary[ppn] = lpn
        self._refs[ppn] = {lpn}

    def add_extra(self, ppn: int, lpn: int) -> bool:
        """Add a SHARE-created reference.

        Returns True when the entry fit the DRAM table, False when it
        spilled to the flash-log-backed overflow (the caller accounts the
        spill cost; correctness is unaffected either way).
        """
        refs = self._refs.setdefault(ppn, set())
        if lpn in refs:
            return (ppn, lpn) in self._extras
        refs.add(lpn)
        if len(self._extras) < self._capacity:
            self._extras[(ppn, lpn)] = None
            return True
        self._spilled.setdefault(ppn, set()).add(lpn)
        self._note_spill()
        return False

    def is_spilled(self, ppn: int, lpn: int) -> bool:
        return lpn in self._spilled.get(ppn, ())

    def spilled_refs_of(self, ppn: int) -> Set[int]:
        """Extra references of ``ppn`` living in the overflow (GC must pay
        a flash-log read to learn them)."""
        return set(self._spilled.get(ppn, ()))

    def _drop_spilled(self, ppn: int, lpn: int) -> bool:
        bucket = self._spilled.get(ppn)
        if bucket is None or lpn not in bucket:
            return False
        bucket.discard(lpn)
        if not bucket:
            del self._spilled[ppn]
        self._spilled_count -= 1
        return True

    def drop_ref(self, ppn: int, lpn: int) -> bool:
        """Remove ``lpn``'s reference to ``ppn`` (forward map moved away).

        Returns True when the page became invalid (no references left).
        """
        refs = self._refs.get(ppn)
        if refs is None or lpn not in refs:
            return False
        refs.discard(lpn)
        if (ppn, lpn) in self._extras:
            del self._extras[(ppn, lpn)]
        else:
            self._drop_spilled(ppn, lpn)
        if not refs:
            del self._refs[ppn]
            self._primary.pop(ppn, None)
            return True
        # If the primary reference left, promote an extra to primary: the
        # spare stamp is stale but the DRAM table now owns the page, and GC
        # will restamp it on the next copyback.
        if self._primary.get(ppn) == lpn:
            promoted = next(iter(refs))
            self._primary[ppn] = promoted
            self._extras.pop((ppn, promoted), None)
            self._drop_spilled(ppn, promoted)
        return False

    def oldest_extra(self) -> Optional[Tuple[int, int]]:
        """The (ppn, lpn) share entry that would be reconciled on overflow."""
        if not self._extras:
            return None
        return next(iter(self._extras))

    def move_page(self, old_ppn: int, new_ppn: int, new_primary: int) -> List[int]:
        """GC moved a valid page; transfer all references to ``new_ppn``.

        ``new_primary`` becomes the spare-stamped owner of the copy; other
        referencing LPNs become extra entries at the new location (their
        count in the table is unchanged).  Returns the full list of LPNs
        that now reference ``new_ppn``.
        """
        refs = sorted(self._refs.get(old_ppn, ()))
        if new_primary not in refs:
            raise ValueError(
                f"new primary {new_primary} does not reference PPN {old_ppn}")
        for lpn in refs:
            self._extras.pop((old_ppn, lpn), None)
            self._drop_spilled(old_ppn, lpn)
        self._refs.pop(old_ppn, None)
        self._primary.pop(old_ppn, None)
        self._primary[new_ppn] = new_primary
        self._refs[new_ppn] = set(refs)
        for lpn in refs:
            if lpn != new_primary:
                if len(self._extras) < self._capacity:
                    self._extras[(new_ppn, lpn)] = None
                else:
                    self._spilled.setdefault(new_ppn, set()).add(lpn)
                    self._note_spill()
        return refs

    def _forget_page(self, ppn: int) -> None:
        refs = self._refs.pop(ppn, None)
        if refs:
            for lpn in refs:
                self._extras.pop((ppn, lpn), None)
                self._drop_spilled(ppn, lpn)
        self._primary.pop(ppn, None)

    # ------------------------------------------------------------ recovery

    def rebuild(self, entries: Iterable[Tuple[int, int, bool]]) -> None:
        """Reload from recovery: ``entries`` yields (ppn, lpn, is_primary)."""
        self._refs.clear()
        self._primary.clear()
        self._extras.clear()
        self._spilled.clear()
        self._spilled_count = 0
        self._spilled_peak = 0
        for ppn, lpn, is_primary in entries:
            refs = self._refs.setdefault(ppn, set())
            refs.add(lpn)
            if is_primary:
                self._primary[ppn] = lpn
            elif len(self._extras) < self._capacity:
                self._extras[(ppn, lpn)] = None
            else:
                self._spilled.setdefault(ppn, set()).add(lpn)
                self._note_spill()
