"""Mapping delta log (Section 4.2.2, Figure 4).

Normal host writes need no log record: the LPN stamped in the spare area at
program time already persists their mapping.  Two operations change the
mapping *without* programming a data page and therefore must be logged:

* ``SHARE`` — records ``(LPN, old PPN, new PPN)``; the single mapping-page
  program holding a batch's records is the atomic commit point ("the
  maximum size of Deltas cannot exceed the mapping page size because only a
  page is written atomically to flash"),
* ``TRIM`` — records ``(LPN, old PPN, unmapped)``.

The log lives in a small reserved region of map blocks at the top of the
array.  When the region fills up, the log checkpoints itself: the still-live
log-backed mappings (provided by the FTL) are rewritten as ``snap`` records
into the last free map block, the exhausted blocks are erased, and logging
continues.  Recovery merges log records with the spare-area stamps by
sequence number — the newest assertion per LPN wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import FtlError
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.obs import NULL_TELEMETRY
from repro.sim.faults import NO_FAULTS, FaultPlan

#: Spare-area tag marking a mapping page (vs a data page).
MAP_PAGE_TAG = "map"

KIND_SHARE = "share"
KIND_TRIM = "trim"
KIND_SNAP = "snap"
#: Commit record of the atomic-write baseline command (Section 6.1's
#: related-work FTLs, implemented for comparison).
KIND_AWRITE = "awrite"
#: Commit record of the X-FTL transactional baseline (Section 6.2).
KIND_XCOMMIT = "xcommit"
_KINDS = frozenset({KIND_SHARE, KIND_TRIM, KIND_SNAP, KIND_AWRITE,
                    KIND_XCOMMIT})


@dataclass(frozen=True)
class DeltaRecord:
    """One mapping-change assertion.

    ``new_ppn`` is None for trims.  ``seq`` totally orders this assertion
    against spare-area stamps and other records.
    """

    kind: str
    lpn: int
    old_ppn: Optional[int]
    new_ppn: Optional[int]
    seq: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown delta kind: {self.kind!r}")
        if self.lpn < 0:
            raise ValueError(f"negative LPN: {self.lpn}")
        if self.seq < 0:
            raise ValueError(f"negative seq: {self.seq}")
        if self.kind == KIND_TRIM and self.new_ppn is not None:
            raise ValueError("trim records must have new_ppn=None")


class MapLog:
    """Append-only delta log over the reserved map blocks.

    The log programs whole mapping pages; each page carries a list of
    :class:`DeltaRecord`.  Fault checkpoints bracket the commit program so
    tests can kill power on either side of the atomic point.
    """

    def __init__(self, nand: NandArray, geometry: FlashGeometry,
                 map_blocks: Sequence[int], records_per_page: int,
                 faults: FaultPlan = NO_FAULTS, telemetry=None) -> None:
        if not map_blocks:
            raise ValueError("need at least one map block")
        self._nand = nand
        self._geometry = geometry
        self._blocks = list(map_blocks)
        self._records_per_page = records_per_page
        self._faults = faults
        self._cursor = 0          # index into self._blocks
        self._page_writes = 0
        self._checkpoints = 0
        self._snapshot_provider: Optional[Callable[[], List[DeltaRecord]]] = None
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self.telemetry.metrics
        self._m_page_writes = metrics.counter("ftl.maplog.page_writes")
        self._m_checkpoints = metrics.counter("ftl.maplog.checkpoints")
        self._m_records = metrics.histogram("ftl.maplog.records_per_commit")

    # --------------------------------------------------------------- setup

    def set_snapshot_provider(self, provider: Callable[[], List[DeltaRecord]]) -> None:
        """Register the FTL callback that lists still-live log-backed
        mappings for checkpointing."""
        self._snapshot_provider = provider

    def bind_to_end_of_log(self) -> None:
        """After recovery, resume appending after the last programmed page."""
        self._cursor = 0
        for index, block in enumerate(self._blocks):
            if self._nand.programmed_pages_in_block(block) > 0:
                self._cursor = index
        # If the cursor block is full, advance handled lazily by _target().

    @property
    def records_per_page(self) -> int:
        return self._records_per_page

    @property
    def page_writes(self) -> int:
        """Mapping pages programmed so far (internal write traffic)."""
        return self._page_writes

    @property
    def checkpoints(self) -> int:
        return self._checkpoints

    # -------------------------------------------------------------- append

    def append_atomic(self, records: Sequence[DeltaRecord]) -> None:
        """Persist ``records`` in one mapping-page program.

        This is the SHARE commit point: a crash before the program leaves
        the old mapping, a crash after it leaves the new mapping; there is
        no in-between because the page program is atomic.
        """
        if not records:
            raise ValueError("cannot commit an empty delta batch")
        if len(records) > self._records_per_page:
            raise FtlError(
                f"delta batch of {len(records)} records exceeds the mapping "
                f"page capacity of {self._records_per_page} — the batch "
                "would not commit atomically (Section 4.2.2)")
        self._faults.checkpoint("maplog.before_commit")
        ppn = self._next_map_ppn()
        self._nand.program(ppn, tuple(records), spare=(MAP_PAGE_TAG,))
        self._page_writes += 1
        self._m_page_writes.inc()
        self._m_records.record(len(records))
        self._faults.checkpoint("maplog.after_commit")

    def append(self, records: Sequence[DeltaRecord]) -> None:
        """Persist records that do not need single-page atomicity (trim
        batches), splitting across pages as needed."""
        for start in range(0, len(records), self._records_per_page):
            self.append_atomic(records[start:start + self._records_per_page])

    # ------------------------------------------------------------ internal

    def _next_map_ppn(self) -> int:
        """PPN of the next free mapping page, checkpointing when needed."""
        for _ in range(2):
            block = self._blocks[self._cursor]
            used = self._nand.programmed_pages_in_block(block)
            if used < self._geometry.pages_per_block:
                return self._geometry.first_ppn(block) + used
            if self._cursor + 1 < len(self._blocks):
                self._cursor += 1
                continue
            self._checkpoint()
        raise FtlError("map log has no space even after checkpoint")

    def _checkpoint(self) -> None:
        """Compact the log: rewrite live records, erase exhausted blocks.

        The snapshot may span several map blocks (a busy SHARE workload —
        e.g. a compaction of a large store — can keep hundreds of
        thousands of log-backed mappings live).  Blocks are erased one at
        a time just before being refilled; the crash window between an
        erase and the corresponding snapshot program is covered by the
        controller's power capacitor on the OpenSSD, and the reproduction
        documents the same assumption.
        """
        if self._snapshot_provider is None:
            raise FtlError("map log full and no snapshot provider registered")
        with self.telemetry.tracer.span("ftl.maplog.checkpoint") as span:
            self._do_checkpoint(span)

    def _do_checkpoint(self, span) -> None:
        live = self._snapshot_provider()
        span.set(live_records=len(live))
        self._faults.checkpoint("maplog.checkpoint_start")
        page_capacity = self._records_per_page
        pages_per_block = self._geometry.pages_per_block
        needed_pages = -(-len(live) // page_capacity) if live else 0
        needed_blocks = -(-needed_pages // pages_per_block) if needed_pages else 0
        if needed_blocks >= len(self._blocks):
            raise FtlError(
                f"snapshot of {len(live)} live records needs {needed_blocks} "
                f"map blocks but only {len(self._blocks)} exist (and one "
                "must stay free for new deltas); increase map_block_count")
        cursor = 0
        for block_index in range(max(1, needed_blocks)):
            block = self._blocks[block_index]
            self._nand.erase(block)
            for offset in range(pages_per_block):
                if cursor >= len(live):
                    break
                chunk = tuple(live[cursor:cursor + page_capacity])
                self._nand.program(self._geometry.first_ppn(block) + offset,
                                   chunk, spare=(MAP_PAGE_TAG,))
                self._page_writes += 1
                cursor += page_capacity
        for block in self._blocks[max(1, needed_blocks):]:
            self._nand.erase(block)
        last_used = max(1, needed_blocks) - 1
        last_block_full = (needed_pages > 0
                           and needed_pages % pages_per_block == 0)
        self._cursor = last_used + 1 if last_block_full else last_used
        self._checkpoints += 1
        self._m_checkpoints.inc()
        self._faults.checkpoint("maplog.checkpoint_end")

    # ------------------------------------------------------------ recovery

    @staticmethod
    def scan(nand: NandArray, geometry: FlashGeometry,
             map_blocks: Sequence[int]) -> List[DeltaRecord]:
        """Collect every delta record persisted in the map region."""
        records: List[DeltaRecord] = []
        for block in map_blocks:
            for ppn, spare in nand.scan_block(block):
                if not (isinstance(spare, tuple) and spare and spare[0] == MAP_PAGE_TAG):
                    raise FtlError(
                        f"non-map page found in map block {block} (PPN {ppn})")
                records.extend(nand.read(ppn))
        return records
