"""Mapping delta log (Section 4.2.2, Figure 4).

Normal host writes need no log record: the LPN stamped in the spare area at
program time already persists their mapping.  Two operations change the
mapping *without* programming a data page and therefore must be logged:

* ``SHARE`` — records ``(LPN, old PPN, new PPN)``; the single mapping-page
  program holding a batch's records is the atomic commit point ("the
  maximum size of Deltas cannot exceed the mapping page size because only a
  page is written atomically to flash"),
* ``TRIM`` — records ``(LPN, old PPN, unmapped)``.

The log lives in a small reserved region of map blocks at the top of the
array.  When the region fills up, the log checkpoints itself: the still-live
log-backed mappings (provided by the FTL) are rewritten as ``snap`` records
into the last free map block, the exhausted blocks are erased, and logging
continues.  Recovery merges log records with the spare-area stamps by
sequence number — the newest assertion per LPN wins.

Media faults make the log defend itself:

* every mapping page is sealed with a CRC32 over its records, so a page
  returned corrupted (or torn by a failed program) is *detected* during
  :meth:`MapLog.scan` and skipped rather than replayed — recovery already
  always merges the log with the full OOB scan by sequence number, so a
  lost log page degrades to the stamps' view instead of silently replaying
  garbage;
* a program failure while appending simply retries the next mapping page
  (the failed page consumed its slot and the OOB scan skips it);
* an erase failure during a checkpoint retires the map block from the
  rotation; a ``badblk`` record naming it rides in every later snapshot so
  the retirement survives recovery, and the stale records left in the dead
  block are harmless — they always lose the seq merge.

The log is strategy-agnostic with respect to the in-DRAM forward map:
records and spare stamps speak plain ``(LPN, PPN)``, and recovery replays
the merged view through :class:`repro.ftl.mapping.MappingStrategy.update`,
so the same media rebuilds identically under the flat, grouped,
run-length, or delta-compressed backing (pinned by the parity tests in
``tests/test_ftl_strategy_recovery.py``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    EraseFailError,
    FtlError,
    ProgramFailError,
    UncorrectableReadError,
)
from repro.flash.geometry import FlashGeometry
from repro.flash.nand import NandArray
from repro.obs import NULL_TELEMETRY, hot_timer
from repro.sim.faults import NO_FAULTS, FaultPlan

#: Spare-area tag marking a mapping page (vs a data page).
MAP_PAGE_TAG = "map"

#: Magic leading every sealed mapping-page payload.
MAP_MAGIC = "maplog-v2"

KIND_SHARE = "share"
KIND_TRIM = "trim"
KIND_SNAP = "snap"
#: Commit record of the atomic-write baseline command (Section 6.1's
#: related-work FTLs, implemented for comparison).
KIND_AWRITE = "awrite"
#: Commit record of the X-FTL transactional baseline (Section 6.2).
KIND_XCOMMIT = "xcommit"
#: Grown-bad-block announcement: ``lpn`` holds the *block* number, both
#: PPN fields are None.  Data-block records are emitted by the FTL at
#: retirement time; map-block records are emitted by the log itself.
KIND_BADBLK = "badblk"
_KINDS = frozenset({KIND_SHARE, KIND_TRIM, KIND_SNAP, KIND_AWRITE,
                    KIND_XCOMMIT, KIND_BADBLK})

#: How many fresh mapping pages one append tries when programs keep
#: failing before surfacing the error.
_PROGRAM_ATTEMPTS = 4


@dataclass(frozen=True)
class DeltaRecord:
    """One mapping-change assertion.

    ``new_ppn`` is None for trims.  ``seq`` totally orders this assertion
    against spare-area stamps and other records.  ``badblk`` records reuse
    ``lpn`` for the retired block number and carry no PPNs.
    """

    kind: str
    lpn: int
    old_ppn: Optional[int]
    new_ppn: Optional[int]
    seq: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown delta kind: {self.kind!r}")
        if self.lpn < 0:
            raise ValueError(f"negative LPN: {self.lpn}")
        if self.seq < 0:
            raise ValueError(f"negative seq: {self.seq}")
        if self.kind == KIND_TRIM and self.new_ppn is not None:
            raise ValueError("trim records must have new_ppn=None")
        if self.kind == KIND_BADBLK and (self.old_ppn is not None
                                         or self.new_ppn is not None):
            raise ValueError("badblk records carry no PPNs")


def _seal(records: Tuple[DeltaRecord, ...]):
    """Wrap a mapping page's records with a CRC so corruption is detected."""
    crc = zlib.crc32(repr(records).encode("utf-8")) & 0xFFFFFFFF
    return (MAP_MAGIC, records, crc)


def _unseal(payload) -> Optional[List[DeltaRecord]]:
    """Records from a sealed mapping page, or None when the page is
    corrupt (bad magic, torn shape, or checksum mismatch)."""
    if (not isinstance(payload, tuple) or len(payload) != 3
            or payload[0] != MAP_MAGIC):
        return None
    _, records, crc = payload
    if not isinstance(records, tuple):
        return None
    if zlib.crc32(repr(records).encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    return list(records)


class MapLog:
    """Append-only delta log over the reserved map blocks.

    The log programs whole mapping pages; each page carries a sealed list
    of :class:`DeltaRecord`.  Fault checkpoints bracket the commit program
    so tests can kill power on either side of the atomic point.
    """

    def __init__(self, nand: NandArray, geometry: FlashGeometry,
                 map_blocks: Sequence[int], records_per_page: int,
                 faults: FaultPlan = NO_FAULTS, telemetry=None) -> None:
        if not map_blocks:
            raise ValueError("need at least one map block")
        self._nand = nand
        self._geometry = geometry
        self._blocks = list(map_blocks)
        self._bad_blocks: Set[int] = set()
        self._records_per_page = records_per_page
        self._faults = faults
        self._cursor = 0          # index into self._blocks
        self._page_writes = 0
        # Channels of mapping-page programs since the last take_work()
        # drain — the FTL merges these into its charged-work ledger.
        self._work: List[int] = []
        self._checkpoints = 0
        self._snapshot_provider: Optional[Callable[[], List[DeltaRecord]]] = None
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self.telemetry.metrics
        self._m_page_writes = metrics.counter("ftl.maplog.page_writes")
        self._m_checkpoints = metrics.counter("ftl.maplog.checkpoints")
        self._m_records = metrics.histogram("ftl.maplog.records_per_commit")
        self._pt_apply = hot_timer(getattr(self.telemetry, "profiler", None),
                                   "ftl.deltalog")

    # --------------------------------------------------------------- setup

    def set_snapshot_provider(self, provider: Callable[[], List[DeltaRecord]]) -> None:
        """Register the FTL callback that lists still-live log-backed
        mappings for checkpointing."""
        self._snapshot_provider = provider

    def bind_to_end_of_log(self) -> None:
        """After recovery, resume appending after the last programmed page."""
        self._cursor = 0
        for index, block in enumerate(self._blocks):
            if self._nand.programmed_pages_in_block(block) > 0:
                self._cursor = index
        # If the cursor block is full, advance handled lazily by _target().

    def retire_map_block(self, block: int) -> None:
        """Drop a grown-bad map block from the rotation (idempotent).

        Called when an erase of the block fails, and during recovery when
        a scanned ``badblk`` record names a map block."""
        if block in self._bad_blocks:
            return
        self._bad_blocks.add(block)
        if block in self._blocks:
            index = self._blocks.index(block)
            self._blocks.remove(block)
            if self._cursor > index:
                self._cursor -= 1
            if self._cursor >= len(self._blocks) and self._blocks:
                self._cursor = len(self._blocks) - 1
        if not self._blocks:
            raise FtlError(
                "every map block has grown bad; the mapping log cannot "
                "persist further deltas")

    @property
    def bad_blocks(self) -> Set[int]:
        return set(self._bad_blocks)

    @property
    def records_per_page(self) -> int:
        return self._records_per_page

    @property
    def page_writes(self) -> int:
        """Mapping pages programmed so far (internal write traffic)."""
        return self._page_writes

    @property
    def checkpoints(self) -> int:
        return self._checkpoints

    def take_work(self) -> List[int]:
        """Drain the channels of mapping pages programmed since the
        last drain.

        When the ledger is empty the *live* (empty) list is returned
        without allocating a replacement — most commands program no
        mapping pages, and the caller only reads the result."""
        work = self._work
        if work:
            self._work = []
        return work

    def _note_work(self, ppn: int) -> None:
        self._work.append(
            (ppn // self._geometry.pages_per_block)
            % self._geometry.channel_count)

    # -------------------------------------------------------------- append

    def append_atomic(self, records: Sequence[DeltaRecord]) -> None:
        """Persist ``records`` in one mapping-page program.

        This is the SHARE commit point: a crash before the program leaves
        the old mapping, a crash after it leaves the new mapping; there is
        no in-between because the page program is atomic.  A program
        failure moves on to the next mapping page — the failed page
        consumed its slot and the OOB scan skips it, so atomicity holds:
        either one intact sealed page carries the batch, or none does.
        """
        if not records:
            raise ValueError("cannot commit an empty delta batch")
        if len(records) > self._records_per_page:
            raise FtlError(
                f"delta batch of {len(records)} records exceeds the mapping "
                f"page capacity of {self._records_per_page} — the batch "
                "would not commit atomically (Section 4.2.2)")
        self._faults.checkpoint("maplog.before_commit")
        pt_apply = self._pt_apply
        t0 = perf_counter_ns() if pt_apply is not None else 0
        payload = _seal(tuple(records))
        for attempt in range(_PROGRAM_ATTEMPTS):
            ppn = self._next_map_ppn()
            try:
                self._nand.program(ppn, payload, spare=(MAP_PAGE_TAG,))
            except ProgramFailError:
                if attempt + 1 == _PROGRAM_ATTEMPTS:
                    raise
                continue
            break
        self._page_writes += 1
        self._note_work(ppn)
        self._m_page_writes.inc()
        self._m_records.record(len(records))
        if pt_apply is not None:
            pt_apply.add(perf_counter_ns() - t0)
        self._faults.checkpoint("maplog.after_commit")

    def append(self, records: Sequence[DeltaRecord]) -> None:
        """Persist records that do not need single-page atomicity (trim
        batches), splitting across pages as needed."""
        for start in range(0, len(records), self._records_per_page):
            self.append_atomic(records[start:start + self._records_per_page])

    # ------------------------------------------------------------ internal

    def _next_map_ppn(self) -> int:
        """PPN of the next free mapping page, checkpointing when needed."""
        for _ in range(2):
            block = self._blocks[self._cursor]
            used = self._nand.programmed_pages_in_block(block)
            if used < self._geometry.pages_per_block:
                return self._geometry.first_ppn(block) + used
            if self._cursor + 1 < len(self._blocks):
                self._cursor += 1
                continue
            self._checkpoint()
        raise FtlError("map log has no space even after checkpoint")

    def _badblk_records(self) -> List[DeltaRecord]:
        """``badblk`` announcements for the log's own retired blocks; they
        ride in every snapshot so retirement survives recovery."""
        return [DeltaRecord(KIND_BADBLK, block, None, None, 0)
                for block in sorted(self._bad_blocks)]

    def _checkpoint(self) -> None:
        """Compact the log: rewrite live records, erase exhausted blocks.

        The snapshot may span several map blocks (a busy SHARE workload —
        e.g. a compaction of a large store — can keep hundreds of
        thousands of log-backed mappings live).  The crash window between
        the erases and the snapshot programs is covered by the
        controller's power capacitor on the OpenSSD, and the reproduction
        documents the same assumption.
        """
        if self._snapshot_provider is None:
            raise FtlError("map log full and no snapshot provider registered")
        with self.telemetry.tracer.span("ftl.maplog.checkpoint") as span:
            self._do_checkpoint(span)

    def _do_checkpoint(self, span) -> None:
        self._faults.checkpoint("maplog.checkpoint_start")
        pages_per_block = self._geometry.pages_per_block
        page_capacity = self._records_per_page
        # Erase the whole rotation first, retiring any block whose erase
        # fails.  A retired block keeps its stale pages; they always lose
        # the seq merge, and the badblk record below marks it dead.
        usable: List[int] = []
        for block in list(self._blocks):
            try:
                self._nand.erase(block)
            except EraseFailError:
                self.retire_map_block(block)
            else:
                usable.append(block)
        self._blocks = usable
        if not self._blocks:
            raise FtlError(
                "every map block has grown bad; the mapping log cannot "
                "persist further deltas")
        live = self._badblk_records() + list(self._snapshot_provider())
        span.set(live_records=len(live))
        needed_pages = -(-len(live) // page_capacity) if live else 0
        needed_blocks = -(-needed_pages // pages_per_block) if needed_pages else 0
        if needed_blocks >= len(self._blocks):
            raise FtlError(
                f"snapshot of {len(live)} live records needs {needed_blocks} "
                f"map blocks but only {len(self._blocks)} remain (and one "
                "must stay free for new deltas); increase map_block_count")
        block_index = 0
        offset = 0
        cursor = 0
        while cursor < len(live):
            if offset >= pages_per_block:
                block_index += 1
                offset = 0
                if block_index >= len(self._blocks):
                    raise FtlError(
                        "map-log snapshot overflowed the surviving blocks "
                        "(program failures consumed too many pages)")
            chunk = tuple(live[cursor:cursor + page_capacity])
            ppn = self._geometry.first_ppn(self._blocks[block_index]) + offset
            offset += 1
            try:
                self._nand.program(ppn, _seal(chunk), spare=(MAP_PAGE_TAG,))
            except ProgramFailError:
                continue   # the failed page consumed its slot; use the next
            self._page_writes += 1
            self._note_work(ppn)
            cursor += page_capacity
        self._cursor = min(block_index, len(self._blocks) - 1)
        self._checkpoints += 1
        self._m_checkpoints.inc()
        self._faults.checkpoint("maplog.checkpoint_end")

    # ------------------------------------------------------------ recovery

    @staticmethod
    def scan(nand: NandArray, geometry: FlashGeometry,
             map_blocks: Sequence[int],
             read_retries: int = 2) -> Tuple[List[DeltaRecord], int]:
        """Collect every readable, intact delta record in the map region.

        Returns ``(records, bad_pages)``.  A mapping page that stays
        unreadable after ``read_retries`` extra attempts, or whose seal
        fails verification, is counted in ``bad_pages`` and skipped —
        recovery merges the log with the full OOB scan by sequence number,
        so a lost log page degrades to the stamps' view of those LPNs
        instead of replaying garbage.
        """
        records: List[DeltaRecord] = []
        bad_pages = 0
        for block in map_blocks:
            for ppn, spare in nand.scan_block(block):
                if not (isinstance(spare, tuple) and spare and spare[0] == MAP_PAGE_TAG):
                    raise FtlError(
                        f"non-map page found in map block {block} (PPN {ppn})")
                payload = None
                readable = False
                for _ in range(read_retries + 1):
                    try:
                        payload = nand.read(ppn)
                    except UncorrectableReadError:
                        continue
                    readable = True
                    break
                unsealed = _unseal(payload) if readable else None
                if unsealed is None:
                    bad_pages += 1
                    continue
                records.extend(unsealed)
        return records, bad_pages
