"""SHARE command semantics: pairs, ranged expansion, batch validation.

``share(LPN1, LPN2, length)`` (Section 3.2): LPN1 is the *destination* —
after the command it maps to the physical page currently backing LPN2, the
*source*.  ``length`` expands the command over consecutive LPNs and must
not make the two ranges overlap.  A batch of pairs commits atomically as
long as its delta records fit one mapping page (Section 4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ShareError

#: Sentinel for validate_batch callers that do not enforce a batch limit.
MAX_BATCH_UNLIMITED = -1


@dataclass(frozen=True)
class SharePair:
    """One remap: ``dst_lpn`` will point at the physical page of
    ``src_lpn``."""

    dst_lpn: int
    src_lpn: int

    def __post_init__(self) -> None:
        if self.dst_lpn < 0:
            raise ShareError(f"negative destination LPN: {self.dst_lpn}")
        if self.src_lpn < 0:
            raise ShareError(f"negative source LPN: {self.src_lpn}")
        if self.dst_lpn == self.src_lpn:
            raise ShareError(
                f"destination and source LPN are identical: {self.dst_lpn}")


def expand_range(dst_lpn: int, src_lpn: int, length: int) -> List[SharePair]:
    """Expand ``share(dst, src, length)`` into per-page pairs.

    Enforces the paper's rule: "the range between LPN1 and LPN1+length
    cannot be overlapped with the range between LPN2 and LPN2+length".
    """
    if length < 1:
        raise ShareError(f"length must be >= 1: {length}")
    dst_end = dst_lpn + length
    src_end = src_lpn + length
    if dst_lpn < src_end and src_lpn < dst_end:
        raise ShareError(
            f"ranges overlap: dst [{dst_lpn}, {dst_end}) vs "
            f"src [{src_lpn}, {src_end})")
    return [SharePair(dst_lpn + i, src_lpn + i) for i in range(length)]


def validate_batch(pairs: Sequence[SharePair], logical_pages: int,
                   max_batch: int) -> None:
    """Reject malformed batches before any state changes.

    Rules:
    * non-empty, within the logical address space,
    * no duplicate destination (two remaps of one LPN in one atomic batch
      are ambiguous),
    * no destination that is also a source (the batch applies as a snapshot
      of the pre-command mapping, so chaining inside one batch is
      ill-defined and rejected, mirroring the ranged-overlap rule),
    * at most ``max_batch`` pairs so the delta fits one mapping page.
    """
    if not pairs:
        raise ShareError("empty SHARE batch")
    if max_batch != MAX_BATCH_UNLIMITED and len(pairs) > max_batch:
        raise ShareError(
            f"SHARE batch of {len(pairs)} pairs exceeds the atomic limit of "
            f"{max_batch} (one mapping page of deltas)")
    destinations = set()
    sources = set()
    for pair in pairs:
        for lpn in (pair.dst_lpn, pair.src_lpn):
            if lpn >= logical_pages:
                raise ShareError(
                    f"LPN {lpn} outside logical space [0, {logical_pages})")
        if pair.dst_lpn in destinations:
            raise ShareError(f"duplicate destination LPN in batch: {pair.dst_lpn}")
        destinations.add(pair.dst_lpn)
        sources.add(pair.src_lpn)
    chained = destinations & sources
    if chained:
        raise ShareError(
            f"LPNs appear as both destination and source in one batch: "
            f"{sorted(chained)[:8]}")


def observe_batch(metrics, pairs: Sequence[SharePair],
                  remap_splits: int = 0) -> None:
    """Record the shape of one committed SHARE batch.

    Batch size drives how often the delta log spills past a single mapping
    page, and contiguity shows whether callers exploit the ranged form of
    the command — both feed the ``ftl.share.*`` namespace:

    * ``ftl.share.pairs`` — total pairs committed,
    * ``ftl.share.batch_pairs`` — per-batch size distribution,
    * ``ftl.share.contiguous_runs`` — per-batch count of maximal runs of
      consecutive ``(dst, src)`` pairs (1 == fully ranged batch),
    * ``ftl.share.remap_splits`` — L2P continuity breaks this batch caused
      in the forward-map backing (run splits, fresh group allocations,
      delta exceptions — always 0 on the flat strategy), the structural
      fragmentation cost SHARE imposes on compact mappings.
    """
    metrics.counter("ftl.share.pairs").inc(len(pairs))
    metrics.histogram("ftl.share.batch_pairs").record(len(pairs))
    runs = 0
    prev: SharePair = None  # type: ignore[assignment]
    for pair in pairs:
        if (prev is None or pair.dst_lpn != prev.dst_lpn + 1
                or pair.src_lpn != prev.src_lpn + 1):
            runs += 1
        prev = pair
    metrics.histogram("ftl.share.contiguous_runs").record(runs)
    if remap_splits:
        metrics.counter("ftl.share.remap_splits").inc(remap_splits)
