"""Flash Translation Layer with the paper's SHARE extension.

The FTL implements classic page mapping (Section 4.2 of the paper): a
DRAM-resident L2P table, greedy garbage collection over data blocks, and a
mapping delta log persisted to a reserved map region of the array.  The
SHARE extension adds:

* the ``share(pairs)`` command — atomic batched remapping of destination
  LPNs onto the physical pages of source LPNs,
* a bounded reverse-mapping ("share") table so physical pages referenced by
  more than one LPN stay reclaimable by GC,
* delta-log records ``(LPN, old PPN, new PPN)`` whose single-page program is
  the atomic commit point of a SHARE batch (Figure 4).
"""

from repro.ftl.config import FtlConfig
from repro.ftl.deltalog import DeltaRecord, MapLog
from repro.ftl.mapping import ForwardMap
from repro.ftl.pagemap import FtlStats, PageMappingFtl
from repro.ftl.reverse import ReverseMap
from repro.ftl.share_ext import MAX_BATCH_UNLIMITED, SharePair, expand_range, validate_batch

__all__ = [
    "FtlConfig",
    "DeltaRecord",
    "MapLog",
    "ForwardMap",
    "FtlStats",
    "PageMappingFtl",
    "ReverseMap",
    "SharePair",
    "expand_range",
    "validate_batch",
    "MAX_BATCH_UNLIMITED",
]
