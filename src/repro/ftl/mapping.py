"""Forward (L2P) mapping table.

A plain array of PPNs indexed by LPN, matching the page-mapping scheme of
the OpenSSD firmware ("the entire forward mapping table is kept in DRAM",
Section 4.2.1).  The table is volatile — it is rebuilt during recovery from
the spare-area stamps and the mapping delta log.
"""

from __future__ import annotations

from typing import List, Optional

UNMAPPED = -1


class ForwardMap:
    """LPN -> PPN table with O(1) lookup and update."""

    def __init__(self, logical_pages: int) -> None:
        if logical_pages <= 0:
            raise ValueError(f"logical_pages must be positive: {logical_pages}")
        self._table: List[int] = [UNMAPPED] * logical_pages
        self._mapped_count = 0

    @property
    def logical_pages(self) -> int:
        return len(self._table)

    @property
    def mapped_count(self) -> int:
        """Number of LPNs currently holding a mapping."""
        return self._mapped_count

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < len(self._table):
            raise ValueError(
                f"LPN out of range [0, {len(self._table)}): {lpn}")

    def lookup(self, lpn: int) -> Optional[int]:
        """Current PPN of ``lpn``, or None when unmapped."""
        self.check_lpn(lpn)
        ppn = self._table[lpn]
        return None if ppn == UNMAPPED else ppn

    def is_mapped(self, lpn: int) -> bool:
        self.check_lpn(lpn)
        return self._table[lpn] != UNMAPPED

    def update(self, lpn: int, ppn: int) -> Optional[int]:
        """Point ``lpn`` at ``ppn``; returns the previous PPN (or None)."""
        self.check_lpn(lpn)
        if ppn < 0:
            raise ValueError(f"PPN must be non-negative: {ppn}")
        old = self._table[lpn]
        if old == UNMAPPED:
            self._mapped_count += 1
        self._table[lpn] = ppn
        return None if old == UNMAPPED else old

    def clear(self, lpn: int) -> Optional[int]:
        """Drop the mapping of ``lpn`` (TRIM); returns the previous PPN."""
        self.check_lpn(lpn)
        old = self._table[lpn]
        if old != UNMAPPED:
            self._mapped_count -= 1
            self._table[lpn] = UNMAPPED
            return old
        return None

    def mapped_lpns(self):
        """Iterate (lpn, ppn) over every live mapping — recovery/debug use."""
        for lpn, ppn in enumerate(self._table):
            if ppn != UNMAPPED:
                yield lpn, ppn
