"""Forward (L2P) mapping table.

A plain array of PPNs indexed by LPN, matching the page-mapping scheme of
the OpenSSD firmware ("the entire forward mapping table is kept in DRAM",
Section 4.2.1).  The table is volatile — it is rebuilt during recovery from
the spare-area stamps and the mapping delta log.

Hot-path contract: ``table`` is the raw list, public on purpose.  The
pagemap's per-page loops (share_batch remap pairs, GC evacuation,
post-program remap) pre-validate their LPN ranges once and then index
``fwd.table[lpn]`` directly — a method call plus a second bounds check
per page is the difference between the L2P being "in DRAM" and being
the simulator's bottleneck.  Direct writers must maintain the
``UNMAPPED`` sentinel discipline and use :meth:`update`/:meth:`clear`
whenever the mapped count could change.  (A ``array('q')`` backing was
measured and rejected: C-long boxing on every read made the hot loops
slower than the plain list, and the footprint win is irrelevant at
simulated scale.)
"""

from __future__ import annotations

from typing import List, Optional

UNMAPPED = -1


class ForwardMap:
    """LPN -> PPN table with O(1) lookup and update."""

    __slots__ = ("table", "_mapped_count")

    def __init__(self, logical_pages: int) -> None:
        if logical_pages <= 0:
            raise ValueError(f"logical_pages must be positive: {logical_pages}")
        self.table: List[int] = [UNMAPPED] * logical_pages
        self._mapped_count = 0

    @property
    def logical_pages(self) -> int:
        return len(self.table)

    @property
    def mapped_count(self) -> int:
        """Number of LPNs currently holding a mapping."""
        return self._mapped_count

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")

    def lookup(self, lpn: int) -> Optional[int]:
        """Current PPN of ``lpn``, or None when unmapped."""
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")
        ppn = self.table[lpn]
        return None if ppn == UNMAPPED else ppn

    def is_mapped(self, lpn: int) -> bool:
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")
        return self.table[lpn] != UNMAPPED

    def update(self, lpn: int, ppn: int) -> Optional[int]:
        """Point ``lpn`` at ``ppn``; returns the previous PPN (or None)."""
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")
        if ppn < 0:
            raise ValueError(f"PPN must be non-negative: {ppn}")
        old = self.table[lpn]
        if old == UNMAPPED:
            self._mapped_count += 1
            self.table[lpn] = ppn
            return None
        self.table[lpn] = ppn
        return old

    def clear(self, lpn: int) -> Optional[int]:
        """Drop the mapping of ``lpn`` (TRIM); returns the previous PPN."""
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")
        old = self.table[lpn]
        if old != UNMAPPED:
            self._mapped_count -= 1
            self.table[lpn] = UNMAPPED
            return old
        return None

    def mapped_lpns(self):
        """Iterate (lpn, ppn) over every live mapping — recovery/debug use."""
        for lpn, ppn in enumerate(self.table):
            if ppn != UNMAPPED:
                yield lpn, ppn
