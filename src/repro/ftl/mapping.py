"""Forward (L2P) mapping strategies.

SHARE's whole value proposition lives in this table — a remap is a pure
L2P mutation instead of a data copy — so the backing is a pluggable
*strategy* rather than one hard-coded layout.  Every strategy implements
the same :class:`MappingStrategy` contract (lookup / update / clear /
bulk remap / iterate / footprint / snapshot); the FTL, recovery, and the
crash invariants are backing-agnostic.  Four backings ship:

* :class:`FlatListMap` (``"flat"``, the default) — a plain array of PPNs
  indexed by LPN, matching the page-mapping scheme of the OpenSSD
  firmware ("the entire forward mapping table is kept in DRAM", Section
  4.2.1).  O(1) everything, footprint proportional to the logical space
  whether mapped or not.  This is the fastest backing for the simulator
  and the bit-identical pre-refactor behaviour.
* :class:`GroupMap` (``"group"``) — GFTL-style two-level mapping:
  fixed-size per-group page tables allocated on first touch and freed
  when their last entry clears.  Wins on footprint when the mapped set
  is sparse or clustered; SHARE remaps into untouched groups force
  group allocations (counted as remap splits).
* :class:`RunLengthMap` (``"runlength"``) — CCFTL-style extent
  compression: maximal runs of ``(lpn, ppn)`` pairs advancing in
  lockstep collapse to one ``(start, length, ppn)`` record.  Wins big on
  sequential workloads; random writes and SHARE remaps split runs
  (split-on-write), which is exactly the fragmentation cost the lab
  quantifies.
* :class:`DeltaCompressedMap` (``"delta"``) — hybrid delta encoding per
  *Page-Differential Logging*: each group stores one base anchor (the
  PPN the group's first mapping predicts for every offset) plus a
  sparse exception table for entries that diverge from the prediction.
  Sequential fills cost one anchor per group; divergent entries —
  including SHARE remaps, which by construction point elsewhere — each
  cost an exception record.

Hot-path contract (preserved from the single-strategy era): the
strategy's ``table`` attribute is the raw LPN-indexed list when the
backing is flat, and ``None`` otherwise.  The pagemap's pre-validated
per-page loops check ``table`` once and either index it directly or
fall back to the strategy's :meth:`~MappingStrategy.get` /
:meth:`~MappingStrategy.resolve_pairs` bulk API — one pointer compare
is all the indirection costs on the default path.  Direct writers must
maintain the ``UNMAPPED`` sentinel discipline and use
:meth:`~MappingStrategy.update` / :meth:`~MappingStrategy.clear`
whenever the mapped count could change.

Footprints are *modeled* bytes (4-byte PPN entries as on the 32-bit
Barefoot controller), not Python object sizes: the lab compares what the
layouts would cost in device DRAM, which is the paper-relevant number.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

UNMAPPED = -1

#: Registered strategy names, in presentation order.
STRATEGY_NAMES = ("flat", "group", "runlength", "delta")

#: Modeled bytes per mapping entry (32-bit PPN).
ENTRY_BYTES = 4
#: Modeled bytes per run record: (start LPN, length, start PPN).
RUN_BYTES = 12
#: Modeled bytes per delta exception record: (LPN, PPN).
DELTA_ENTRY_BYTES = 8


class MappingStrategy:
    """The L2P contract every backing implements.

    Bounds-checked host-facing methods (:meth:`lookup`, :meth:`update`,
    :meth:`clear`, :meth:`is_mapped`) raise ``ValueError`` outside
    ``[0, logical_pages)``; the pre-validated hot-path methods
    (:meth:`get`, :meth:`get_many`, :meth:`resolve_pairs`,
    :meth:`remap`) skip the check — callers validated the range once.

    ``remap`` is semantically :meth:`update` but tells the backing the
    new PPN aliases an existing physical page (a SHARE): backings that
    exploit contiguity use it to count ``remap_splits`` — the number of
    runs split, groups allocated, or exception entries created by
    remaps, i.e. the structural fragmentation cost of SHARE on that
    layout.
    """

    __slots__ = ()

    #: Strategy name (registry key); overridden per subclass.
    name = "abstract"
    #: Raw LPN-indexed list on the flat backing, None elsewhere — the
    #: pagemap's hot-loop fast lane.
    table: Optional[List[int]] = None

    # -- geometry ----------------------------------------------------------

    @property
    def logical_pages(self) -> int:
        raise NotImplementedError

    @property
    def mapped_count(self) -> int:
        """Number of LPNs currently holding a mapping."""
        raise NotImplementedError

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"LPN out of range [0, {self.logical_pages}): {lpn}")

    # -- pre-validated hot path -------------------------------------------

    def get(self, lpn: int) -> int:
        """Raw lookup: the PPN or the ``UNMAPPED`` sentinel.  The caller
        has already bounds-checked ``lpn``."""
        raise NotImplementedError

    def get_many(self, lpns: Sequence[int]) -> List[int]:
        """Bulk :meth:`get` (pre-validated)."""
        get = self.get
        return [get(lpn) for lpn in lpns]

    def resolve_pairs(self, pairs) -> List[Tuple[int, int, int]]:
        """Bulk SHARE resolve: ``(dst_lpn, old_dst_raw, src_raw)`` per
        pair, raw ``UNMAPPED`` sentinels included.  The batch was
        validated (bounds, duplicates, chains) before this call."""
        get = self.get
        return [(pair.dst_lpn, get(pair.dst_lpn), get(pair.src_lpn))
                for pair in pairs]

    def remap(self, lpn: int, ppn: int) -> Optional[int]:
        """SHARE-flavoured :meth:`update` (pre-validated): same mapping
        semantics, but continuity breaks it causes are charged to
        ``remap_splits``."""
        return self.update(lpn, ppn)

    # -- bounds-checked host API ------------------------------------------

    def lookup(self, lpn: int) -> Optional[int]:
        """Current PPN of ``lpn``, or None when unmapped."""
        self.check_lpn(lpn)
        ppn = self.get(lpn)
        return None if ppn == UNMAPPED else ppn

    def is_mapped(self, lpn: int) -> bool:
        self.check_lpn(lpn)
        return self.get(lpn) != UNMAPPED

    def update(self, lpn: int, ppn: int) -> Optional[int]:
        """Point ``lpn`` at ``ppn``; returns the previous PPN (or None)."""
        raise NotImplementedError

    def clear(self, lpn: int) -> Optional[int]:
        """Drop the mapping of ``lpn`` (TRIM); returns the previous PPN."""
        raise NotImplementedError

    # -- iteration / recovery ---------------------------------------------

    def mapped_lpns(self) -> Iterator[Tuple[int, int]]:
        """Iterate (lpn, ppn) over every live mapping in ascending LPN
        order — recovery, invariants, and debug use."""
        raise NotImplementedError

    def snapshot(self) -> List[Tuple[int, int]]:
        """The full mapping as a sorted list — the recovery-parity and
        strategy-agreement checks compare these across backings."""
        return list(self.mapped_lpns())

    # -- accounting --------------------------------------------------------

    @property
    def remap_splits(self) -> int:
        """Cumulative continuity breaks caused by SHARE remaps."""
        raise NotImplementedError

    def footprint_bytes(self) -> int:
        """Modeled DRAM cost of the current table state (O(1))."""
        raise NotImplementedError

    def fragment_count(self) -> int:
        """How many internal fragments the layout holds right now —
        1 for the flat array, allocated groups for the group map, runs
        for the run-length map, exception entries for the delta map.
        Exported as the ``ftl.l2p.runs`` gauge."""
        raise NotImplementedError


class FlatListMap(MappingStrategy):
    """LPN -> PPN as one plain DRAM array: O(1) lookup and update.

    (An ``array('q')`` backing was measured and rejected: C-long boxing
    on every read made the hot loops slower than the plain list, and at
    simulated scale the footprint win is irrelevant — which is why the
    compact backings below model their byte costs instead of chasing
    Python-level savings.)
    """

    __slots__ = ("table", "_mapped_count")

    name = "flat"

    def __init__(self, logical_pages: int) -> None:
        if logical_pages <= 0:
            raise ValueError(f"logical_pages must be positive: {logical_pages}")
        self.table: List[int] = [UNMAPPED] * logical_pages
        self._mapped_count = 0

    @property
    def logical_pages(self) -> int:
        return len(self.table)

    @property
    def mapped_count(self) -> int:
        return self._mapped_count

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")

    def get(self, lpn: int) -> int:
        return self.table[lpn]

    def get_many(self, lpns: Sequence[int]) -> List[int]:
        table = self.table
        return [table[lpn] for lpn in lpns]

    def resolve_pairs(self, pairs) -> List[Tuple[int, int, int]]:
        table = self.table
        return [(pair.dst_lpn, table[pair.dst_lpn], table[pair.src_lpn])
                for pair in pairs]

    def lookup(self, lpn: int) -> Optional[int]:
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")
        ppn = self.table[lpn]
        return None if ppn == UNMAPPED else ppn

    def is_mapped(self, lpn: int) -> bool:
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")
        return self.table[lpn] != UNMAPPED

    def update(self, lpn: int, ppn: int) -> Optional[int]:
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")
        if ppn < 0:
            raise ValueError(f"PPN must be non-negative: {ppn}")
        old = self.table[lpn]
        if old == UNMAPPED:
            self._mapped_count += 1
            self.table[lpn] = ppn
            return None
        self.table[lpn] = ppn
        return old

    def clear(self, lpn: int) -> Optional[int]:
        if not 0 <= lpn < len(self.table):
            raise ValueError(
                f"LPN out of range [0, {len(self.table)}): {lpn}")
        old = self.table[lpn]
        if old != UNMAPPED:
            self._mapped_count -= 1
            self.table[lpn] = UNMAPPED
            return old
        return None

    def mapped_lpns(self) -> Iterator[Tuple[int, int]]:
        for lpn, ppn in enumerate(self.table):
            if ppn != UNMAPPED:
                yield lpn, ppn

    @property
    def remap_splits(self) -> int:
        return 0   # a flat array has no continuity to break

    def footprint_bytes(self) -> int:
        return len(self.table) * ENTRY_BYTES

    def fragment_count(self) -> int:
        return 1


class GroupMap(MappingStrategy):
    """GFTL-style two-level map: per-group page tables on first touch.

    The directory holds one slot per group; a group's table (``
    group_pages`` entries) is allocated the first time any LPN inside it
    maps and freed when its last entry clears.  Footprint follows the
    *touched* address space instead of the whole logical space."""

    __slots__ = ("_logical_pages", "_group_pages", "_groups", "_live",
                 "_allocated", "_mapped_count", "_remap_splits")

    name = "group"

    def __init__(self, logical_pages: int, group_pages: int = 64) -> None:
        if logical_pages <= 0:
            raise ValueError(f"logical_pages must be positive: {logical_pages}")
        if group_pages < 1:
            raise ValueError(f"group_pages must be >= 1: {group_pages}")
        self._logical_pages = logical_pages
        self._group_pages = group_pages
        group_count = -(-logical_pages // group_pages)
        self._groups: List[Optional[List[int]]] = [None] * group_count
        self._live = [0] * group_count       # mapped entries per group
        self._allocated = 0
        self._mapped_count = 0
        self._remap_splits = 0

    @property
    def logical_pages(self) -> int:
        return self._logical_pages

    @property
    def mapped_count(self) -> int:
        return self._mapped_count

    @property
    def group_pages(self) -> int:
        return self._group_pages

    def get(self, lpn: int) -> int:
        group = self._groups[lpn // self._group_pages]
        if group is None:
            return UNMAPPED
        return group[lpn % self._group_pages]

    def _set(self, lpn: int, ppn: int) -> Tuple[Optional[int], bool]:
        """Write one entry; returns (old-or-None, allocated-a-group)."""
        index = lpn // self._group_pages
        group = self._groups[index]
        fresh = group is None
        if fresh:
            group = [UNMAPPED] * self._group_pages
            self._groups[index] = group
            self._allocated += 1
        offset = lpn % self._group_pages
        old = group[offset]
        group[offset] = ppn
        if old == UNMAPPED:
            self._live[index] += 1
            self._mapped_count += 1
            return None, fresh
        return old, fresh

    def update(self, lpn: int, ppn: int) -> Optional[int]:
        self.check_lpn(lpn)
        if ppn < 0:
            raise ValueError(f"PPN must be non-negative: {ppn}")
        return self._set(lpn, ppn)[0]

    def remap(self, lpn: int, ppn: int) -> Optional[int]:
        old, fresh = self._set(lpn, ppn)
        if fresh:
            # A remap forced a whole group table into existence for one
            # entry — the group layout's SHARE fragmentation cost.
            self._remap_splits += 1
        return old

    def clear(self, lpn: int) -> Optional[int]:
        self.check_lpn(lpn)
        index = lpn // self._group_pages
        group = self._groups[index]
        if group is None:
            return None
        offset = lpn % self._group_pages
        old = group[offset]
        if old == UNMAPPED:
            return None
        group[offset] = UNMAPPED
        self._live[index] -= 1
        self._mapped_count -= 1
        if self._live[index] == 0:
            self._groups[index] = None   # return the table to the pool
            self._allocated -= 1
        return old

    def mapped_lpns(self) -> Iterator[Tuple[int, int]]:
        group_pages = self._group_pages
        logical = self._logical_pages
        for index, group in enumerate(self._groups):
            if group is None:
                continue
            base = index * group_pages
            for offset, ppn in enumerate(group):
                if ppn != UNMAPPED and base + offset < logical:
                    yield base + offset, ppn

    @property
    def remap_splits(self) -> int:
        return self._remap_splits

    def footprint_bytes(self) -> int:
        return (len(self._groups) * ENTRY_BYTES
                + self._allocated * self._group_pages * ENTRY_BYTES)

    def fragment_count(self) -> int:
        return self._allocated


class RunLengthMap(MappingStrategy):
    """CCFTL-style extent runs with split-on-write.

    Runs are ``[start_lpn, length, start_ppn]`` records, kept sorted by
    ``start_lpn`` with a parallel key list for bisection.  A write that
    extends a neighbouring run in lockstep merges into it; a write into
    the middle of a run carves it apart.  SHARE remaps almost never
    extend a run (the source page lives elsewhere), so heavy remapping
    shreds extents — ``remap_splits`` counts every run boundary a remap
    manufactures."""

    __slots__ = ("_logical_pages", "_starts", "_runs", "_mapped_count",
                 "_remap_splits", "_splits")

    name = "runlength"

    def __init__(self, logical_pages: int) -> None:
        if logical_pages <= 0:
            raise ValueError(f"logical_pages must be positive: {logical_pages}")
        self._logical_pages = logical_pages
        self._starts: List[int] = []
        self._runs: List[List[int]] = []
        self._mapped_count = 0
        self._remap_splits = 0
        self._splits = 0

    @property
    def logical_pages(self) -> int:
        return self._logical_pages

    @property
    def mapped_count(self) -> int:
        return self._mapped_count

    @property
    def run_count(self) -> int:
        return len(self._runs)

    @property
    def write_splits(self) -> int:
        """Run carve-ups caused by ordinary (non-remap) updates."""
        return self._splits

    def _locate(self, lpn: int) -> int:
        """Index of the run containing or preceding ``lpn`` (-1 if none)."""
        from bisect import bisect_right
        return bisect_right(self._starts, lpn) - 1

    def get(self, lpn: int) -> int:
        index = self._locate(lpn)
        if index < 0:
            return UNMAPPED
        start, length, ppn = self._runs[index]
        if lpn < start + length:
            return ppn + (lpn - start)
        return UNMAPPED

    def _insert_run(self, index: int, start: int, length: int, ppn: int) -> None:
        self._starts.insert(index, start)
        self._runs.insert(index, [start, length, ppn])

    def _delete_run(self, index: int) -> None:
        del self._starts[index]
        del self._runs[index]

    def _carve(self, lpn: int) -> Tuple[Optional[int], int]:
        """Remove ``lpn`` from whatever run holds it.

        Returns ``(old_ppn_or_None, runs_added)`` where ``runs_added``
        is how many extra run records the carve created (an interior
        split adds one; trimming an edge adds none; removing a
        single-page run removes one, reported as -1)."""
        index = self._locate(lpn)
        if index < 0:
            return None, 0
        run = self._runs[index]
        start, length, ppn = run
        if lpn >= start + length:
            return None, 0
        old = ppn + (lpn - start)
        self._mapped_count -= 1
        if length == 1:
            self._delete_run(index)
            return old, -1
        if lpn == start:                      # trim the head
            run[0] = start + 1
            run[1] = length - 1
            run[2] = ppn + 1
            self._starts[index] = start + 1
            return old, 0
        if lpn == start + length - 1:         # trim the tail
            run[1] = length - 1
            return old, 0
        # Interior: split into [start, lpn) and (lpn, start+length).
        left_len = lpn - start
        run[1] = left_len
        right_start = lpn + 1
        self._insert_run(index + 1, right_start,
                         start + length - right_start,
                         ppn + (right_start - start))
        return old, 1

    def _place(self, lpn: int, ppn: int) -> bool:
        """Insert the single mapping ``lpn -> ppn`` (the LPN is known
        unmapped).  Returns True when it merged into a neighbour run."""
        from bisect import bisect_right
        index = bisect_right(self._starts, lpn) - 1
        merged = False
        if index >= 0:
            run = self._runs[index]
            if run[0] + run[1] == lpn and run[2] + run[1] == ppn:
                run[1] += 1                   # extend predecessor
                merged = True
        if not merged:
            self._insert_run(index + 1, lpn, 1, ppn)
            index += 1
        # Try to absorb the successor run.
        run = self._runs[index]
        if index + 1 < len(self._runs):
            nxt = self._runs[index + 1]
            if run[0] + run[1] == nxt[0] and run[2] + run[1] == nxt[2]:
                run[1] += nxt[1]
                self._delete_run(index + 1)
                merged = True
        self._mapped_count += 1
        return merged

    def update(self, lpn: int, ppn: int) -> Optional[int]:
        self.check_lpn(lpn)
        if ppn < 0:
            raise ValueError(f"PPN must be non-negative: {ppn}")
        if self.get(lpn) == ppn:
            return ppn                        # already exactly mapped
        old, added = self._carve(lpn)
        if added > 0:
            # Only genuine interior carve-ups count as write splits —
            # placing a fresh run in open space is normal growth.
            self._splits += added
        self._place(lpn, ppn)
        return old

    def remap(self, lpn: int, ppn: int) -> Optional[int]:
        if self.get(lpn) == ppn:
            return ppn
        before = len(self._runs)
        old, _added = self._carve(lpn)
        self._place(lpn, ppn)
        grew = len(self._runs) - before
        if grew > 0:
            # Remaps are charged their *net* fragmentation: an interior
            # carve and the non-mergeable run the aliased PPN forces are
            # both continuity SHARE destroyed relative to a flat layout.
            self._remap_splits += grew
        return old

    def clear(self, lpn: int) -> Optional[int]:
        self.check_lpn(lpn)
        old, _added = self._carve(lpn)
        return old

    def mapped_lpns(self) -> Iterator[Tuple[int, int]]:
        for start, length, ppn in self._runs:
            for offset in range(length):
                yield start + offset, ppn + offset

    @property
    def remap_splits(self) -> int:
        return self._remap_splits

    def footprint_bytes(self) -> int:
        return len(self._runs) * RUN_BYTES

    def fragment_count(self) -> int:
        return len(self._runs)


class DeltaCompressedMap(MappingStrategy):
    """Hybrid delta encoding per *Page-Differential Logging*.

    Each ``group_pages``-sized region stores one *anchor*: the PPN its
    first mapping predicts for offset 0.  An entry whose PPN equals
    ``anchor + offset`` is free — only a presence bit; an entry that
    diverges pays an exception record in the sparse delta table.
    Sequential fills (the common couchstore/InnoDB flush shape) cost one
    anchor per group; SHARE remaps, whose whole point is to alias a page
    that lives elsewhere, each cost an exception — counted as remap
    splits."""

    __slots__ = ("_logical_pages", "_group_pages", "_mapped", "_anchors",
                 "_live", "_deltas", "_mapped_count", "_remap_splits")

    name = "delta"

    def __init__(self, logical_pages: int, group_pages: int = 64) -> None:
        if logical_pages <= 0:
            raise ValueError(f"logical_pages must be positive: {logical_pages}")
        if group_pages < 1:
            raise ValueError(f"group_pages must be >= 1: {group_pages}")
        self._logical_pages = logical_pages
        self._group_pages = group_pages
        group_count = -(-logical_pages // group_pages)
        self._mapped = bytearray(logical_pages)
        self._anchors: List[Optional[int]] = [None] * group_count
        self._live = [0] * group_count
        self._deltas: Dict[int, int] = {}
        self._mapped_count = 0
        self._remap_splits = 0

    @property
    def logical_pages(self) -> int:
        return self._logical_pages

    @property
    def mapped_count(self) -> int:
        return self._mapped_count

    @property
    def group_pages(self) -> int:
        return self._group_pages

    @property
    def delta_entries(self) -> int:
        """Exception records currently held (divergent mappings)."""
        return len(self._deltas)

    def get(self, lpn: int) -> int:
        if not self._mapped[lpn]:
            return UNMAPPED
        ppn = self._deltas.get(lpn)
        if ppn is not None:
            return ppn
        group_pages = self._group_pages
        return (self._anchors[lpn // group_pages]   # type: ignore[operator]
                + lpn % group_pages)

    def _set(self, lpn: int, ppn: int) -> Tuple[Optional[int], bool]:
        """Write one entry; returns (old-or-None, created-exception)."""
        group_pages = self._group_pages
        index = lpn // group_pages
        offset = lpn % group_pages
        was_mapped = bool(self._mapped[lpn])
        old: Optional[int] = self.get(lpn) if was_mapped else None
        anchor = self._anchors[index]
        if anchor is None:
            # First live entry of the group sets the prediction base.
            self._anchors[index] = ppn - offset
            self._deltas.pop(lpn, None)
            created = False
        elif anchor + offset == ppn:
            had = self._deltas.pop(lpn, None) is not None
            created = False
            del had
        else:
            created = lpn not in self._deltas
            self._deltas[lpn] = ppn
        if not was_mapped:
            self._mapped[lpn] = 1
            self._live[index] += 1
            self._mapped_count += 1
            return None, created
        return old, created

    def update(self, lpn: int, ppn: int) -> Optional[int]:
        self.check_lpn(lpn)
        if ppn < 0:
            raise ValueError(f"PPN must be non-negative: {ppn}")
        return self._set(lpn, ppn)[0]

    def remap(self, lpn: int, ppn: int) -> Optional[int]:
        old, created = self._set(lpn, ppn)
        if created:
            # The remap diverges from the group's prediction — the
            # delta layout's SHARE fragmentation cost.
            self._remap_splits += 1
        return old

    def clear(self, lpn: int) -> Optional[int]:
        self.check_lpn(lpn)
        if not self._mapped[lpn]:
            return None
        old = self.get(lpn)
        self._mapped[lpn] = 0
        self._deltas.pop(lpn, None)
        index = lpn // self._group_pages
        self._live[index] -= 1
        self._mapped_count -= 1
        if self._live[index] == 0:
            self._anchors[index] = None   # group empty: drop the anchor
        return old

    def mapped_lpns(self) -> Iterator[Tuple[int, int]]:
        mapped = self._mapped
        get = self.get
        for lpn in range(self._logical_pages):
            if mapped[lpn]:
                yield lpn, get(lpn)

    @property
    def remap_splits(self) -> int:
        return self._remap_splits

    def footprint_bytes(self) -> int:
        return (len(self._mapped) // 8 + 1          # presence bitmap
                + len(self._anchors) * ENTRY_BYTES  # group anchors
                + len(self._deltas) * DELTA_ENTRY_BYTES)

    def fragment_count(self) -> int:
        return len(self._deltas)


#: Registry: strategy name -> class.
STRATEGIES = {
    FlatListMap.name: FlatListMap,
    GroupMap.name: GroupMap,
    RunLengthMap.name: RunLengthMap,
    DeltaCompressedMap.name: DeltaCompressedMap,
}
assert tuple(STRATEGIES) == STRATEGY_NAMES


def create_strategy(name: str, logical_pages: int,
                    group_pages: int = 64) -> MappingStrategy:
    """Instantiate the named L2P backing."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown L2P strategy {name!r}; pick from "
            f"{', '.join(STRATEGY_NAMES)}") from None
    if cls in (GroupMap, DeltaCompressedMap):
        return cls(logical_pages, group_pages=group_pages)
    return cls(logical_pages)


def resolve_l2p_strategy(default: str = "flat") -> str:
    """The strategy name from ``REPRO_L2P`` (flat|group|runlength|delta),
    or ``default`` when unset.  Harness builders and the crash-explorer
    workloads route their :class:`~repro.ftl.config.FtlConfig` through
    this, so one environment variable switches a whole run's backing."""
    raw = os.environ.get("REPRO_L2P", "").strip().lower()
    if not raw:
        return default
    if raw not in STRATEGIES:
        raise ValueError(
            f"REPRO_L2P must be one of {', '.join(STRATEGY_NAMES)}, "
            f"got {raw!r}")
    return raw


#: Backward-compatible alias: the pre-strategy-layer class name.
ForwardMap = FlatListMap
